"""Benchmark fixtures.

One bench-scale study is built per session (REPRO_BENCH_SCALE, default
0.002 ≈ 12.5K listings — every table/figure shape is stable there).  The
heavy analysis artifacts are pre-computed so that each experiment bench
times the experiment's own aggregation; the detector benches re-run the
heavy stages explicitly.

Every experiment bench also prints its paper-vs-measured report, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the generator for
EXPERIMENTS.md content.
"""

from __future__ import annotations

import os

import pytest

from repro import Study, StudyConfig

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))


@pytest.fixture(scope="session")
def bench_study():
    """The shared bench-scale study with all analysis artifacts warm."""
    result = Study(StudyConfig(seed=BENCH_SEED, scale=BENCH_SCALE)).run()
    # Warm the cached analysis artifacts so experiment benches measure
    # their own aggregation, not one lucky first call.
    result.units
    result.library_detection
    result.vt_scan
    result.signature_clones
    result.code_clones
    result.fakes
    result.overprivilege
    result.removal
    return result


def run_and_report(benchmark, experiment_id, study, rounds=3):
    """Benchmark one experiment and print its report."""
    from repro.experiments import run_experiment

    report = benchmark.pedantic(
        run_experiment, args=(experiment_id, study), rounds=rounds, iterations=1
    )
    print()
    print(report.render())
    return report
