"""Ablation benchmarks for the paper's design choices.

* **Clone-detection thresholds** — the paper picks distance <= 0.05 and
  code-segment overlap >= 85% "experimentally"; the sweep shows the
  detected-clone count across settings (precision/recall against ground
  truth is in EXPERIMENTS.md).
* **Library removal** — Section 6.2 argues third-party libraries cause
  false positives in clone detection; the ablation runs the detector
  with and without LibRadar-style removal.
* **AV-rank threshold** — prior work argues 10 engines is robust; the
  sweep shows how the malware rate moves across thresholds.
"""

from repro.analysis.clones import CodeCloneDetector
from repro.analysis.malware import av_rank_rates
from repro.markets.profiles import CHINESE_MARKET_IDS, GOOGLE_PLAY


def test_bench_ablation_clone_distance(benchmark, bench_study):
    thresholds = (0.01, 0.05, 0.15)

    def sweep():
        counts = {}
        for threshold in thresholds:
            detector = CodeCloneDetector(distance_threshold=threshold)
            analysis = detector.detect(bench_study.units, bench_study.library_detection)
            counts[threshold] = len(analysis.clone_units)
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nclone-count by distance threshold: {counts}")
    assert counts[0.01] <= counts[0.05] <= counts[0.15]


def test_bench_ablation_clone_overlap(benchmark, bench_study):
    thresholds = (0.70, 0.85, 0.95)

    def sweep():
        counts = {}
        for threshold in thresholds:
            detector = CodeCloneDetector(overlap_threshold=threshold)
            analysis = detector.detect(bench_study.units, bench_study.library_detection)
            counts[threshold] = len(analysis.clone_units)
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nclone-count by overlap threshold: {counts}")
    assert counts[0.95] <= counts[0.85] <= counts[0.70]


def test_bench_ablation_library_removal(benchmark, bench_study):
    def both():
        with_removal = CodeCloneDetector().detect(
            bench_study.units, bench_study.library_detection
        )
        without_removal = CodeCloneDetector().detect(bench_study.units, None)
        return len(with_removal.clone_units), len(without_removal.clone_units)

    with_removal, without_removal = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nclones with/without library removal: {with_removal}/{without_removal}")
    # Shared library code inflates pair counts when not removed.
    assert without_removal >= with_removal


def test_bench_ablation_av_threshold(benchmark, bench_study):
    thresholds = (1, 5, 10, 20, 30)

    def sweep():
        return av_rank_rates(
            bench_study.snapshot, bench_study.units, bench_study.vt_scan,
            thresholds=thresholds,
        )

    rates = benchmark.pedantic(sweep, rounds=2, iterations=1)
    gp = rates[GOOGLE_PLAY]
    print(f"\nGoogle Play rate by AV threshold: { {t: round(gp[t], 4) for t in thresholds} }")
    for market in (GOOGLE_PLAY,) + tuple(CHINESE_MARKET_IDS[:3]):
        series = [rates[market][t] for t in thresholds]
        assert series == sorted(series, reverse=True)


def test_bench_ablation_detector_ground_truth(benchmark, bench_study):
    """Detector quality vs injected ground truth — the measurement the
    paper could not make."""

    def evaluate():
        world = bench_study.world
        gt = {
            (a.package, a.developer.fingerprint)
            for a in world.apps
            if a.provenance == "cb_clone"
        }
        detected = bench_study.code_clones.clone_units
        tp = len(gt & detected)
        precision = tp / len(detected) if detected else 1.0
        recall = tp / len(gt) if gt else 1.0
        return precision, recall

    precision, recall = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\ncode-clone detector precision={precision:.3f} recall={recall:.3f}")
    assert recall > 0.5
    assert precision > 0.7
