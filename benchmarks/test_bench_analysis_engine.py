"""Benchmarks for the parallel analysis engine and artifact cache.

The analysis pipeline's genuinely slow stage in the real study is
network-bound (uploading ~4.3M APKs to VirusTotal), so the bench wraps
the simulated service in a latency model (real ``time.sleep``, which
releases the GIL) — the serial pipeline pays every scan's latency in
sequence, the 8-worker engine overlaps them, and a warm artifact cache
skips them entirely.  CPU-bound stages (library features, clone
scoring) run under the same engine but are not what the speedup floors
measure.

Results accumulate into ``BENCH_analysis.json`` (uploaded by the CI
bench job next to ``BENCH_crawl.json``):

* serial vs. 8-worker ``run_all`` wall time and speedup,
* cold-cache vs. warm-cache wall time and speedup (at 1 worker, so the
  cache effect is isolated from threading),
* clone candidate-pair counts and wall time for all three candidate
  strategies (exhaustive, prefix, minhash) plus the minhash strategy's
  measured pair recall against the exhaustive reference,
* the adversarial-families contrast: on a hostile corpus (repackaging
  chains + app-factory template spam via ``clone_families=
  "adversarial"``) MinHash-LSH candidate generation must beat prefix
  blocking by ``MIN_MINHASH_SPEEDUP`` while keeping
  ``MIN_MINHASH_RECALL`` of the exhaustive strategy's reported pairs.

The scale is pinned (independent of REPRO_BENCH_SCALE) so the latency
budget — and therefore the speedup floors — is stable in CI smoke runs.
Every timed variant must also produce bit-identical report digests;
a fast wrong answer fails the bench.
"""

import dataclasses
import time

import pytest

from repro import Study, StudyConfig
from repro.analysis.clones import CodeCloneDetector, measure_strategy_recall
from repro.analysis.engine import AnalysisEngine, ArtifactCache
from repro.analysis.virustotal import VirusTotalService
from repro.core.study import StudyResult
from repro.obs.results import BenchResults
from repro.experiments import digest_reports, run_all

BENCH_ANALYSIS_SEED = 11
BENCH_ANALYSIS_SCALE = 0.0003
SCAN_LATENCY_S = 0.004  # per-APK upload latency; ~1.3K scans ≈ 5s serial
MIN_PARALLEL_SPEEDUP = 2.0
MIN_CACHE_SPEEDUP = 5.0
MIN_MINHASH_SPEEDUP = 3.0  # vs prefix, adversarial corpus, best-of-3
MIN_MINHASH_RECALL = 0.99  # of the exhaustive strategy's reported pairs

_record = BenchResults(
    "analysis", seed=BENCH_ANALYSIS_SEED, scale=BENCH_ANALYSIS_SCALE
).record


class SlowVirusTotal(VirusTotalService):
    """The default service behind a fixed per-scan upload latency.

    Only transport changes, so the verdicts — and therefore
    ``cache_version`` — are the base service's (see the base class).
    """

    def __init__(self, latency_s):
        super().__init__()
        self.latency_s = latency_s

    def scan(self, apk):
        if apk.md5 not in self._cache:
            time.sleep(self.latency_s)
        return super().scan(apk)


@pytest.fixture(scope="module")
def base_result():
    """One crawl, shared; each bench re-analyzes it with its own engine."""
    config = StudyConfig(seed=BENCH_ANALYSIS_SEED, scale=BENCH_ANALYSIS_SCALE)
    return Study(config).run()


def _fresh(base, engine=None, slow_vt=True, config=None):
    """A StudyResult over the shared crawl with cold analysis artifacts."""
    result = StudyResult(
        config=config or base.config,
        world=base.world,
        stores=base.stores,
        servers=base.servers,
        clock=base.clock,
        snapshot=base.snapshot,
        presence=base.presence,
        removal_outcome=base.removal_outcome,
        second_snapshot=base.second_snapshot,
        update_outcome=base.update_outcome,
        engine=engine,
    )
    if slow_vt:
        result.vt_service = SlowVirusTotal(SCAN_LATENCY_S)
    return result


def _analyze(base, engine):
    result = _fresh(base, engine=engine)
    return digest_reports(run_all(result)), result


def test_bench_analysis_serial(benchmark, base_result):
    digests, _ = benchmark.pedantic(
        _analyze, args=(base_result, AnalysisEngine(workers=1)),
        rounds=1, iterations=1,
    )
    assert digests


def test_bench_analysis_parallel_speedup(base_result):
    start = time.perf_counter()
    serial_digests, _ = _analyze(base_result, AnalysisEngine(workers=1))
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel_digests, result = _analyze(base_result, AnalysisEngine(workers=8))
    parallel_s = time.perf_counter() - start

    # Identical reports at any width — the deterministic-merge invariant.
    assert parallel_digests == serial_digests

    speedup = serial_s / parallel_s
    _record(
        "parallel",
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        workers=8,
        speedup=round(speedup, 2),
        scans=len(result.vt_scan.reports),
    )
    print(f"\nrun_all serial {serial_s:.2f}s vs 8 workers {parallel_s:.2f}s "
          f"-> {speedup:.1f}x")
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"8-worker run_all only {speedup:.1f}x faster than serial "
        f"({serial_s:.2f}s vs {parallel_s:.2f}s)"
    )


def test_bench_artifact_cache_speedup(base_result, tmp_path):
    cache_dir = tmp_path / "artifacts"
    start = time.perf_counter()
    cold_digests, cold_result = _analyze(
        base_result, AnalysisEngine(workers=1, cache=ArtifactCache(cache_dir)))
    cold_s = time.perf_counter() - start
    assert cold_result.engine.cache.stats.stores > 0

    start = time.perf_counter()
    warm_digests, warm_result = _analyze(
        base_result, AnalysisEngine(workers=1, cache=ArtifactCache(cache_dir)))
    warm_s = time.perf_counter() - start

    stats = warm_result.engine.cache.stats
    assert stats.hits > 0 and stats.misses == 0, stats.as_dict()
    # A resumed-from-cache run reports the very same tables and figures.
    assert warm_digests == cold_digests

    speedup = cold_s / warm_s
    _record(
        "artifact_cache",
        cold_s=round(cold_s, 3),
        warm_s=round(warm_s, 3),
        speedup=round(speedup, 2),
        hits=stats.hits,
        stores=cold_result.engine.cache.stats.stores,
    )
    print(f"\ncold cache {cold_s:.2f}s vs warm {warm_s:.2f}s "
          f"-> {speedup:.1f}x ({stats.hits} hits)")
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"warm-cache run_all only {speedup:.1f}x faster than cold "
        f"({cold_s:.2f}s vs {warm_s:.2f}s)"
    )


def test_bench_candidate_blocking(base_result):
    units = base_result.units
    lib = base_result.library_detection
    detector = CodeCloneDetector()
    corpus = detector.extract(units, lib)
    engine = AnalysisEngine(workers=1)

    start = time.perf_counter()
    exhaustive = detector._candidate_pairs_exhaustive(corpus.residual_blocks)
    exhaustive_s = time.perf_counter() - start

    start = time.perf_counter()
    prefix = detector._candidate_pairs_prefix(corpus.residual_blocks)
    prefix_s = time.perf_counter() - start

    minhash_det = CodeCloneDetector(candidate_strategy="minhash")
    start = time.perf_counter()
    minhash = minhash_det._candidate_pairs_minhash(corpus, engine)
    minhash_s = time.perf_counter() - start

    # All three strategies must report the identical clone set end-to-end.
    pairs_prefix = CodeCloneDetector(candidate_strategy="prefix").detect(
        units, lib).clone_units
    pairs_exhaustive = CodeCloneDetector(candidate_strategy="exhaustive").detect(
        units, lib).clone_units
    pairs_minhash = minhash_det.detect(units, lib).clone_units
    assert pairs_prefix >= pairs_exhaustive
    assert pairs_minhash == pairs_exhaustive

    recall = measure_strategy_recall(units, lib)
    assert recall.recall >= MIN_MINHASH_RECALL

    reduction = 1 - len(prefix) / max(1, len(exhaustive))
    _record(
        "candidate_blocking",
        units=len(corpus.units),
        candidates_exhaustive=len(exhaustive),
        candidates_prefix=len(prefix),
        candidates_minhash=len(minhash),
        reduction=round(reduction, 4),
        exhaustive_s=round(exhaustive_s, 4),
        prefix_s=round(prefix_s, 4),
        minhash_s=round(minhash_s, 4),
        clones_prefix=len(pairs_prefix),
        clones_exhaustive=len(pairs_exhaustive),
        clones_minhash=len(pairs_minhash),
        minhash_recall=round(recall.recall, 4),
    )
    print(f"\ncandidates: exhaustive {len(exhaustive)} vs prefix {len(prefix)} "
          f"vs minhash {len(minhash)} ({reduction:.1%} pruned), "
          f"minhash recall {recall.recall:.4f}")


def test_bench_strategy_digests_identical(base_result):
    """``digest_reports`` is bit-identical across candidate strategies
    (on the default bench corpus) and across minhash worker counts —
    strategy and parallelism are pure performance knobs."""
    digests = {}
    for strategy in CodeCloneDetector.STRATEGIES:
        config = dataclasses.replace(base_result.config, clone_strategy=strategy)
        result = _fresh(
            base_result, engine=AnalysisEngine(workers=4),
            slow_vt=False, config=config,
        )
        digests[strategy] = digest_reports(run_all(result))
    assert digests["prefix"] == digests["exhaustive"] == digests["minhash"]

    minhash_config = dataclasses.replace(
        base_result.config, clone_strategy="minhash"
    )
    per_width = {}
    for workers in (1, 4, 8):
        result = _fresh(
            base_result, engine=AnalysisEngine(workers=workers),
            slow_vt=False, config=minhash_config,
        )
        per_width[workers] = digest_reports(run_all(result))
    assert per_width[1] == per_width[4] == per_width[8]
    _record(
        "strategy_digests",
        strategies=sorted(digests),
        identical=True,
        minhash_worker_widths=[1, 4, 8],
    )


@pytest.fixture(scope="module")
def adversarial_result():
    """A hostile corpus: boosted repackaging families, clone chains,
    shared-signing-key clusters, and app-factory template spam."""
    config = StudyConfig(
        seed=BENCH_ANALYSIS_SEED,
        scale=BENCH_ANALYSIS_SCALE,
        clone_families="adversarial",
    )
    return Study(config).run()


def test_bench_adversarial_families(adversarial_result):
    """The tentpole contract: on the adversarial corpus, MinHash-LSH
    candidate generation beats prefix blocking by >= 3x wall-clock while
    recovering >= 99% of the exhaustive strategy's reported pairs."""
    units = adversarial_result.units
    lib = adversarial_result.library_detection
    detector = CodeCloneDetector(candidate_strategy="minhash")
    corpus = detector.extract(units, lib)
    engine = AnalysisEngine(workers=1)

    prefix_s, minhash_s = [], []
    for _ in range(3):
        start = time.perf_counter()
        prefix = detector._candidate_pairs_prefix(corpus.residual_blocks)
        prefix_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        minhash = detector._candidate_pairs_minhash(corpus, engine)
        minhash_s.append(time.perf_counter() - start)

    recall = measure_strategy_recall(units, lib)
    speedup = min(prefix_s) / min(minhash_s)
    spam = adversarial_result.world.summary()["template_spam"]
    _record(
        "adversarial_families",
        units=len(corpus.units),
        template_spam_apps=spam,
        cb_clones=adversarial_result.world.summary()["cb_clones"],
        candidates_prefix=len(prefix),
        candidates_minhash=len(minhash),
        candidates_exhaustive=recall.reference_candidates,
        prefix_s=round(min(prefix_s), 4),
        minhash_s=round(min(minhash_s), 4),
        speedup=round(speedup, 2),
        reference_pairs=recall.reference_pairs,
        recovered_pairs=recall.recovered_pairs,
        recall=round(recall.recall, 4),
    )
    print(f"\nadversarial corpus ({len(corpus.units)} units, {spam} spam): "
          f"prefix {min(prefix_s):.3f}s ({len(prefix)} candidates) vs "
          f"minhash {min(minhash_s):.3f}s ({len(minhash)}) -> {speedup:.1f}x, "
          f"recall {recall.recall:.4f}")
    assert recall.reference_pairs > 0
    assert recall.recall >= MIN_MINHASH_RECALL, (
        f"minhash recovered only {recall.recall:.2%} of exhaustive pairs"
    )
    assert speedup >= MIN_MINHASH_SPEEDUP, (
        f"minhash only {speedup:.1f}x faster than prefix on the "
        f"adversarial corpus ({min(prefix_s):.3f}s vs {min(minhash_s):.3f}s)"
    )
