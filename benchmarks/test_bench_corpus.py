"""Benchmarks for the out-of-core corpus store.

Times one full streaming pass over a spilled world against the same
pass on the in-memory list, at the shared bench scale
(``REPRO_BENCH_SCALE``, like every other bench in this directory), and
records wall time *and* the tracemalloc peak of each pass in
``BENCH_corpus.json`` under the ``"bench"`` key — next to the 50x smoke
numbers ``examples/out_of_core_corpus.py`` writes under ``"smoke"``.

Correctness anchors, enforced here like the worldgen floors: the world
content digest must be identical before and after the spill, and the
streaming cursor's traced heap peak must stay under the materialized
pass's peak plus a fixed allowance (the cursor holds one batch, not the
corpus).

Like the worldgen benches this file uses its own timers, not the
pytest-benchmark fixture: ``--benchmark-only`` runs skip it, and the CI
``corpus`` job invokes it directly.
"""

import os
import time
import tracemalloc

from repro.ecosystem.generator import EcosystemGenerator
from repro.obs.results import BenchResults
from repro.store import CorpusStore

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))

#: The streaming pass re-decodes rows, so its *allocation* peak may sit
#: above the materialized pass (whose list pre-exists the trace); what
#: it must never do is scale with the corpus.  At bench scale the
#: cursor's peak stays within this multiple of the materialized pass.
MAX_PEAK_RATIO = 1.5


_record = BenchResults("corpus", seed=BENCH_SEED, scale=BENCH_SCALE).record


def _traced_pass(fn):
    """(wall seconds, tracemalloc peak bytes) of one full pass."""
    tracemalloc.start()
    start = time.perf_counter()
    out = fn()
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return wall, peak, out


def test_bench_streaming_cursor(tmp_path):
    world = EcosystemGenerator(seed=BENCH_SEED, scale=BENCH_SCALE).generate()
    digest_before = world.content_digest()
    n_apps = len(world.apps)

    def sweep():
        return sum(len(app.placements) for app in world.apps)

    memory_s, memory_peak, listings = _traced_pass(sweep)

    store = CorpusStore(tmp_path, spill_threshold=0)
    start = time.perf_counter()
    world.spill(store)
    spill_s = time.perf_counter() - start

    def stream():
        return sum(1 for _ in world.iter_placements(batch_size=256))

    stream_s, stream_peak, streamed = _traced_pass(stream)

    assert world.spilled
    assert streamed == listings
    assert world.content_digest() == digest_before

    _record(
        "bench",
        apps=n_apps,
        listings=listings,
        memory_pass_s=round(memory_s, 3),
        memory_peak_mib=round(memory_peak / 2**20, 2),
        spill_s=round(spill_s, 3),
        stream_pass_s=round(stream_s, 3),
        stream_peak_mib=round(stream_peak / 2**20, 2),
        digest=digest_before,
    )
    print(
        f"\nspill {n_apps:,} apps in {spill_s:.2f}s; "
        f"materialized pass {memory_s:.2f}s @ {memory_peak / 2**20:.1f}MiB vs "
        f"streaming pass {stream_s:.2f}s @ {stream_peak / 2**20:.1f}MiB"
    )
    assert stream_peak <= MAX_PEAK_RATIO * max(memory_peak, 8 * 2**20), (
        f"streaming cursor peaked at {stream_peak / 2**20:.1f}MiB vs "
        f"materialized {memory_peak / 2**20:.1f}MiB"
    )
