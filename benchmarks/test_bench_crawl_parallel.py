"""Benchmarks for the parallel crawl engine.

Network latency is injected at the server (real ``time.sleep``, which
releases the GIL) so the lanes genuinely overlap: the serial crawl pays
every market's latency in sequence, the 8-worker engine pays only the
slowest schedule of lanes.  Load is near-uniform across the 17 markets,
so the engine should clear 3x comfortably (~5-6x in practice) while
producing the bit-identical snapshot the determinism suite demands.

The scale is pinned (independent of REPRO_BENCH_SCALE) so the latency
budget — and therefore the speedup floor — is stable in CI smoke runs.
"""

import time

import pytest

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.util.simtime import SimClock

BENCH_CRAWL_SEED = 7
BENCH_CRAWL_SCALE = 0.0001
LATENCY_S = 0.0003  # per-request server latency; ~17K requests ≈ 5s serial
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def crawl_world():
    return EcosystemGenerator(seed=BENCH_CRAWL_SEED, scale=BENCH_CRAWL_SCALE).generate()


def _crawl(world, workers, latency_s=LATENCY_S):
    clock = SimClock()
    servers = {
        m: MarketServer(store, clock, latency_s=latency_s)
        for m, store in build_stores(world).items()
    }
    coordinator = CrawlCoordinator(servers, clock, download_apks=False, workers=workers)
    return coordinator.crawl("bench-parallel", duration_days=5.0)


def test_bench_crawl_serial(benchmark, crawl_world):
    snapshot = benchmark.pedantic(_crawl, args=(crawl_world, 1), rounds=1, iterations=1)
    assert len(snapshot) > 0


def test_bench_crawl_parallel_speedup(benchmark, crawl_world):
    start = time.perf_counter()
    serial = _crawl(crawl_world, workers=1)
    serial_elapsed = time.perf_counter() - start

    parallel = benchmark.pedantic(
        _crawl, args=(crawl_world, 8), rounds=2, iterations=1
    )

    # Identical output at any width — the whole point of the lane model.
    assert parallel.content_digest() == serial.content_digest()
    assert parallel.stats.telemetry.workers == 8

    parallel_elapsed = benchmark.stats.stats.min
    speedup = serial_elapsed / parallel_elapsed
    print(
        f"\nserial {serial_elapsed:.2f}s vs 8 workers {parallel_elapsed:.2f}s "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"8-worker crawl only {speedup:.1f}x faster than serial "
        f"({serial_elapsed:.2f}s vs {parallel_elapsed:.2f}s)"
    )


def test_bench_crawl_overhead_without_latency(benchmark, crawl_world):
    # The engine's scheduling overhead on a zero-latency server: this
    # bounds what the thread pool costs when there is nothing to hide.
    snapshot = benchmark.pedantic(
        _crawl, args=(crawl_world, 8), kwargs={"latency_s": 0.0}, rounds=3, iterations=1
    )
    assert len(snapshot) > 0
