"""Benchmarks for the heavy analysis stages (detectors).

These re-run the detection algorithms from scratch on the shared corpus
— the costs the paper's measurement pipeline pays at 6M-app scale.
"""

from repro.analysis.clones import CodeCloneDetector, detect_signature_clones
from repro.analysis.corpus import build_units
from repro.analysis.fake import detect_fakes
from repro.analysis.libraries import LibraryDetector
from repro.analysis.malware import scan_units
from repro.analysis.permissions import analyze_overprivilege
from repro.analysis.virustotal import VirusTotalService


def test_bench_unit_building(benchmark, bench_study):
    units = benchmark.pedantic(
        build_units, args=(bench_study.snapshot,), rounds=3, iterations=1
    )
    assert units


def test_bench_library_detection(benchmark, bench_study):
    detector = LibraryDetector()
    detection = benchmark.pedantic(
        detector.fit, args=(bench_study.units,), rounds=3, iterations=1
    )
    assert detection.libraries


def test_bench_signature_clone_detection(benchmark, bench_study):
    analysis = benchmark.pedantic(
        detect_signature_clones, args=(bench_study.units,), rounds=3, iterations=1
    )
    assert analysis.clone_units


def test_bench_code_clone_detection(benchmark, bench_study):
    detector = CodeCloneDetector()
    analysis = benchmark.pedantic(
        detector.detect,
        args=(bench_study.units, bench_study.library_detection),
        rounds=2,
        iterations=1,
    )
    assert analysis.clone_units


def test_bench_fake_detection(benchmark, bench_study):
    analysis = benchmark.pedantic(
        detect_fakes, args=(bench_study.units,), rounds=3, iterations=1
    )
    assert analysis.fake_units is not None


def test_bench_virustotal_scan(benchmark, bench_study):
    def scan_fresh():
        return scan_units(bench_study.units, VirusTotalService())

    scan = benchmark.pedantic(scan_fresh, rounds=2, iterations=1)
    assert scan.reports


def test_bench_overprivilege(benchmark, bench_study):
    result = benchmark.pedantic(
        analyze_overprivilege, args=(bench_study.units,), rounds=3, iterations=1
    )
    assert result.unused
