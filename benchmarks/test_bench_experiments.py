"""Benchmarks: regenerate every paper table and figure.

One parametrized test over :data:`PAPER_EXPERIMENT_IDS` replaces the
former per-experiment modules — the id list is the single source of
truth, so a new experiment is benchmarked the moment it is registered.
Each case prints its paper-vs-measured report (see conftest), keeping
``pytest benchmarks/ --benchmark-only -s`` usable as the EXPERIMENTS.md
generator.
"""

import pytest

from repro.core.reports import TableReport
from repro.experiments import PAPER_EXPERIMENT_IDS

from conftest import run_and_report


@pytest.mark.parametrize("experiment_id", PAPER_EXPERIMENT_IDS)
def test_bench_experiment(benchmark, bench_study, experiment_id):
    report = run_and_report(benchmark, experiment_id, bench_study)
    if isinstance(report, TableReport):
        assert report.rows
    else:
        assert report.data
