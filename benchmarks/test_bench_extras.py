"""Benchmarks for the section-level extras and the dataset facility."""

from conftest import run_and_report

from repro.crawler.dataset import load_snapshot, save_snapshot


def test_bench_section52(benchmark, bench_study):
    report = run_and_report(benchmark, "section52", bench_study)
    assert report.rows


def test_bench_section53(benchmark, bench_study):
    report = run_and_report(benchmark, "section53", bench_study)
    assert report.data["cross_store_identity_groups"] > 0


def test_bench_section64(benchmark, bench_study):
    report = run_and_report(benchmark, "section64", bench_study)
    assert report.data["malware_units"] > 0


def test_bench_dataset_roundtrip(benchmark, bench_study, tmp_path):
    path = tmp_path / "snapshot.jsonl.gz"

    def roundtrip():
        save_snapshot(bench_study.snapshot, path)
        return load_snapshot(path)

    loaded = benchmark.pedantic(roundtrip, rounds=2, iterations=1)
    assert len(loaded) == len(bench_study.snapshot)
    print(f"\ndataset file size: {path.stat().st_size / 1e6:.1f} MB "
          f"for {len(loaded):,} records")


def test_bench_fidelity(benchmark, bench_study):
    report = run_and_report(benchmark, "fidelity", bench_study)
    assert report.rows
