"""Benchmark: regenerate the paper's Figure 1."""

from conftest import run_and_report


def test_bench_figure1(benchmark, bench_study):
    report = run_and_report(benchmark, "figure1", bench_study)
    assert report.data
