"""Benchmark: regenerate the paper's Figure 10."""

from conftest import run_and_report


def test_bench_figure10(benchmark, bench_study):
    report = run_and_report(benchmark, "figure10", bench_study)
    assert report.data
