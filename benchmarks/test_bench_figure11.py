"""Benchmark: regenerate the paper's Figure 11."""

from conftest import run_and_report


def test_bench_figure11(benchmark, bench_study):
    report = run_and_report(benchmark, "figure11", bench_study)
    assert report.data
