"""Benchmark: regenerate the paper's Figure 12."""

from conftest import run_and_report


def test_bench_figure12(benchmark, bench_study):
    report = run_and_report(benchmark, "figure12", bench_study)
    assert report.data
