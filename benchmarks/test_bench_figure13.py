"""Benchmark: regenerate the paper's Figure 13."""

from conftest import run_and_report


def test_bench_figure13(benchmark, bench_study):
    report = run_and_report(benchmark, "figure13", bench_study)
    assert report.data
