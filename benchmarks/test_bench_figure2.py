"""Benchmark: regenerate the paper's Figure 2."""

from conftest import run_and_report


def test_bench_figure2(benchmark, bench_study):
    report = run_and_report(benchmark, "figure2", bench_study)
    assert report.data
