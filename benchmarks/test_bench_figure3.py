"""Benchmark: regenerate the paper's Figure 3."""

from conftest import run_and_report


def test_bench_figure3(benchmark, bench_study):
    report = run_and_report(benchmark, "figure3", bench_study)
    assert report.data
