"""Benchmark: regenerate the paper's Figure 4."""

from conftest import run_and_report


def test_bench_figure4(benchmark, bench_study):
    report = run_and_report(benchmark, "figure4", bench_study)
    assert report.data
