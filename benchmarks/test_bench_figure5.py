"""Benchmark: regenerate the paper's Figure 5."""

from conftest import run_and_report


def test_bench_figure5(benchmark, bench_study):
    report = run_and_report(benchmark, "figure5", bench_study)
    assert report.data
