"""Benchmark: regenerate the paper's Figure 6."""

from conftest import run_and_report


def test_bench_figure6(benchmark, bench_study):
    report = run_and_report(benchmark, "figure6", bench_study)
    assert report.data
