"""Benchmark: regenerate the paper's Figure 7."""

from conftest import run_and_report


def test_bench_figure7(benchmark, bench_study):
    report = run_and_report(benchmark, "figure7", bench_study)
    assert report.data
