"""Benchmark: regenerate the paper's Figure 8."""

from conftest import run_and_report


def test_bench_figure8(benchmark, bench_study):
    report = run_and_report(benchmark, "figure8", bench_study)
    assert report.data
