"""Benchmark: regenerate the paper's Figure 9."""

from conftest import run_and_report


def test_bench_figure9(benchmark, bench_study):
    report = run_and_report(benchmark, "figure9", bench_study)
    assert report.data
