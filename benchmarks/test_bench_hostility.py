"""Benchmarks for the hostile-market scenario pack.

Three campaigns against the same world: a polite baseline, a naive
crawler against a fully hostile fleet (no identity pool — every ban is
a dead letter), and a rotation-enabled crawler against the same fleet.
The scale is pinned (independent of REPRO_BENCH_SCALE) so the hostility
pressure — and therefore the enforced floor — is stable in CI smoke
runs.

Results accumulate into ``BENCH_hostility.json`` (uploaded by the CI
bench job next to ``BENCH_crawl.json``):

* records, wall time, and hostility counters for all three postures,
* the naive crawler's coverage collapse (the contrast the pack exists
  to fix),
* the rotation-enabled crawler's recovery share per market.

Enforced floor: the rotation-enabled crawler recovers at least 90% of
the polite baseline's coverage on every market — in practice it
converges to the bit-identical snapshot digest, which is also asserted.
"""

import time

import pytest

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.hostility import HostilityPolicy
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.identity import IdentityPolicy
from repro.obs.results import BenchResults
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock

BENCH_HOSTILE_SEED = 7
BENCH_HOSTILE_SCALE = 0.0002
RECOVERY_FLOOR = 0.90

_record = BenchResults(
    "hostility", seed=BENCH_HOSTILE_SEED, scale=BENCH_HOSTILE_SCALE
).record


@pytest.fixture(scope="module")
def hostile_world():
    return EcosystemGenerator(
        seed=BENCH_HOSTILE_SEED, scale=BENCH_HOSTILE_SCALE
    ).generate()


def _crawl(world, hostile=False, identity_pool=0):
    clock = SimClock()
    hostility = HostilityPolicy.full() if hostile else None
    servers = {
        m: MarketServer(store, clock, hostility=hostility)
        for m, store in build_stores(world).items()
    }
    seeds = [
        listing.package
        for listing in build_stores(world)["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    coordinator = CrawlCoordinator(
        servers, clock, gp_seeds=seeds, download_apks=False, workers=4,
        identity_policy=(
            IdentityPolicy(size=identity_pool) if identity_pool else None
        ),
        identity_seed=BENCH_HOSTILE_SEED,
    )
    return coordinator.crawl("bench-hostility", duration_days=15.0)


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def test_bench_hostility_recovery_floor(benchmark, hostile_world):
    polite, polite_s = _timed(_crawl, hostile_world)
    naive, naive_s = _timed(_crawl, hostile_world, hostile=True)

    rotated = benchmark.pedantic(
        _crawl, args=(hostile_world,),
        kwargs={"hostile": True, "identity_pool": 4},
        rounds=2, iterations=1,
    )
    rotated_s = benchmark.stats.stats.min
    telemetry = rotated.stats.telemetry

    shares = {
        m: (rotated.market_size(m) / polite.market_size(m))
        for m in polite.markets()
        if polite.market_size(m)
    }
    _record(
        "recovery",
        polite={"records": len(polite), "wall_s": polite_s},
        naive={
            "records": len(naive),
            "wall_s": naive_s,
            "dead_letters": len(naive.dead_letters),
            "dead_letter_reasons": naive.stats.telemetry.dead_letter_reasons(),
        },
        rotated={
            "records": len(rotated),
            "wall_s": rotated_s,
            "logins": telemetry.total_logins,
            "token_refreshes": telemetry.total_token_refreshes,
            "bans_hit": telemetry.total_bans_hit,
            "identity_rotations": telemetry.total_identity_rotations,
        },
        recovery_share_min=min(shares.values()),
        recovery_shares=shares,
        digest_match=rotated.content_digest() == polite.content_digest(),
        floor=RECOVERY_FLOOR,
    )
    print(
        f"\npolite {len(polite)} rec/{polite_s:.2f}s, "
        f"naive {len(naive)} rec ({len(naive.dead_letters)} dead letters), "
        f"rotated {len(rotated)} rec/{rotated_s:.2f}s "
        f"(min recovery {min(shares.values()):.1%})"
    )

    # The naive posture must actually be hurting, or the floor is vacuous.
    assert naive.dead_letters
    assert len(naive) < len(polite)
    # The enforced floor — and the stronger digest identity behind it.
    for market_id, share in shares.items():
        assert share >= RECOVERY_FLOOR, (market_id, share)
    assert rotated.content_digest() == polite.content_digest()
    assert not rotated.dead_letters
