"""Observability overhead benchmarks.

The PR's acceptance bound: a crawl run *without* ``--trace-out`` /
``--metrics-out`` must stay within 3% of the pre-observability crawl
wall time.  The disabled path's only per-request addition is
``HttpClient.request()`` testing ``self.obs is None`` before delegating
to ``_request()`` — which *is* the pre-PR request body, verbatim.  The
bound is therefore proved from two measurements:

1. the wrapper delta: per-call cost of ``request()`` (disabled path)
   minus ``_request()`` (the pre-PR body) against a no-op handler —
   the absolute overhead with zero server work, i.e. the overhead at
   its *most* visible;
2. a real disabled-recorder crawl's mean per-request wall cost.

``wrapper_delta / real_per_request_cost`` is the worst-case fraction
the observability layer can add to any crawl, and must sit far below
the 3% budget.  A full enabled-vs-disabled crawl comparison is printed
for context (tracing is allowed to cost; it is opt-in).
"""

import time

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.client import HttpClient
from repro.net.http import Response
from repro.obs import NULL_OBS, Observability
from repro.util.simtime import SimClock

BENCH_OBS_SEED = 7
BENCH_OBS_SCALE = 0.0001
OVERHEAD_BUDGET = 0.03

WRAPPER_CALLS = 50_000


def _noop_client() -> HttpClient:
    ok = Response.json_ok([])
    return HttpClient(lambda req: ok, SimClock(), breaker=None)


def _per_call(fn, path: str, calls: int) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(calls):
            fn(path, None)
        best = min(best, time.perf_counter() - start)
    return best / calls


def _crawl(world, obs: Observability):
    clock = SimClock()
    servers = {
        m: MarketServer(store, clock)
        for m, store in build_stores(world).items()
    }
    coordinator = CrawlCoordinator(
        servers, clock, download_apks=False, workers=1, obs=obs
    )
    started = time.perf_counter()
    snapshot = coordinator.crawl("bench-obs", duration_days=5.0)
    return snapshot, time.perf_counter() - started


def test_bench_disabled_path_within_budget():
    world = EcosystemGenerator(seed=BENCH_OBS_SEED, scale=BENCH_OBS_SCALE).generate()

    client = _noop_client()
    wrapped = _per_call(client.request, "/app", WRAPPER_CALLS)
    raw = _per_call(client._request, "/app", WRAPPER_CALLS)
    wrapper_delta = max(0.0, wrapped - raw)

    snapshot, wall = _crawl(world, NULL_OBS)
    requests = snapshot.stats.telemetry.total_requests
    assert requests > 0
    per_request = wall / requests

    overhead = wrapper_delta / per_request
    print(
        f"\ndisabled-path overhead: wrapper {wrapper_delta * 1e9:.0f}ns/req "
        f"vs crawl {per_request * 1e6:.1f}us/req -> {overhead:.3%} "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"disabled observability adds {overhead:.2%} per request "
        f"({wrapper_delta * 1e9:.0f}ns on {per_request * 1e6:.1f}us), "
        f"over the {OVERHEAD_BUDGET:.0%} budget"
    )


def test_bench_enabled_vs_disabled_crawl():
    world = EcosystemGenerator(seed=BENCH_OBS_SEED, scale=BENCH_OBS_SCALE).generate()

    baseline_snapshot, baseline_wall = _crawl(world, NULL_OBS)
    obs = Observability.from_flags(trace=True, metrics=True)
    traced_snapshot, traced_wall = _crawl(world, obs)

    # Recording must never perturb the crawl itself.
    assert traced_snapshot.content_digest() == baseline_snapshot.content_digest()
    assert len(obs.tracer.spans("http.request")) > 0
    assert len(obs.metrics) > 0

    ratio = traced_wall / baseline_wall if baseline_wall > 0 else 1.0
    print(
        f"\nfull recording: disabled {baseline_wall:.2f}s vs "
        f"trace+metrics {traced_wall:.2f}s ({ratio:.2f}x, "
        f"{len(obs.tracer)} trace records)"
    )
