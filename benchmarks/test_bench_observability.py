"""Observability overhead benchmarks.

The PR's acceptance bound: a crawl run *without* ``--trace-out`` /
``--metrics-out`` must stay within 3% of the pre-observability crawl
wall time.  The disabled path's only per-request addition is
``HttpClient.request()`` testing ``self.obs is None`` before delegating
to ``_request()`` — which *is* the pre-PR request body, verbatim.  The
bound is therefore proved from two measurements:

1. the wrapper delta: per-call cost of ``request()`` (disabled path)
   minus ``_request()`` (the pre-PR body) against a no-op handler —
   the absolute overhead with zero server work, i.e. the overhead at
   its *most* visible;
2. a real disabled-recorder crawl's mean per-request wall cost.

``wrapper_delta / real_per_request_cost`` is the worst-case fraction
the observability layer can add to any crawl, and must sit far below
the 3% budget.  A full enabled-vs-disabled crawl comparison is printed
for context (tracing is allowed to cost; it is opt-in).
"""

import time

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.client import HttpClient
from repro.net.http import Response
from repro.obs import NULL_OBS, Observability
from repro.obs.results import BenchResults
from repro.util.simtime import SimClock

BENCH_OBS_SEED = 7
BENCH_OBS_SCALE = 0.0001
#: Scale for the monitor-overhead bench: long enough crawls that the
#: interleaved best-of-N walls sit well above timer noise.
MONITOR_SCALE = 0.0002
OVERHEAD_BUDGET = 0.03
#: The live monitor (heartbeat + watchdog) vs. the same crawl with only
#: the metrics registry it rides on — its marginal cost is a handful of
#: phase-boundary ticks, and must stay within the 3% budget.
MONITOR_BUDGET = 1.0 + OVERHEAD_BUDGET

WRAPPER_CALLS = 50_000

_results = BenchResults("obs", seed=BENCH_OBS_SEED, scale=BENCH_OBS_SCALE)
_record = _results.record


def _noop_client() -> HttpClient:
    ok = Response.json_ok([])
    return HttpClient(lambda req: ok, SimClock(), breaker=None)


def _per_call(fn, path: str, calls: int) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(calls):
            fn(path, None)
        best = min(best, time.perf_counter() - start)
    return best / calls


def _crawl(world, obs: Observability):
    clock = SimClock()
    servers = {
        m: MarketServer(store, clock)
        for m, store in build_stores(world).items()
    }
    coordinator = CrawlCoordinator(
        servers, clock, download_apks=False, workers=1, obs=obs
    )
    started = time.perf_counter()
    snapshot = coordinator.crawl("bench-obs", duration_days=5.0)
    return snapshot, time.perf_counter() - started


def test_bench_disabled_path_within_budget():
    world = EcosystemGenerator(seed=BENCH_OBS_SEED, scale=BENCH_OBS_SCALE).generate()

    client = _noop_client()
    wrapped = _per_call(client.request, "/app", WRAPPER_CALLS)
    raw = _per_call(client._request, "/app", WRAPPER_CALLS)
    wrapper_delta = max(0.0, wrapped - raw)

    snapshot, wall = _crawl(world, NULL_OBS)
    requests = snapshot.stats.telemetry.total_requests
    assert requests > 0
    per_request = wall / requests

    overhead = wrapper_delta / per_request
    _record(
        "disabled_path",
        wrapper_delta_ns=round(wrapper_delta * 1e9, 1),
        per_request_us=round(per_request * 1e6, 2),
        overhead=round(overhead, 5),
        budget=OVERHEAD_BUDGET,
    )
    print(
        f"\ndisabled-path overhead: wrapper {wrapper_delta * 1e9:.0f}ns/req "
        f"vs crawl {per_request * 1e6:.1f}us/req -> {overhead:.3%} "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"disabled observability adds {overhead:.2%} per request "
        f"({wrapper_delta * 1e9:.0f}ns on {per_request * 1e6:.1f}us), "
        f"over the {OVERHEAD_BUDGET:.0%} budget"
    )


def test_bench_enabled_vs_disabled_crawl():
    world = EcosystemGenerator(seed=BENCH_OBS_SEED, scale=BENCH_OBS_SCALE).generate()

    baseline_snapshot, baseline_wall = _crawl(world, NULL_OBS)
    obs = Observability.from_flags(trace=True, metrics=True)
    traced_snapshot, traced_wall = _crawl(world, obs)

    # Recording must never perturb the crawl itself.
    assert traced_snapshot.content_digest() == baseline_snapshot.content_digest()
    assert len(obs.tracer.spans("http.request")) > 0
    assert len(obs.metrics) > 0

    ratio = traced_wall / baseline_wall if baseline_wall > 0 else 1.0
    _record(
        "full_recording",
        disabled_s=round(baseline_wall, 4),
        traced_s=round(traced_wall, 4),
        ratio=round(ratio, 4),
        trace_records=len(obs.tracer),
    )
    print(
        f"\nfull recording: disabled {baseline_wall:.2f}s vs "
        f"trace+metrics {traced_wall:.2f}s ({ratio:.2f}x, "
        f"{len(obs.tracer)} trace records)"
    )


def test_bench_monitor_overhead():
    """Heartbeat + stall watchdog must be digest-invariant and ~free.

    A full crawl's wall time jitters by far more than 3% between
    back-to-back runs, so — like the disabled-path test above — the
    bound is proved from direct marginal costs: price one monitor tick
    (fleet-time read + full watchdog scan) and one heartbeat against
    the live engine/telemetry the crawl used, multiply by the counts
    the monitored crawl actually performed, and take the total as a
    fraction of the crawl's wall time.  The raw wall-clock comparison
    is recorded as context only (``wall_ratio``).
    """
    from repro.obs import CampaignMonitor, MetricsRegistry

    world = EcosystemGenerator(seed=BENCH_OBS_SEED, scale=MONITOR_SCALE).generate()

    baseline_obs = Observability.from_flags(trace=False, metrics=True)
    baseline_snapshot, baseline_wall = _crawl(world, baseline_obs)

    clock = SimClock()
    servers = {
        m: MarketServer(store, clock)
        for m, store in build_stores(world).items()
    }
    monitored_obs = Observability.from_flags(
        trace=False, metrics=True, monitor=True
    )
    coordinator = CrawlCoordinator(
        servers, clock, download_apks=False, workers=1, obs=monitored_obs
    )
    started = time.perf_counter()
    monitored_snapshot = coordinator.crawl("bench-obs", duration_days=5.0)
    monitored_wall = time.perf_counter() - started

    # The monitor only reads engine/telemetry state: bit-identical crawl.
    assert (
        monitored_snapshot.content_digest()
        == baseline_snapshot.content_digest()
    )
    monitor = monitored_obs.monitor
    # It did actually run: at least the end-of-campaign heartbeat fired.
    assert monitor.heartbeats > 0

    telemetry = monitored_snapshot.stats.telemetry
    # One tick per phase boundary: discovery, each search round, finish.
    ticks = 2 + telemetry.search_rounds
    beats = monitor.heartbeats

    # Price the marginal operations against the same live fleet, with
    # thresholds armed so nothing fires spuriously mid-measurement.
    probe = CampaignMonitor(MetricsRegistry(), interval=1e9, stall_budget=1e9)
    engine = coordinator._engine
    probe.begin("probe", engine, telemetry, clock)
    probe_ticks = 2_000
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(probe_ticks):
            probe.tick("probe")
        best = min(best, time.perf_counter() - start)
    per_tick = best / probe_ticks

    # begin() + finish() emits exactly one heartbeat (plus a watchdog
    # arm/scan, deliberately over-counted on the heartbeat's tab).
    probe_beats = 500
    start = time.perf_counter()
    for _ in range(probe_beats):
        probe.begin("probe", engine, telemetry, clock)
        probe.finish()
    per_beat = (time.perf_counter() - start) / probe_beats

    crawl_wall = min(baseline_wall, monitored_wall)
    overhead = (ticks * per_tick + beats * per_beat) / crawl_wall
    ratio = 1.0 + overhead
    wall_ratio = monitored_wall / baseline_wall if baseline_wall > 0 else 1.0
    _record(
        "monitor_overhead",
        baseline_s=round(baseline_wall, 4),
        monitored_s=round(monitored_wall, 4),
        wall_ratio=round(wall_ratio, 4),
        per_tick_us=round(per_tick * 1e6, 2),
        per_beat_us=round(per_beat * 1e6, 2),
        ticks=ticks,
        beats=beats,
        overhead=round(overhead, 6),
        ratio=round(ratio, 4),
        budget=MONITOR_BUDGET,
        heartbeats=monitor.heartbeats,
        stalls=monitor.stalls,
        digest=monitored_snapshot.content_digest(),
    )
    print(
        f"\nmonitor overhead: {ticks} ticks x {per_tick * 1e6:.1f}us + "
        f"{beats} beats x {per_beat * 1e6:.1f}us over a {crawl_wall:.3f}s "
        f"crawl -> {overhead:.4%} ({ratio:.4f}x, budget {MONITOR_BUDGET:.2f}x; "
        f"raw walls {baseline_wall:.3f}s vs {monitored_wall:.3f}s)"
    )
    assert ratio <= MONITOR_BUDGET, (
        f"live monitor costs {ratio:.4f}x the metrics-only crawl "
        f"({ticks} ticks x {per_tick * 1e6:.1f}us, {beats} beats x "
        f"{per_beat * 1e6:.1f}us), over the {MONITOR_BUDGET:.2f}x budget"
    )
