"""Benchmarks for the pipeline's heavy stages.

These time the substrate itself — world generation, store building, APK
serialization/parsing, one full crawl — at a smaller scale than the
shared study so each round stays bounded.
"""


from repro import Study, StudyConfig
from repro.apk.archive import parse_apk
from repro.ecosystem.apps import build_apk
from repro.ecosystem.generator import EcosystemGenerator
from repro.ecosystem.libraries import default_catalog
from repro.markets.profiles import get_profile
from repro.markets.store import build_stores

PIPELINE_SEED = 1234
PIPELINE_SCALE = 0.0004


def test_bench_world_generation(benchmark):
    def generate():
        return EcosystemGenerator(seed=PIPELINE_SEED, scale=PIPELINE_SCALE).generate()

    world = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert world.apps


def test_bench_store_building(benchmark):
    world = EcosystemGenerator(seed=PIPELINE_SEED, scale=PIPELINE_SCALE).generate()
    stores = benchmark.pedantic(build_stores, args=(world,), rounds=3, iterations=1)
    assert stores["google_play"]


def test_bench_full_study(benchmark):
    def run():
        return Study(StudyConfig(seed=PIPELINE_SEED, scale=PIPELINE_SCALE)).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.snapshot) > 0


def test_bench_apk_roundtrip(benchmark):
    world = EcosystemGenerator(seed=PIPELINE_SEED, scale=0.0002).generate()
    catalog = default_catalog()
    profile = get_profile("tencent")
    apps = [a for a in world.apps if a.placements][:200]

    def roundtrip():
        total = 0
        for app in apps:
            blob = build_apk(app, 0, profile, catalog)
            total += parse_apk(blob).size_bytes
        return total

    total = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert total > 0
