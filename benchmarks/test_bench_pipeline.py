"""Benchmarks for the pipeline's heavy stages.

These time the substrate itself — world generation, store building, APK
serialization/parsing, one full crawl — at a smaller scale than the
shared study so each round stays bounded.  The store-building and
APK-roundtrip benches share one module-scoped world instead of each
regenerating their own (generation is itself benchmarked, separately).
"""


import pytest

from repro import Study, StudyConfig
from repro.apk.archive import parse_apk
from repro.ecosystem.apps import build_apk
from repro.ecosystem.generator import EcosystemGenerator
from repro.ecosystem.libraries import default_catalog
from repro.markets.profiles import get_profile
from repro.markets.store import build_stores

PIPELINE_SEED = 1234
PIPELINE_SCALE = 0.0004


@pytest.fixture(scope="module")
def pipeline_world():
    """One generated world shared by every bench in this module."""
    return EcosystemGenerator(seed=PIPELINE_SEED, scale=PIPELINE_SCALE).generate()


def test_bench_world_generation(benchmark):
    def generate():
        return EcosystemGenerator(seed=PIPELINE_SEED, scale=PIPELINE_SCALE).generate()

    world = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert world.apps


def test_bench_store_building(benchmark, pipeline_world):
    stores = benchmark.pedantic(
        build_stores, args=(pipeline_world,), rounds=3, iterations=1
    )
    assert stores["google_play"]


def test_bench_full_study(benchmark):
    def run():
        return Study(StudyConfig(seed=PIPELINE_SEED, scale=PIPELINE_SCALE)).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.snapshot) > 0


def test_bench_apk_roundtrip(benchmark, pipeline_world):
    catalog = default_catalog()
    profile = get_profile("tencent")
    apps = [a for a in pipeline_world.apps if a.placements][:200]

    def roundtrip():
        total = 0
        for app in apps:
            blob = build_apk(app, 0, profile, catalog)
            total += parse_apk(blob).size_bytes
        return total

    total = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert total > 0
