"""Benchmarks for the serving tier and the asyncio crawl client.

The headline number is lane throughput at equal lane count: 17 lanes
against the socket tier with per-request service latency, the thread
engine's one-request-in-flight discipline vs the asyncio client
pipelining ``PIPELINE`` requests per lane.  Latency-bound traffic is
where pipelining pays — the async client must sustain at least
``MIN_PIPELINE_RATIO`` (2x) the thread engine's aggregate req/s.

Two companion sections land in ``BENCH_serving.json``:

* ``campaign`` — a full metadata campaign over sockets on both
  engines.  Campaigns mix serial discovery walks and tier-side CPU
  (framing + handle dispatch) into the denominator, so the ratio there
  is informational, not gated; the digests must match exactly.
* ``loadgen`` — the end-user load generator's latency quantiles and
  throughput against the same tier (CI smoke writes this section via
  ``repro loadgen`` instead).
"""

import time

import pytest

from repro.crawler.aengine import AsyncCrawlEngine
from repro.crawler.crawler import CrawlCoordinator
from repro.crawler.engine import CrawlEngine
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.obs.results import BenchResults
from repro.serving import LoadGenerator, ServingTier
from repro.util.simtime import SimClock

BENCH_SERVING_SEED = 7
BENCH_SERVING_SCALE = 0.0002
LATENCY_S = 0.02  # tier-injected service latency per request
REQUESTS_PER_LANE = 80
PIPELINE = 8
MIN_PIPELINE_RATIO = 2.0

_record = BenchResults(
    "serving", seed=BENCH_SERVING_SEED, scale=BENCH_SERVING_SCALE
).record


@pytest.fixture(scope="module")
def serving_world():
    return EcosystemGenerator(
        seed=BENCH_SERVING_SEED, scale=BENCH_SERVING_SCALE
    ).generate()


def _fleet(world):
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(s, clock) for m, s in stores.items()}
    return stores, clock, servers


def _lane_batches(stores):
    """The same ``/app`` request batch per lane for both engines."""
    batches = {}
    for market_id, store in stores.items():
        packages = [l.package for l in store.iter_live(0.0)][:REQUESTS_PER_LANE]
        repeated = packages * ((REQUESTS_PER_LANE // max(1, len(packages))) + 1)
        batches[market_id] = repeated[:REQUESTS_PER_LANE]
    return batches


def _lane_throughput(world, engine_name):
    """Aggregate req/s of 17 lanes draining equal batches over sockets."""
    stores, clock, servers = _fleet(world)
    batches = _lane_batches(stores)
    tier = ServingTier(servers, latency_s=LATENCY_S).start()
    try:
        if engine_name == "thread":
            engine = CrawlEngine(
                servers, clock, workers=len(servers),
                transports=tier.transports(),
            )

            def make_task(market_id):
                client = engine.client(market_id)

                def task():
                    for package in batches[market_id]:
                        client.get_json("/app", {"package": package})

                return task
        else:
            engine = AsyncCrawlEngine(
                servers, clock, workers=len(servers), pipeline=PIPELINE,
                transports=tier.async_transports(),
            )

            def make_task(market_id):
                client = engine.client(market_id)

                def task():
                    client.get_json_many(
                        [("/app", {"package": p}) for p in batches[market_id]]
                    )

                return task

        tasks = {m: make_task(m) for m in servers}
        start = time.perf_counter()
        engine.run(tasks)
        wall = time.perf_counter() - start
        engine.close()
        total = sum(len(batch) for batch in batches.values())
        return total, wall
    finally:
        tier.stop()


def _campaign(world, engine_name, pipeline):
    stores, clock, servers = _fleet(world)
    tier = ServingTier(servers, latency_s=0.002).start()
    transports = (tier.async_transports() if engine_name == "asyncio"
                  else tier.transports())
    coordinator = CrawlCoordinator(
        servers, clock, download_apks=False, workers=len(servers),
        transports=transports, engine=engine_name, pipeline=pipeline,
    )
    try:
        start = time.perf_counter()
        snapshot = coordinator.crawl("bench-serving", duration_days=15.0)
        wall = time.perf_counter() - start
    finally:
        coordinator.close()
        tier.stop()
    requests = sum(s.requests_served for s in servers.values())
    return snapshot, requests, wall


def test_bench_serving_pipeline_throughput(serving_world):
    thread_total, thread_wall = _lane_throughput(serving_world, "thread")
    async_total, async_wall = _lane_throughput(serving_world, "asyncio")
    assert async_total == thread_total
    thread_rps = thread_total / thread_wall
    async_rps = async_total / async_wall
    ratio = async_rps / thread_rps
    print(
        f"\n17 lanes x {REQUESTS_PER_LANE} req @ {LATENCY_S * 1000:.0f}ms: "
        f"thread {thread_rps:.0f} req/s vs async(depth {PIPELINE}) "
        f"{async_rps:.0f} req/s -> {ratio:.1f}x"
    )
    _record(
        "engine_throughput",
        lanes=17,
        requests_per_lane=REQUESTS_PER_LANE,
        latency_ms=LATENCY_S * 1000,
        pipeline=PIPELINE,
        thread_rps=round(thread_rps, 1),
        async_rps=round(async_rps, 1),
        ratio=round(ratio, 2),
    )
    assert ratio >= MIN_PIPELINE_RATIO, (
        f"async client only {ratio:.2f}x the thread engine "
        f"({async_rps:.0f} vs {thread_rps:.0f} req/s)"
    )


def test_bench_serving_campaign_digest_parity(serving_world):
    thread_snap, thread_req, thread_wall = _campaign(serving_world, "thread", 1)
    async_snap, async_req, async_wall = _campaign(
        serving_world, "asyncio", PIPELINE
    )
    assert async_snap.content_digest() == thread_snap.content_digest()
    assert async_req == thread_req
    thread_rps = thread_req / thread_wall
    async_rps = async_req / async_wall
    print(
        f"\ncampaign over sockets: thread {thread_rps:.0f} req/s, "
        f"async {async_rps:.0f} req/s (digest-identical)"
    )
    _record(
        "campaign",
        requests=thread_req,
        thread_rps=round(thread_rps, 1),
        async_rps=round(async_rps, 1),
        ratio=round(async_rps / thread_rps, 2),
        digest=thread_snap.content_digest(),
    )


def test_bench_serving_loadgen_smoke(serving_world):
    stores, clock, servers = _fleet(serving_world)
    with ServingTier(servers, latency_s=0.002) as tier:
        report = LoadGenerator(
            tier, servers, users=8, requests_per_user=25,
            seed=BENCH_SERVING_SEED,
        ).run()
    assert report.errors == 0
    assert report.p99_ms > 0
    print(
        f"\nloadgen: {report.rps:.0f} req/s, "
        f"p50 {report.p50_ms:.2f}ms, p99 {report.p99_ms:.2f}ms"
    )
    _record("loadgen", **report.to_dict())
