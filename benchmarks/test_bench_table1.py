"""Benchmark: regenerate the paper's Table 1."""

from conftest import run_and_report


def test_bench_table1(benchmark, bench_study):
    report = run_and_report(benchmark, "table1", bench_study)
    assert report.rows
