"""Benchmark: regenerate the paper's Table 2."""

from conftest import run_and_report


def test_bench_table2(benchmark, bench_study):
    report = run_and_report(benchmark, "table2", bench_study)
    assert report.rows
