"""Benchmark: regenerate the paper's Table 3."""

from conftest import run_and_report


def test_bench_table3(benchmark, bench_study):
    report = run_and_report(benchmark, "table3", bench_study)
    assert report.rows
