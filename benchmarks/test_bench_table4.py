"""Benchmark: regenerate the paper's Table 4."""

from conftest import run_and_report


def test_bench_table4(benchmark, bench_study):
    report = run_and_report(benchmark, "table4", bench_study)
    assert report.rows
