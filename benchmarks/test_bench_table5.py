"""Benchmark: regenerate the paper's Table 5."""

from conftest import run_and_report


def test_bench_table5(benchmark, bench_study):
    report = run_and_report(benchmark, "table5", bench_study)
    assert report.rows
