"""Benchmark: regenerate the paper's Table 6."""

from conftest import run_and_report


def test_bench_table6(benchmark, bench_study):
    report = run_and_report(benchmark, "table6", bench_study)
    assert report.rows
