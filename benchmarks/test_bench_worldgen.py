"""Benchmarks for sharded world generation and the segment cache.

Two enforced floors, mirroring the crawl/analysis engines' bench
contracts:

* ``--gen-workers 4`` must generate at least ``MIN_PARALLEL_SPEEDUP``×
  faster than serial at a scale large enough to amortize pool startup
  (the plan/submit/injection stages stay serial, so the ceiling at 4
  workers is ~2.3× with ~75% of generation time in the sharded build
  and finalize passes).
* Warm segment-cache blob building must beat the cold path by
  ``MIN_SEGMENT_SPEEDUP``× (zlib still runs per blob, so the win is
  bounded; the point is that it is real and never changes bytes).

Every timed variant must also produce bit-identical output — the world
content digest for the parallel run, blob md5s for the cached build.  A
fast wrong answer fails the bench.

These tests intentionally do NOT use the pytest-benchmark fixture: they
enforce floors with their own timers (like the analysis-engine speedup
benches) and must run in a plain ``pytest`` invocation — the CI worldgen
job runs this file directly and uploads ``BENCH_worldgen.json`` next to
BENCH_crawl/BENCH_analysis.

The speedup floor needs real CPUs; it skips on machines with fewer than
4 (CI's ubuntu runners have 4).  Determinism and byte-equality checks
run everywhere.
"""

import hashlib
import os
import time

import pytest

from repro.apk.archive import SegmentCache
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.profiles import ALL_MARKET_IDS
from repro.markets.store import build_stores
from repro.obs.results import BenchResults

WORLDGEN_SEED = 21
#: Scale for the speedup bench: ~9.4K apps, ~8s serial — enough to
#: amortize fork/pickle overhead while staying CI-sized.
SPEEDUP_SCALE = 0.002
#: Scale for the segment-cache bench (every blob is built twice).
SEGMENT_SCALE = 0.0005

MIN_PARALLEL_SPEEDUP = 2.0
MIN_SEGMENT_SPEEDUP = 1.05

_record = BenchResults("worldgen", seed=WORLDGEN_SEED, scale=SPEEDUP_SCALE).record


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _generate(workers):
    return EcosystemGenerator(
        WORLDGEN_SEED, SPEEDUP_SCALE, gen_workers=workers
    ).generate()


def test_bench_parallel_speedup():
    if _cpus() < 4:
        pytest.skip("speedup floor needs >= 4 CPUs")

    start = time.perf_counter()
    serial_world = _generate(1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel_world = _generate(4)
    parallel_s = time.perf_counter() - start

    # Identical worlds at any width — the sharding contract.
    assert parallel_world.content_digest() == serial_world.content_digest()

    speedup = serial_s / parallel_s
    _record(
        "parallel",
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        workers=4,
        speedup=round(speedup, 2),
        apps=len(serial_world.apps),
        digest=serial_world.content_digest(),
    )
    print(f"\ngenerate serial {serial_s:.2f}s vs 4 workers {parallel_s:.2f}s "
          f"-> {speedup:.1f}x")
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"4-worker generation only {speedup:.1f}x faster than serial "
        f"({serial_s:.2f}s vs {parallel_s:.2f}s)"
    )


def _build_all_blobs(stores):
    """Build every market's every blob; return md5s keyed by listing."""
    md5s = {}
    for market_id in ALL_MARKET_IDS:
        store = stores[market_id]
        for listing in store.iter_live(0.0):
            blob = store.apk_bytes(listing.package, 0.0)
            if blob is not None:
                md5s[(market_id, listing.package)] = hashlib.md5(blob).hexdigest()
    return md5s


def test_bench_segment_cache():
    world = EcosystemGenerator(WORLDGEN_SEED, SEGMENT_SCALE).generate()

    start = time.perf_counter()
    cold_md5s = _build_all_blobs(build_stores(world, segment_cache=False))
    cold_s = time.perf_counter() - start

    segments = SegmentCache()
    start = time.perf_counter()
    warm_md5s = _build_all_blobs(build_stores(world, segments=segments))
    warm_s = time.perf_counter() - start

    # Byte-identity is the cache's contract: every served blob's md5 is
    # unchanged with the cache on.
    assert warm_md5s == cold_md5s
    stats = segments.stats()
    assert stats["hits"] > stats["misses"] > 0, stats

    speedup = cold_s / warm_s
    _record(
        "segment_cache",
        cold_s=round(cold_s, 3),
        warm_s=round(warm_s, 3),
        speedup=round(speedup, 2),
        blobs=len(cold_md5s),
        **stats,
    )
    print(f"\nblob build cold {cold_s:.2f}s vs segment cache {warm_s:.2f}s "
          f"-> {speedup:.1f}x ({stats['hits']} hits / {stats['misses']} misses)")
    assert speedup >= MIN_SEGMENT_SPEEDUP, (
        f"segment-cache blob build only {speedup:.2f}x faster than cold "
        f"({cold_s:.2f}s vs {warm_s:.2f}s)"
    )
