#!/usr/bin/env python
"""Scenario: incremental experiment runs with the artifact cache.

An analysis session rarely runs once: you regenerate tables while
iterating on one experiment, or re-run the whole study after a crash.
The persistent artifact cache makes the second run incremental — every
per-APK artifact (library features, VirusTotal verdicts, unused
permissions) is read back from disk instead of recomputed — while the
checkpoint journal spares the re-crawl.  The resumed run must report
bit-identical tables and figures, and this script proves it:

1. run a checkpointed study end to end, digest every report;
2. run it again against the same checkpoint directory (journal resume +
   warm artifact cache);
3. assert the second run hit the cache and produced identical digests.

    python examples/cached_analysis.py
"""

import tempfile

from repro import Study, StudyConfig
from repro.experiments import digest_reports, run_all

SEED = 42
SCALE = 0.0005


def run_session(checkpoint_dir, resume):
    config = StudyConfig(
        seed=SEED,
        scale=SCALE,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        analysis_workers=4,
        artifact_cache_dir=f"{checkpoint_dir}/artifacts",
    )
    result = Study(config).run()
    digests = digest_reports(run_all(result))
    return result, digests


def main() -> int:
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        print(f"cold session: crawl + analyze (seed={SEED}, scale={SCALE})")
        cold, cold_digests = run_session(checkpoint_dir, resume=False)
        cold_stats = cold.engine.cache.stats
        print(f"  {cold.engine.stats_line()}")
        assert cold_stats.stores > 0, "cold run should populate the cache"

        print("warm session: resume the journal, reuse the artifacts")
        warm, warm_digests = run_session(checkpoint_dir, resume=True)
        warm_stats = warm.engine.cache.stats
        print(f"  {warm.engine.stats_line()}")

        assert warm_stats.hits > 0, "warm run should hit the artifact cache"
        assert warm_stats.misses == 0, (
            f"warm run missed {warm_stats.misses} artifacts"
        )
        assert warm_digests == cold_digests, "resumed reports must be identical"
        print(f"OK: {len(warm_digests)} report digests identical, "
              f"{warm_stats.hits} artifacts served from cache")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
