#!/usr/bin/env python
"""Scenario: fake and clone hunting (Sections 6.1-6.2).

Runs LibRadar-style library detection (so library code doesn't pollute
similarity), then both clone detectors and the fake-app heuristic, and
validates them against the generator's ground truth — a measurement the
paper could not make on the real ecosystem.

    python examples/clone_hunting.py
"""

from collections import Counter

from repro import Study, StudyConfig
from repro.markets.profiles import ALL_MARKET_IDS, get_profile


def main() -> None:
    result = Study(StudyConfig(seed=42, scale=0.0006)).run()
    world = result.world

    detection = result.library_detection
    print(f"library clusters detected: {len(detection.libraries)} "
          f"({len(detection.digest_identity)} version digests)")
    print("most common libraries:")
    for lib in detection.libraries[:6]:
        print(f"  {lib.identity:28s} apps={lib.app_count:5d} "
              f"versions={lib.version_count:2d} [{lib.category}]")

    sb = result.signature_clones
    cb = result.code_clones
    fakes = result.fakes
    print(f"\nsignature-based clones: {len(sb.clone_units):,} "
          f"in {len(sb.clusters):,} multi-signature packages")
    print(f"code-based clones: {len(cb.clone_units):,} "
          f"from {len(cb.pairs):,} detected pairs")
    print(f"fake apps: {len(fakes.fake_units):,}")

    # Ground-truth validation (possible only in simulation).
    def evaluate(detected, provenance):
        truth = {
            (a.package, a.developer.fingerprint)
            for a in world.apps if a.provenance == provenance
        }
        tp = len(truth & detected)
        precision = tp / len(detected) if detected else 1.0
        recall = tp / len(truth) if truth else 1.0
        return precision, recall

    for name, detected, provenance in (
        ("code-based clones", cb.clone_units, "cb_clone"),
        ("signature clones", sb.clone_units, "sb_clone"),
        ("fake apps", fakes.fake_units, "fake"),
    ):
        precision, recall = evaluate(set(detected), provenance)
        print(f"  {name:20s} precision={precision:.2f} recall={recall:.2f}")

    # Figure 10: where do clones come from, where do they go?
    heatmap = cb.heatmap(result.units_by_key, ALL_MARKET_IDS)
    sources = Counter()
    destinations = Counter()
    for (src, dst), count in heatmap.items():
        sources[src] += count
        destinations[dst] += count
    print("\ntop clone source markets (paper: Google Play is premier):")
    for market, count in sources.most_common(4):
        print(f"  {get_profile(market).display_name:15s} {count:5d}")
    print("top clone destination markets (paper: 25PP receives most):")
    for market, count in destinations.most_common(4):
        print(f"  {get_profile(market).display_name:15s} {count:5d}")
    intra = sum(heatmap[(m, m)] for m in ALL_MARKET_IDS)
    print(f"intra-market clones: {intra:,}")


if __name__ == "__main__":
    main()
