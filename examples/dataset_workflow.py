#!/usr/bin/env python
"""Scenario: persist a crawl and re-analyze it later.

The paper released its dataset to the research community; this workflow
shows the equivalent here — crawl once, save the snapshot to disk, then
run analyses on the loaded copy without touching the markets again.

    python examples/dataset_workflow.py [path]
"""

import os
import sys
import tempfile
import time

from repro import Study, StudyConfig
from repro.analysis.corpus import build_units
from repro.analysis.libraries import LibraryDetector
from repro.analysis.publishing import single_store_shares
from repro.crawler.dataset import load_snapshot, save_snapshot


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        tempfile.gettempdir(), "repro-snapshot.jsonl.gz"
    )

    print("crawling...")
    result = Study(StudyConfig(seed=42, scale=0.0004)).run()
    snapshot = result.snapshot

    start = time.time()
    count = save_snapshot(snapshot, path)
    size_mb = os.path.getsize(path) / 1e6
    print(f"saved {count:,} records to {path} "
          f"({size_mb:.1f} MB, {time.time() - start:.1f}s)")

    start = time.time()
    loaded = load_snapshot(path)
    print(f"loaded {len(loaded):,} records back ({time.time() - start:.1f}s)")

    # Analyses on the loaded dataset give identical answers.
    original_shares = single_store_shares(snapshot)
    loaded_shares = single_store_shares(loaded)
    assert original_shares == loaded_shares
    print("single-store shares identical after the round trip")

    units = build_units(loaded)
    detection = LibraryDetector().fit(units)
    print(f"re-ran library detection on the loaded corpus: "
          f"{len(detection.libraries)} libraries over {len(units):,} units")
    top = detection.usage_table(units)[:3]
    for identity, usage, category in top:
        print(f"  {identity:28s} {usage:6.1%} [{category}]")


if __name__ == "__main__":
    main()
