#!/usr/bin/env python
"""Scenario: render the paper's key figures as terminal charts.

Uses :mod:`repro.core.plots` to draw Figure 2 (download bins), Figure 6
(rating CDFs), Figure 9 (outdated apps) and Figure 10 (clone heatmap)
from one study run.

    python examples/figures_gallery.py
"""

from repro import Study, StudyConfig
from repro.analysis.downloads import download_bin_distribution
from repro.analysis.publishing import highest_version_shares
from repro.analysis.ratings import rating_cdf
from repro.core.plots import bar_chart, cdf_plot, grouped_bars, heatmap
from repro.markets.profiles import (
    ALL_MARKET_IDS,
    DOWNLOAD_BIN_LABELS,
    get_profile,
)


def main() -> None:
    result = Study(StudyConfig(seed=42, scale=0.0006)).run()
    snapshot = result.snapshot

    print("=" * 70)
    print("Figure 2 — download bins, measured vs paper (Tencent Myapp)")
    print("=" * 70)
    measured = download_bin_distribution(snapshot, "tencent")
    paper = get_profile("tencent").download_bin_shares
    print(grouped_bars({
        "measured": dict(zip(DOWNLOAD_BIN_LABELS, measured)),
        "paper": dict(zip(DOWNLOAD_BIN_LABELS, paper)),
    }))

    print()
    print("=" * 70)
    print("Figure 6 — rating CDF, Google Play (mass at 0 = unrated)")
    print("=" * 70)
    xs, cdf = rating_cdf(snapshot, "google_play")
    print(cdf_plot(xs, cdf, height=8, width=42))

    print()
    print("=" * 70)
    print("Figure 9 — share of apps at the globally-highest version")
    print("=" * 70)
    shares = highest_version_shares(snapshot)
    print(bar_chart(
        {get_profile(m).display_name: shares.get(m) for m in ALL_MARKET_IDS},
        width=36, fmt="{:.1%}", sort=True,
    ))

    print()
    print("=" * 70)
    print("Figure 10 — clone flows (rows: source, columns: destination)")
    print("=" * 70)
    flows = result.code_clones.heatmap(result.units_by_key, ALL_MARKET_IDS)
    print(heatmap(flows, rows=ALL_MARKET_IDS, columns=ALL_MARKET_IDS))


if __name__ == "__main__":
    main()
