#!/usr/bin/env python
"""Scenario: crawling a fleet of actively hostile markets.

Real Chinese app markets do not politely serve crawlers: they demand
login sessions, answer in binary wire formats, velocity-ban aggressive
clients, and sometimes refuse catalog enumeration outright.  This
scenario turns ALL of those behaviors on for every market and shows
the two crawler postures side by side:

* a naive crawler (no identity pool) that eats every ban as a dead
  letter and loses coverage;
* a rotation-enabled crawler that absorbs bans by rotating identities
  and converges to the *bit-identical* snapshot digest of a polite,
  hostility-free baseline.

The campaign report is written for CI to upload as an artifact:

    python examples/hostile_crawl.py [HOSTILE_CAMPAIGN.md]

The same scenario is reachable from the CLI via
``python -m repro run --hostility full --identity-pool 4`` (or
``--hostility profile`` for each market's own archetype behaviors).
"""

import sys
from pathlib import Path

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.hostility import HostilityPolicy
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.identity import IdentityPolicy
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock

#: Every behavior, on every market — the acceptance-scenario fleet.
FULL_HOSTILITY = HostilityPolicy.full()

#: The coverage floor the rotation-enabled crawler must clear.
RECOVERY_FLOOR = 0.90


def crawl(world, hostile=False, identity_pool=0):
    """One metadata campaign; optionally against a fully hostile fleet."""
    stores = build_stores(world)
    clock = SimClock()
    servers = {
        m: MarketServer(s, clock, hostility=FULL_HOSTILITY if hostile else None)
        for m, s in stores.items()
    }
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    coordinator = CrawlCoordinator(
        servers, clock, gp_seeds=seeds, download_apks=False, workers=4,
        identity_policy=(
            IdentityPolicy(size=identity_pool) if identity_pool else None
        ),
        identity_seed=7,
    )
    return coordinator.crawl("hostile-campaign", duration_days=15.0)


def coverage_table(polite, hostile):
    lines = ["| market | polite | hostile | recovered |",
             "|---|---:|---:|---:|"]
    for market_id in polite.markets():
        base = polite.market_size(market_id)
        got = hostile.market_size(market_id)
        share = got / base if base else 1.0
        lines.append(f"| {market_id} | {base:,} | {got:,} | {share:.1%} |")
    return "\n".join(lines)


def main() -> None:
    report_path = Path(sys.argv[1] if len(sys.argv) > 1 else "HOSTILE_CAMPAIGN.md")

    print("synthesizing the ecosystem...")
    world = EcosystemGenerator(seed=7, scale=0.0004).generate()

    polite = crawl(world)
    print(f"\npolite baseline:   {len(polite):,} records, "
          f"digest {polite.content_digest():016x}")

    # -- posture 1: no identity pool — every ban is fatal ----------------
    naive = crawl(world, hostile=True)
    reasons = naive.stats.telemetry.dead_letter_reasons()
    print(f"naive crawler:     {len(naive):,} records, "
          f"{len(naive.dead_letters)} dead letters {reasons}")

    # -- posture 2: identity rotation absorbs the bans -------------------
    rotated = crawl(world, hostile=True, identity_pool=4)
    telemetry = rotated.stats.telemetry
    print(f"rotating crawler:  {len(rotated):,} records, "
          f"digest {rotated.content_digest():016x}")
    print(f"  logins={telemetry.total_logins} "
          f"bans hit={telemetry.total_bans_hit} "
          f"rotations={telemetry.total_identity_rotations}")

    assert rotated.content_digest() == polite.content_digest(), (
        "rotation-enabled crawl must converge to the polite baseline"
    )
    for market_id in polite.markets():
        base, got = polite.market_size(market_id), rotated.market_size(market_id)
        assert got >= RECOVERY_FLOOR * base, (market_id, got, base)
    print("rotating crawler converges to the polite baseline digest "
          f"(>= {RECOVERY_FLOOR:.0%} coverage on every market)")

    report = "\n".join([
        "# Hostile campaign report",
        "",
        f"Fleet hostility: `{FULL_HOSTILITY.describe()}` on every market.",
        "",
        "## Coverage (rotation-enabled vs polite baseline)",
        "",
        coverage_table(polite, rotated),
        "",
        f"Digest match: `{rotated.content_digest() == polite.content_digest()}` "
        f"(`{rotated.content_digest():016x}`)",
        "",
        f"Naive (no identity pool) contrast: {len(naive):,} records, "
        f"{len(naive.dead_letters)} dead letters, reasons {reasons}.",
        "",
        "## Campaign telemetry",
        "",
        "```",
        telemetry.stats_report(),
        "```",
        "",
    ])
    report_path.write_text(report, encoding="utf-8")
    print(f"\ncampaign report written to {report_path}")


if __name__ == "__main__":
    main()
