#!/usr/bin/env python
"""Scenario: drive the crawler by hand against the market servers.

Shows the moving parts of Section 3 individually: per-market discovery
strategies, the cross-market parallel search, Google Play's APK rate
limiting, and the AndroZoo-style archive backfill.

    python examples/market_crawl.py
"""

from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.profiles import ALL_MARKET_IDS, get_profile
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.client import HttpClient
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock


def main() -> None:
    print("synthesizing the ecosystem...")
    world = EcosystemGenerator(seed=7, scale=0.0004).generate()
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(store, clock) for m, store in stores.items()}

    # Poke a market's web interface directly.
    tencent = HttpClient(servers["tencent"].handle, clock)
    categories = tencent.get_json("/categories")
    print(f"\nTencent Myapp exposes {len(categories)} categories; first page "
          f"of {categories[0]!r}:")
    for meta in tencent.get_json("/category", {"name": categories[0], "page": 0})[:5]:
        print(f"  {meta['package']:40s} {meta['name']}")

    # Baidu's incremental integer index (footnote 4 in the paper).
    baidu = HttpClient(servers["baidu"].handle, clock)
    print("\nBaidu's incremental index, entries 0-4:")
    for i in range(5):
        meta = baidu.get_json("/index", {"i": i})
        if meta:
            print(f"  /software/{i}.html -> {meta['package']}")

    # Full campaign with parallel search and backfill.
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    coordinator = CrawlCoordinator(
        servers, clock, gp_seeds=seeds, backfill=ArchiveBackfill(world)
    )
    print(f"\ncrawling all 17 markets from {len(seeds)} Google Play seeds...")
    snapshot = coordinator.crawl("august-2017")
    stats = snapshot.stats

    print(f"records: {stats.records:,}  parallel searches: {stats.searches:,}")
    print(f"APKs downloaded: {stats.apk_downloaded:,}  "
          f"backfilled from archive: {stats.apk_backfilled:,}  "
          f"missing: {stats.apk_missing:,}")
    print(f"rate-limited markets: {sorted(stats.rate_limited_markets)}")

    print("\nper-market coverage:")
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        print(f"  {profile.display_name:15s} listings={snapshot.market_size(market_id):5d} "
              f"store={len(stores[market_id]):5d} "
              f"apk_coverage={snapshot.apk_coverage(market_id):6.1%}")


if __name__ == "__main__":
    main()
