#!/usr/bin/env python
"""Scenario: market vetting pipelines, standalone (Section 2).

Submits the same batch of apps — clean releases, SDK adware, trojans,
fakes, repackaged clones — to every market's vetting pipeline and tallies
acceptance, reproducing Table 1's policy differences in action: Google
Play and Huawei catch most overt malware, HiApk and PC Online accept
everything.

    python examples/market_vetting.py
"""

import numpy as np

from repro.markets.profiles import ALL_MARKET_IDS, get_profile
from repro.markets.vetting import Submission, VettingPipeline

BATCHES = {
    "clean": Submission(package="com.legit.app"),
    "adware": Submission(package="com.shady.app", threat_kind="adware"),
    "trojan": Submission(package="com.evil.app", threat_kind="trojan"),
    "fake": Submission(package="com.fakeapp", is_fake=True),
    "clone": Submission(package="com.clone.app", is_clone=True),
}

TRIALS = 500


def main() -> None:
    header = f"{'market':16s}" + "".join(f"{name:>9s}" for name in BATCHES)
    print(header)
    print("-" * len(header))
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        pipeline = VettingPipeline(profile, np.random.default_rng(99))
        cells = []
        for submission in BATCHES.values():
            accepted = sum(
                pipeline.review(submission).accepted for _ in range(TRIALS)
            )
            cells.append(f"{accepted / TRIALS:>8.0%} ")
        print(f"{profile.display_name:16s}" + "".join(cells))

    print("\nvetting latency (Table 1's 'Vetting Time'):")
    for market_id in ("google_play", "tencent", "huawei", "hiapk"):
        profile = get_profile(market_id)
        pipeline = VettingPipeline(profile, np.random.default_rng(1))
        delays = [pipeline.vetting_delay_days() for _ in range(200)]
        print(f"  {profile.display_name:15s} mean={np.mean(delays):4.1f} days")

    print("\nopenness gates:")
    lenovo = VettingPipeline(get_profile("lenovo"), np.random.default_rng(2))
    individual = Submission(package="com.hobbyist.app", developer_is_company=False)
    print(f"  Lenovo MM vs individual developer: "
          f"{lenovo.review(individual).reason}")
    appchina = VettingPipeline(get_profile("appchina"), np.random.default_rng(3))
    huge = Submission(package="com.huge.game", apk_size_mb=120)
    print(f"  App China vs 120 MB APK: {appchina.review(huge).reason}")


if __name__ == "__main__":
    main()
