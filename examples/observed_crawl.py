#!/usr/bin/env python
"""Scenario: watching a crawl campaign through the observability layer.

One metadata campaign runs with every recorder on — span tracing,
the metrics registry, and the stage profiler — then the exported
artifacts are re-rendered offline with ``run-report``:

* the span trace is the campaign's work tree: discovery, search
  rounds, APK batches, and every HTTP request with its retries and
  back-off, on both the wall clock and the simulated campaign clock;
* the metrics registry is the source of truth for the operator table —
  the telemetry printed live is a *view* over the same series that are
  exported, so the two can never disagree;
* the stage profiler times each pipeline stage (wall + peak memory)
  and prints the critical path.

    python examples/observed_crawl.py
"""

import tempfile
from pathlib import Path

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.obs import Observability, counts_from_spans
from repro.obs.report import render_run_report
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock


def crawl(world, obs):
    """One metadata campaign, reporting through ``obs``."""
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(s, clock) for m, s in stores.items()}
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    coordinator = CrawlCoordinator(
        servers, clock, gp_seeds=seeds, download_apks=False,
        workers=4, obs=obs,
    )
    with obs.stage("crawl"):
        return coordinator.crawl("august-2017", duration_days=15.0)


def main() -> None:
    obs = Observability.from_flags(trace=True, metrics=True, profile=True)

    print("synthesizing the ecosystem...")
    with obs.stage("ecosystem"):
        world = EcosystemGenerator(seed=7, scale=0.0004).generate()

    snapshot = crawl(world, obs)
    print(f"crawled {len(snapshot):,} records, "
          f"digest {snapshot.content_digest():016x}\n")

    # The live operator table, straight off the registry-backed view.
    print(snapshot.stats.telemetry.stats_report())

    # The span tree, summarized per span name.
    print("\nbusiest spans (count, total wall):")
    summary = counts_from_spans(obs.tracer.records())
    for name in sorted(summary, key=lambda n: -summary[n][1])[:5]:
        count, total, _ = summary[name]
        print(f"  {name:<22}{count:>8}  {total:.3f}s")

    # The stage profile with the pipeline's critical path.
    print()
    print(obs.profile_report(snapshot.stats.telemetry))

    # Export, then prove the offline report re-renders the same table.
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "trace.jsonl"
        metrics = Path(tmp) / "metrics.jsonl"
        obs.export_trace(trace)
        obs.export_metrics(metrics)
        report = render_run_report(trace, metrics)
        assert snapshot.stats.telemetry.stats_report() in report
        print("\nrun-report re-rendered the identical telemetry table "
              "from the exported artifacts")


if __name__ == "__main__":
    main()
