#!/usr/bin/env python
"""Scenario: a 50x corpus through the full suite, under a peak-RSS gate.

``examples/scaled_world.py`` generates a 10x world; this one runs a
**50x study** (scale 0.02 — fifty times the other examples' 0.0004) end
to end on the out-of-core sqlite backend: sharded generation, spill to
segment tables, the APK-downloading crawl (records land in the corpus
store, parsed APKs in the blob vault behind ``LazyApk`` proxies), the
recheck campaign, and **all 24 experiment renders**.

The gate reads ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` — the
kernel's true peak resident set, measured at zero overhead — and
hard-fails if it crosses ``PEAK_CEILING_MIB`` (this is the CI-enforced
peak-RSS ceiling the ``corpus`` job runs).  tracemalloc is deliberately
*not* used here: at 50x it slows the run several-fold (the same reason
``scaled_world.py`` profiles wall-only), and the ceiling is about what
the process actually costs the machine.  The ceiling is sized from
calibration so the sqlite backend clears it with headroom while the
in-memory backend at the same scale blows through it; the spilled
corpus' peak is set by the *generation transient* (the world
materializes before it spills), not by crawl or analysis, which stream.

Results (per-stage wall, the peak, the gate verdict) are written to
``BENCH_corpus.json`` under the ``"smoke"`` key, next to the cursor
numbers from ``benchmarks/test_bench_corpus.py``.

    python examples/out_of_core_corpus.py
    REPRO_CORPUS_COMPARE=1 python examples/out_of_core_corpus.py   # + memory run

The in-memory comparison run is skipped by default — ``ru_maxrss`` is a
process-lifetime high-water mark, so a meaningful memory-backend
measurement needs its own process anyway, and it roughly doubles an
already CI-sized job.  Its outcome is pinned by calibration (see
``MEMORY_PEAK_CALIBRATED_MIB``); set ``REPRO_CORPUS_COMPARE=1`` to
re-measure it in a subprocess, which also asserts it exceeds the
ceiling.
"""

import os
import resource
import subprocess
import sys
import time

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.ecosystem.sharding import resolve_gen_workers
from repro.experiments.runner import run_all
from repro.obs import Observability
from repro.obs.profiler import StageProfiler
from repro.obs.results import BenchResults

SEED = 7
#: 50x the other examples' 0.0004.  ``REPRO_CORPUS_SCALE`` is a dev
#: knob for exercising the mechanics quickly; the gate verdict is only
#: meaningful at the default scale the ceiling was calibrated for.
SCALE = float(os.environ.get("REPRO_CORPUS_SCALE", "0.02"))

#: The CI-enforced ceiling on peak RSS (MiB) for the full 50x run on
#: the sqlite backend.  Calibrated 2026-08: sqlite peaks at ~1570 MiB
#: (the generation transient — the world materializes before it
#: spills); the in-memory backend at the same scale peaks at ~8300 MiB
#: holding every record and parsed APK live.  The ceiling sits between
#: the two with headroom on both sides (sqlite clears it by ~24%, the
#: memory backend overshoots it 4x), so allocator or interpreter drift
#: does not flap the gate.
PEAK_CEILING_MIB = 2048

#: What the in-memory backend measured at calibration time, for the
#: skip message and the JSON record.
MEMORY_PEAK_CALIBRATED_MIB = 8315

def peak_rss_mib() -> float:
    """Kernel-reported peak resident set of this process, in MiB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def _workers() -> int:
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


def _run(backend: str):
    """One full study + experiment suite, profiled wall-only."""
    obs = Observability(profiler=StageProfiler(trace_memory=False))
    workers = _workers()
    config = StudyConfig(
        seed=SEED,
        scale=SCALE,
        download_apks=True,
        store_backend=backend,
        crawl_workers=workers,
        analysis_workers=workers,
        gen_workers=resolve_gen_workers(0),
    )
    start = time.perf_counter()
    result = Study(config, obs=obs).run()
    reports = run_all(result)
    wall = time.perf_counter() - start
    return result, reports, obs, wall


def _memory_backend_peak() -> float:
    """Measure the in-memory backend's peak RSS in a fresh process.

    ``ru_maxrss`` never decreases within a process, so the comparison
    leg must not share this one — it would inherit the sqlite run's
    high-water mark.  Re-invokes this script in child mode.
    """
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__)],
        check=True,
        capture_output=True,
        text=True,
        env={**os.environ, "_REPRO_CORPUS_CHILD": "memory"},
    )
    for line in reversed(out.stdout.splitlines()):
        if line.startswith("CHILD_PEAK_MIB="):
            return float(line.split("=", 1)[1])
    raise RuntimeError(f"child run printed no peak:\n{out.stdout[-2000:]}")


def main() -> int:
    if os.environ.get("_REPRO_CORPUS_CHILD") == "memory":
        _run("memory")
        print(f"CHILD_PEAK_MIB={peak_rss_mib()}")
        return 0

    print(f"running the 50x study (scale {SCALE}, sqlite backend, "
          f"{_workers()} workers) under the peak-RSS gate...")
    result, reports, obs, wall = _run("sqlite")
    peak_mib = peak_rss_mib()

    n_records = len(result.snapshot)
    n_apps = len(result.world.apps)
    print(f"\n{n_apps:,} apps -> {n_records:,} crawl records -> "
          f"{len(reports)} experiment reports in {wall:.0f}s")
    assert result.world.spilled, "50x world should spill (threshold 5000)"
    assert result.snapshot.spilled, "50x snapshot should spill"
    assert len(reports) == 24, f"expected the full suite, got {len(reports)}"
    print(obs.profile_report())

    ok = peak_mib <= PEAK_CEILING_MIB
    smoke = {
        "scale": SCALE,
        "seed": SEED,
        "backend": "sqlite",
        "apps": n_apps,
        "records": n_records,
        "reports": len(reports),
        "wall_s": round(wall, 1),
        "peak_rss_mib": round(peak_mib, 1),
        "ceiling_mib": PEAK_CEILING_MIB,
        "within_ceiling": ok,
        "memory_backend_peak_mib": None,
        "memory_backend_calibrated_mib": MEMORY_PEAK_CALIBRATED_MIB,
        "stages": obs.profiler.to_dicts(),
    }

    if os.environ.get("REPRO_CORPUS_COMPARE"):
        print("\nre-running on the in-memory backend (fresh process) "
              "for comparison...")
        mem_peak = _memory_backend_peak()
        smoke["memory_backend_peak_mib"] = round(mem_peak, 1)
        print(f"memory backend: peak RSS {mem_peak:.0f}MiB")
        # The separation claim is calibrated at the default 50x scale;
        # under the dev knob the comparison is informational only.
        if SCALE >= 0.02:
            assert mem_peak > PEAK_CEILING_MIB, (
                f"in-memory backend stayed under the ceiling "
                f"({mem_peak:.0f} <= {PEAK_CEILING_MIB}MiB) — "
                f"the gate no longer separates the backends; recalibrate"
            )
    else:
        print(f"\nmemory-backend comparison skipped (REPRO_CORPUS_COMPARE=1 "
              f"to run): it doubles the job's wall time, and calibration "
              f"pinned its peak at ~{MEMORY_PEAK_CALIBRATED_MIB}MiB — "
              f"over the {PEAK_CEILING_MIB}MiB ceiling.")

    BenchResults("corpus", seed=SEED, scale=SCALE).record("smoke", **smoke)
    verdict = "within" if ok else "EXCEEDS"
    print(f"\npeak RSS {peak_mib:.0f}MiB {verdict} the "
          f"{PEAK_CEILING_MIB}MiB ceiling")
    if not ok:
        print("peak-RSS gate FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
