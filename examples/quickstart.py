#!/usr/bin/env python
"""Quickstart: run a small end-to-end study and print headline results.

The pipeline mirrors the paper: synthesize the app ecosystem, crawl
Google Play and the 16 Chinese markets (with the cross-market parallel
search), scan every APK, and compare markets.

    python examples/quickstart.py [scale]
"""

import sys

from repro import Study, StudyConfig
from repro.analysis.malware import av_rank_rates
from repro.experiments import run_experiment
from repro.markets.profiles import CHINESE_MARKET_IDS, GOOGLE_PLAY, get_profile


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.0005
    config = StudyConfig(seed=42, scale=scale)
    print(f"running study: seed={config.seed} scale={config.scale}")

    result = Study(config).run()
    snapshot = result.snapshot
    print(f"\ncrawled {len(snapshot):,} listings, "
          f"{len(snapshot.packages()):,} unique packages, "
          f"{len(result.units):,} app units")
    print(f"Google Play APK coverage: "
          f"{snapshot.apk_coverage(GOOGLE_PLAY):.1%} "
          f"(rate-limited, backfilled from the offline archive)")

    # The paper's headline: malware prevalence, Google Play vs China.
    rates = av_rank_rates(snapshot, result.units, result.vt_scan)
    gp = rates[GOOGLE_PLAY][10]
    cn = sum(rates[m][10] for m in CHINESE_MARKET_IDS) / len(CHINESE_MARKET_IDS)
    print(f"\nmalware (AV-rank >= 10): Google Play {gp:.1%} "
          f"vs Chinese markets {cn:.1%} on average")
    worst = max(CHINESE_MARKET_IDS, key=lambda m: rates[m][10])
    print(f"worst market: {get_profile(worst).display_name} "
          f"({rates[worst][10]:.1%})")

    print()
    print(run_experiment("table4", result).render())
    print()
    print(run_experiment("table3", result).render())


if __name__ == "__main__":
    main()
