#!/usr/bin/env python
"""Scenario: crash-safe crawling under real-world failure.

Two disasters from Section 3 of the paper, survived end to end:

* the crawler process dies mid-campaign — the checkpoint journal
  resumes it and the finished snapshot is bit-identical to an
  uninterrupted run;
* a market blacks out for the whole campaign — its circuit breaker
  trips, the market is quarantined, and the study completes with the
  market marked degraded instead of hanging forever.

    python examples/resilient_crawl.py
"""

import tempfile
from pathlib import Path

from repro.crawler.crawler import CrawlCoordinator
from repro.crawler.journal import CrawlJournal
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.net.breaker import MarketQuarantinedError
from repro.net.faults import FaultPlan
from repro.util.rng import stable_hash32
from repro.util.simtime import FIRST_CRAWL_DAY, SimClock


def crawl(world, checkpoint=None, resume=False, market_faults=None,
          fail_fast=False):
    """One metadata campaign against freshly built market servers."""
    stores = build_stores(world)
    clock = SimClock()
    market_faults = market_faults or {}
    servers = {
        m: MarketServer(s, clock, faults=market_faults.get(m))
        for m, s in stores.items()
    }
    seeds = [
        listing.package
        for listing in stores["google_play"].iter_live(clock.now)
        if stable_hash32("privacygrade", listing.package) % 100 < 74
    ]
    journal = CrawlJournal(checkpoint, resume=resume) if checkpoint else None
    coordinator = CrawlCoordinator(
        servers, clock, gp_seeds=seeds, download_apks=False,
        workers=4, journal=journal, fail_fast=fail_fast,
    )
    try:
        return coordinator.crawl("august-2017", duration_days=15.0)
    finally:
        if journal is not None:
            journal.close()


def simulate_crash(checkpoint: Path) -> None:
    """Chop every lane's write-ahead log roughly in half — this is what
    the disk looks like after a kill -9 partway through the campaign."""
    for lane in sorted((checkpoint / "august-2017").glob("*.jsonl")):
        lines = lane.read_text(encoding="utf-8").splitlines(keepends=True)
        lane.write_text("".join(lines[: max(1, len(lines) // 2)]),
                        encoding="utf-8")


def main() -> None:
    print("synthesizing the ecosystem...")
    world = EcosystemGenerator(seed=7, scale=0.0004).generate()

    # -- disaster 1: the crawler dies mid-campaign -----------------------
    reference = crawl(world)
    print(f"\nuninterrupted run: {len(reference):,} records, "
          f"digest {reference.content_digest():016x}")

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "checkpoint"
        crawl(world, checkpoint=checkpoint)
        simulate_crash(checkpoint)
        kept = sum(
            len(p.read_text(encoding="utf-8").splitlines())
            for p in (checkpoint / "august-2017").glob("*.jsonl")
        )
        print(f"simulated crash: journal cut to {kept} completed entries")

        resumed = crawl(world, checkpoint=checkpoint, resume=True)
        print(f"resumed run:       {len(resumed):,} records, "
              f"digest {resumed.content_digest():016x}")
        assert resumed.content_digest() == reference.content_digest()
        print("snapshots are bit-identical: journaled work was replayed, "
              "only the lost tail was re-crawled")

    # -- disaster 2: a market goes dark for the whole campaign -----------
    blackout = {"baidu": FaultPlan.blackout(FIRST_CRAWL_DAY, 20.0)}
    print("\nnow Baidu serves nothing but timeouts for the entire campaign...")
    degraded = crawl(world, market_faults=blackout)
    lane = degraded.stats.telemetry.market("baidu")
    print(f"breaker tripped {lane.breaker_trips}x "
          f"({lane.breaker_fast_fails} fast-fails, {lane.failures} failures) "
          f"-> quarantined")
    print(f"campaign still completed: {len(degraded):,} records, "
          f"degraded markets: {degraded.degraded_markets()}, "
          f"dead letters: {len(degraded.dead_letters)}")

    # Operators who prefer an abort get one with fail_fast=True
    # (the CLI flag is --fail-fast; graceful degradation is the default).
    try:
        crawl(world, market_faults=blackout, fail_fast=True)
    except MarketQuarantinedError as exc:
        print(f"fail-fast mode instead aborts the study: {exc}")


if __name__ == "__main__":
    main()
