#!/usr/bin/env python
"""Scenario: generating a 10x world with sharded generation.

The other examples synthesize their worlds at scale 0.0004 (~2K apps).
This one generates at ten times that — and uses ``gen_workers`` to
shard the expensive phases (per-app body building, per-listing
finalize) across a process pool while the plan/submit/injection phases
stay serial.  The stage profiler shows exactly where the time goes,
and the world's content digest is the determinism oracle: the same
seed at any worker count prints the same digest (the sharding
contract, enforced by tests/test_ecosystem_sharding.py).

    python examples/scaled_world.py
"""

import time

from repro.ecosystem.generator import EcosystemGenerator
from repro.ecosystem.sharding import resolve_gen_workers
from repro.obs import Observability
from repro.obs.profiler import StageProfiler

SEED = 7
SCALE = 0.004  # 10x the other examples' 0.0004

# Memory tracing (tracemalloc) slows generation several-fold; at this
# scale we profile wall time only.
SHARDED = [
    "ecosystem.build",
    "ecosystem.finalize",
]


def main() -> None:
    workers = resolve_gen_workers(0)  # 0 = auto-size to the machine
    obs = Observability(profiler=StageProfiler(trace_memory=False))

    print(f"generating a 10x world (scale {SCALE}) with "
          f"--gen-workers {workers}...")
    start = time.perf_counter()
    with obs.stage("ecosystem"):
        world = EcosystemGenerator(
            SEED, SCALE, gen_workers=workers, obs=obs
        ).generate()
    wall = time.perf_counter() - start

    placements = sum(len(app.placements) for app in world.apps)
    print(f"generated {len(world.apps):,} apps / {placements:,} placements "
          f"across {len(world.developers):,} developers in {wall:.2f}s")
    print(f"world digest {world.content_digest()} "
          f"(identical at any --gen-workers width)\n")

    print(obs.profile_report())

    sharded = sum(
        r.wall_seconds for r in obs.profiler.records if r.name in SHARDED
    )
    serial = sum(
        r.wall_seconds
        for r in obs.profiler.records
        if r.depth > 0 and r.name not in SHARDED
    )
    total = sharded + serial
    if total > 0:
        print(f"\nsharded phases (build + finalize): {sharded:.2f}s "
              f"({100 * sharded / total:.0f}% of generation) — "
              f"these scale with --gen-workers; the rest stays serial")


if __name__ == "__main__":
    main()
