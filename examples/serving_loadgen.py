#!/usr/bin/env python
"""Scenario: crawling a fleet of *real* (socket-served) markets while
end users hammer the same tier.

The paper's 17 markets were live web services; this example promotes
the simulated fleet to the same shape and proves the two headline
properties of the serving tier:

* **The transport/engine digest oracle** — the same campaign run
  in-process on threads, over TCP sockets on threads, and over sockets
  on the asyncio engine with 8 requests pipelined per lane lands on
  one bit-identical snapshot digest.
* **Pipelining pays where latency lives** — with per-request service
  latency injected at the tier, the asyncio client's pipelined lanes
  sustain a multiple of the thread engine's one-request-in-flight
  throughput.

It finishes with the end-user load generator (the traffic the crawler
shared those markets with) and writes its latency quantiles to
``BENCH_serving.json``.

    python examples/serving_loadgen.py
"""

import time

from repro.crawler.crawler import CrawlCoordinator
from repro.ecosystem.generator import EcosystemGenerator
from repro.markets.server import MarketServer
from repro.markets.store import build_stores
from repro.obs.results import BenchResults
from repro.serving import LoadGenerator, ServingTier
from repro.util.simtime import SimClock

SEED = 7
SCALE = 0.0005


def crawl(world, transport="inprocess", engine="thread", pipeline=1,
          latency_s=0.0):
    """One metadata campaign; optionally through a live serving tier."""
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(s, clock) for m, s in stores.items()}
    tier = None
    transports = None
    try:
        if transport == "socket":
            tier = ServingTier(servers, latency_s=latency_s).start()
            transports = (tier.async_transports() if engine == "asyncio"
                          else tier.transports())
        coordinator = CrawlCoordinator(
            servers, clock, download_apks=False, workers=len(servers),
            transports=transports, engine=engine, pipeline=pipeline,
        )
        try:
            start = time.perf_counter()
            snapshot = coordinator.crawl("serving-demo", duration_days=15.0)
            wall = time.perf_counter() - start
        finally:
            coordinator.close()
    finally:
        if tier is not None:
            tier.stop()
    requests = sum(s.requests_served for s in servers.values())
    return snapshot, requests, wall


def main() -> None:
    print(f"generating world (seed={SEED}, scale={SCALE}) ...")
    world = EcosystemGenerator(seed=SEED, scale=SCALE).generate()

    print("\n== the transport/engine digest oracle ==")
    configs = [
        ("in-process, thread engine", dict()),
        ("sockets,    thread engine", dict(transport="socket")),
        ("sockets,    asyncio engine, pipeline 8",
         dict(transport="socket", engine="asyncio", pipeline=8)),
    ]
    digests = []
    for name, kwargs in configs:
        snapshot, requests, wall = crawl(world, **kwargs)
        digests.append(snapshot.content_digest())
        print(f"  {name}: {requests} requests, {wall:.1f}s, "
              f"digest {snapshot.content_digest()}")
    assert len(set(digests)) == 1, "transport/engine changed the dataset!"
    print("  -> one bit-identical snapshot, however the bytes traveled")

    print("\n== pipelining vs per-request latency (2ms at the tier) ==")
    _, thread_req, thread_wall = crawl(
        world, transport="socket", latency_s=0.002
    )
    _, async_req, async_wall = crawl(
        world, transport="socket", engine="asyncio", pipeline=8,
        latency_s=0.002,
    )
    thread_rps = thread_req / thread_wall
    async_rps = async_req / async_wall
    print(f"  thread engine : {thread_rps:7.0f} req/s")
    print(f"  asyncio deep-8: {async_rps:7.0f} req/s "
          f"({async_rps / thread_rps:.1f}x)")

    print("\n== end-user load against the same tier ==")
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(s, clock) for m, s in stores.items()}
    with ServingTier(servers, latency_s=0.002) as tier:
        report = LoadGenerator(
            tier, servers, users=8, requests_per_user=25, seed=SEED,
        ).run()
    print(f"  {report.requests} requests at {report.rps:.0f} req/s — "
          f"p50 {report.p50_ms:.2f}ms, p99 {report.p99_ms:.2f}ms, "
          f"{report.shed} shed, {report.errors} errors")
    assert report.errors == 0
    path = BenchResults("serving", seed=SEED, scale=SCALE).record(
        "loadgen", **report.to_dict()
    )
    print(f"  wrote {path}")


if __name__ == "__main__":
    main()
