"""repro — reproduction of "Beyond Google Play: A Large-Scale Comparative
Study of Chinese Android App Markets" (Wang et al., IMC 2018).

Quickstart::

    from repro import Study, StudyConfig
    result = Study(StudyConfig(seed=42, scale=0.001)).run()
    from repro.experiments import run_experiment
    print(run_experiment("table4", result).render())

Subpackages
-----------
``repro.ecosystem``
    Synthetic app-ecosystem generator (developers, apps, libraries,
    misbehavior), calibrated to the paper's published statistics.
``repro.markets``
    The 17 market profiles, stores, vetting pipelines, and HTTP-like
    servers.
``repro.crawler``
    Discovery strategies, the parallel cross-market search, APK
    collection with rate-limit handling and archive backfill.
``repro.analysis``
    The measurement toolkit: library/clone/fake detection, permission
    gap analysis, the simulated VirusTotal, and post-analysis.
``repro.experiments``
    One module per paper table and figure, regenerating its data.
"""

from repro.core.config import StudyConfig
from repro.core.study import Study, StudyResult
from repro.core.reports import FigureReport, TableReport

__version__ = "1.0.0"

__all__ = [
    "Study",
    "StudyConfig",
    "StudyResult",
    "TableReport",
    "FigureReport",
    "__version__",
]
