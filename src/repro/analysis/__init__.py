"""Analysis toolkit.

Every analysis consumes crawl snapshots (:mod:`repro.crawler.snapshot`)
and parsed APKs only — never ecosystem ground truth.  One module per
measurement of the paper:

========================  =====================================
Module                    Paper artifact
========================  =====================================
``taxonomy``              Figure 1 (category consolidation)
``downloads``             Figure 2, Table 1 aggregate downloads
``apilevel``              Figure 3
``freshness``             Figure 4
``libraries``             Figure 5, Table 2 (LibRadar-style)
``ratings``               Figure 6
``publishing``            Figures 7-9, Table 1 developer stats
``identity``              Section 5.3 (MD5 vs package identity)
``fake``                  Table 3 fake apps (Section 6.1)
``clones``                Table 3 clones, Figure 10 (WuKong-style)
``permissions``           Figure 11 (PScout-style over-privilege)
``virustotal``            simulated VirusTotal service
``malware``               Table 4, Table 5, Figure 12 (AVClass)
``postanalysis``          Table 6 (Section 7)
``radar``                 Figure 13
========================  =====================================
"""

from repro.analysis.corpus import AppUnit, build_units

__all__ = ["AppUnit", "build_units"]
