"""Minimum API level analysis (Section 4.3, Figure 3).

The minimum SDK each app declares comes from the parsed APK's manifest;
records without an APK are excluded (as in the paper, which needed the
binary to read the manifest).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.crawler.snapshot import Snapshot
from repro.markets.profiles import GOOGLE_PLAY
from repro.util.stats import BoxStats

__all__ = [
    "API_LEVEL_BUCKETS",
    "min_api_distribution",
    "min_api_matrix",
    "low_api_share",
    "figure3_series",
]

#: Figure 3's x-axis buckets: <7, 7..16 individually, >16.
API_LEVEL_BUCKETS: Sequence[str] = (
    "<7", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", ">16",
)


def _bucket(min_sdk: int) -> int:
    if min_sdk < 7:
        return 0
    if min_sdk > 16:
        return len(API_LEVEL_BUCKETS) - 1
    return min_sdk - 6


def min_api_distribution(snapshot: Snapshot, market_id: str) -> List[float]:
    """Share of a market's (APK-backed) apps per Figure 3 bucket."""
    counts = [0] * len(API_LEVEL_BUCKETS)
    total = 0
    for record in snapshot.in_market(market_id):
        if record.apk is None:
            continue
        counts[_bucket(record.apk.manifest.min_sdk)] += 1
        total += 1
    if total == 0:
        return [0.0] * len(API_LEVEL_BUCKETS)
    return [c / total for c in counts]


def min_api_matrix(snapshot: Snapshot) -> Dict[str, List[float]]:
    return {m: min_api_distribution(snapshot, m) for m in snapshot.markets()}


def low_api_share(snapshot: Snapshot, market_id: str, below: int = 9) -> float:
    """Share of apps declaring min SDK below ``below``.

    Section 4.3: ~63% of apps in Chinese markets support API levels
    lower than 9, versus ~22% in Google Play.
    """
    total = 0
    low = 0
    for record in snapshot.in_market(market_id):
        if record.apk is None:
            continue
        total += 1
        if record.apk.manifest.min_sdk < below:
            low += 1
    return low / total if total else 0.0


def figure3_series(snapshot: Snapshot) -> Dict[str, object]:
    """Figure 3's rendering data: Google Play values plus per-bucket
    box statistics across the 16 Chinese markets."""
    matrix = min_api_matrix(snapshot)
    gp = matrix.get(GOOGLE_PLAY, [0.0] * len(API_LEVEL_BUCKETS))
    chinese = [v for m, v in matrix.items() if m != GOOGLE_PLAY]
    boxes = []
    for i in range(len(API_LEVEL_BUCKETS)):
        values = [row[i] for row in chinese] or [0.0]
        boxes.append(BoxStats(values).as_dict())
    return {"buckets": list(API_LEVEL_BUCKETS), "google_play": gp, "chinese_box": boxes}
