"""Clone detection (Section 6.2, Table 3, Figure 10).

Two detectors, as in the paper:

* **Signature-based**: apps sharing a package name but signed with
  different developer keys.  Package names are supposed to be globally
  unique, so a multi-signature package cluster means someone repackaged
  someone else's app.  The member with the most downloads is taken as
  the original (the paper's heuristic).
* **Code-based** (WuKong): apps with different package names whose
  feature vectors — Android API calls, Intents, Content Providers, with
  third-party library code removed first — sit within a normalized
  Manhattan distance of 0.05 (95% similarity), refined by a second
  phase requiring >=85% shared code segments.

Candidate pairing for the code-based phase uses an inverted index over
code-segment hashes (library segments removed), which keeps the search
near-linear — the same engineering need WuKong's two-phase design
addresses at 6M-app scale.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.corpus import AppUnit
from repro.analysis.libraries import LibraryDetection
from repro.crawler.snapshot import Snapshot

__all__ = [
    "feature_distance",
    "block_overlap",
    "SignatureCloneAnalysis",
    "detect_signature_clones",
    "ClonePair",
    "CodeCloneAnalysis",
    "CodeCloneDetector",
]

UnitKey = Tuple[str, Optional[str]]


def feature_distance(a: Dict[int, int], b: Dict[int, int]) -> float:
    """The paper's normalized Manhattan distance:
    sum(|A_i - B_i|) / sum(A_i + B_i)."""
    num = 0
    den = 0
    for fid, count in a.items():
        other = b.get(fid, 0)
        num += abs(count - other)
        den += count + other
    for fid, count in b.items():
        if fid not in a:
            num += count
            den += count
    if den == 0:
        return 0.0
    return num / den


def block_overlap(a: Sequence[int], b: Sequence[int]) -> float:
    """Shared code-segment ratio (against the larger segment set)."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / max(len(sa), len(sb))


# ---------------------------------------------------------------------------
# signature-based clones
# ---------------------------------------------------------------------------


@dataclass
class SignatureCloneAnalysis:
    """Multi-signature package clusters."""

    clusters: Dict[str, List[AppUnit]]  # package -> units (>=2 signers)
    originals: Dict[str, UnitKey]  # package -> original unit key
    clone_units: Set[UnitKey]

    def market_rates(self, snapshot: Snapshot) -> Dict[str, float]:
        """Table 3's SB column: share of each market's listings that are
        signature-based clones (non-original cluster members)."""
        rates: Dict[str, float] = {}
        clone_index: Dict[str, Set[Optional[str]]] = {}
        for package, signer in self.clone_units:
            clone_index.setdefault(package, set()).add(signer)
        for market in snapshot.markets():
            records = snapshot.in_market(market)
            if not records:
                rates[market] = 0.0
                continue
            clones = 0
            for record in records:
                signers = clone_index.get(record.package)
                if signers and record.signer in signers:
                    clones += 1
            rates[market] = clones / len(records)
        return rates

    def developers_per_package(self) -> List[int]:
        """Figure 8(c)'s data: signer count per multi-signature package."""
        return sorted(
            len({u.signer for u in units}) for units in self.clusters.values()
        )


def detect_signature_clones(units: Sequence[AppUnit]) -> SignatureCloneAnalysis:
    """Cluster units by package; flag multi-signer clusters."""
    by_package: Dict[str, List[AppUnit]] = {}
    for unit in units:
        if unit.signer is None:
            continue
        by_package.setdefault(unit.package, []).append(unit)

    clusters: Dict[str, List[AppUnit]] = {}
    originals: Dict[str, UnitKey] = {}
    clone_units: Set[UnitKey] = set()
    for package, members in by_package.items():
        signers = {u.signer for u in members}
        if len(signers) < 2:
            continue
        clusters[package] = members
        original = max(members, key=lambda u: (u.max_downloads or -1))
        originals[package] = (original.package, original.signer)
        for unit in members:
            if unit.signer != original.signer:
                clone_units.add((unit.package, unit.signer))
    return SignatureCloneAnalysis(
        clusters=clusters, originals=originals, clone_units=clone_units
    )


# ---------------------------------------------------------------------------
# code-based clones (WuKong)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClonePair:
    """One detected (original, clone) pair."""

    original: UnitKey
    clone: UnitKey
    distance: float
    overlap: float


@dataclass
class CodeCloneAnalysis:
    pairs: List[ClonePair]
    clone_units: Set[UnitKey]
    original_of: Dict[UnitKey, UnitKey]  # clone -> its best original

    def market_rates(self, snapshot: Snapshot) -> Dict[str, float]:
        """Table 3's CB column."""
        rates: Dict[str, float] = {}
        clone_index: Dict[str, Set[Optional[str]]] = {}
        for package, signer in self.clone_units:
            clone_index.setdefault(package, set()).add(signer)
        for market in snapshot.markets():
            records = snapshot.in_market(market)
            if not records:
                rates[market] = 0.0
                continue
            clones = sum(
                1 for record in records
                if record.signer in clone_index.get(record.package, ())
            )
            rates[market] = clones / len(records)
        return rates

    def heatmap(
        self, units_by_key: Dict[UnitKey, AppUnit], markets: Sequence[str]
    ) -> Dict[Tuple[str, str], int]:
        """Figure 10: (source market, destination market) -> clone count.

        The source is the market where the original has the most
        downloads; each market listing of the clone counts once.
        """
        counts: Dict[Tuple[str, str], int] = {
            (src, dst): 0 for src in markets for dst in markets
        }
        from repro.analysis.corpus import normalized_downloads

        for clone_key, original_key in self.original_of.items():
            original = units_by_key.get(original_key)
            clone = units_by_key.get(clone_key)
            if original is None or clone is None:
                continue
            best_market = None
            best_downloads = -1
            for record in original.records:
                downloads = normalized_downloads(record) or 0
                if downloads > best_downloads:
                    best_downloads = downloads
                    best_market = record.market_id
            if best_market is None:
                continue
            for market in clone.markets:
                if (best_market, market) in counts:
                    counts[(best_market, market)] += 1
        return counts


class CodeCloneDetector:
    """WuKong-style two-phase detector with inverted-index candidates."""

    def __init__(
        self,
        distance_threshold: float = 0.05,
        overlap_threshold: float = 0.85,
        min_shared_blocks: int = 8,
        max_block_bucket: int = 200,
    ):
        self.distance_threshold = distance_threshold
        self.overlap_threshold = overlap_threshold
        self.min_shared_blocks = min_shared_blocks
        self.max_block_bucket = max_block_bucket

    def detect(
        self,
        units: Sequence[AppUnit],
        library_detection: Optional[LibraryDetection] = None,
    ) -> CodeCloneAnalysis:
        lib_digests = (
            library_detection.library_digests if library_detection else set()
        )
        keys: List[UnitKey] = []
        residual_features: List[Dict[int, int]] = []
        residual_blocks: List[Tuple[int, ...]] = []
        downloads: List[int] = []
        for unit in units:
            if unit.apk is None or unit.signer is None:
                continue
            features: Dict[int, int] = {}
            blocks: List[int] = []
            for pkg in unit.apk.packages:
                if pkg.feature_digest in lib_digests:
                    continue
                for fid, count in pkg.features.items():
                    features[fid] = features.get(fid, 0) + count
                blocks.extend(pkg.blocks)
            keys.append((unit.package, unit.signer))
            residual_features.append(features)
            residual_blocks.append(tuple(blocks))
            downloads.append(unit.max_downloads or 0)

        candidates = self._candidate_pairs(residual_blocks)

        pairs: List[ClonePair] = []
        best_original: Dict[UnitKey, Tuple[float, UnitKey]] = {}
        clone_units: Set[UnitKey] = set()
        for i, j in candidates:
            key_i, key_j = keys[i], keys[j]
            if key_i[0] == key_j[0]:
                continue  # same package: signature-based territory
            if key_i[1] == key_j[1]:
                continue  # same developer: legitimate reuse
            overlap = block_overlap(residual_blocks[i], residual_blocks[j])
            if overlap < self.overlap_threshold:
                continue
            distance = feature_distance(residual_features[i], residual_features[j])
            if distance > self.distance_threshold:
                continue
            if downloads[i] >= downloads[j]:
                original, clone = key_i, key_j
            else:
                original, clone = key_j, key_i
            pairs.append(
                ClonePair(original=original, clone=clone, distance=distance, overlap=overlap)
            )
            clone_units.add(clone)
            prior = best_original.get(clone)
            if prior is None or distance < prior[0]:
                best_original[clone] = (distance, original)

        return CodeCloneAnalysis(
            pairs=pairs,
            clone_units=clone_units,
            original_of={clone: orig for clone, (_, orig) in best_original.items()},
        )

    def _candidate_pairs(
        self, residual_blocks: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, int]]:
        """Pairs sharing enough code segments to be worth comparing."""
        bucket: Dict[int, List[int]] = {}
        for idx, blocks in enumerate(residual_blocks):
            for block in set(blocks):
                bucket.setdefault(block, []).append(idx)
        shared: Counter = Counter()
        for members in bucket.values():
            if len(members) < 2 or len(members) > self.max_block_bucket:
                continue
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    shared[(members[a], members[b])] += 1
        return [pair for pair, n in shared.items() if n >= self.min_shared_blocks]
