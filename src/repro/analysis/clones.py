"""Clone detection (Section 6.2, Table 3, Figure 10).

Two detectors, as in the paper:

* **Signature-based**: apps sharing a package name but signed with
  different developer keys.  Package names are supposed to be globally
  unique, so a multi-signature package cluster means someone repackaged
  someone else's app.  The member with the most downloads is taken as
  the original (the paper's heuristic).
* **Code-based** (WuKong): apps with different package names whose
  feature vectors — Android API calls, Intents, Content Providers, with
  third-party library code removed first — sit within a normalized
  Manhattan distance of 0.05 (95% similarity), refined by a second
  phase requiring >=85% shared code segments.

Candidate pairing for the code-based phase uses **prefix-filtered
blocking** over code-segment hashes (library segments removed): each
app indexes only a short, rarest-first prefix of its block set, sized
so that any pair meeting the overlap and shared-block thresholds
provably collides on at least one indexed block.  This keeps the search
near-linear — the same engineering need WuKong's two-phase design
addresses at 6M-app scale — and candidate scoring fans out across the
analysis engine's worker pool with a deterministic merge.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.corpus import AppUnit
from repro.analysis.engine import INLINE_ENGINE, AnalysisEngine
from repro.analysis.libraries import LibraryDetection
from repro.crawler.snapshot import Snapshot

__all__ = [
    "feature_distance",
    "block_overlap",
    "SignatureCloneAnalysis",
    "detect_signature_clones",
    "ClonePair",
    "CodeCloneAnalysis",
    "CodeCloneDetector",
]

UnitKey = Tuple[str, Optional[str]]


def feature_distance(a: Dict[int, int], b: Dict[int, int]) -> float:
    """The paper's normalized Manhattan distance:
    sum(|A_i - B_i|) / sum(A_i + B_i)."""
    num = 0
    den = 0
    for fid, count in a.items():
        other = b.get(fid, 0)
        num += abs(count - other)
        den += count + other
    for fid, count in b.items():
        if fid not in a:
            num += count
            den += count
    if den == 0:
        return 0.0
    return num / den


def block_overlap(a: Sequence[int], b: Sequence[int]) -> float:
    """Shared code-segment ratio (against the larger segment set)."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / max(len(sa), len(sb))


# ---------------------------------------------------------------------------
# signature-based clones
# ---------------------------------------------------------------------------


@dataclass
class SignatureCloneAnalysis:
    """Multi-signature package clusters."""

    clusters: Dict[str, List[AppUnit]]  # package -> units (>=2 signers)
    originals: Dict[str, UnitKey]  # package -> original unit key
    clone_units: Set[UnitKey]

    def market_rates(self, snapshot: Snapshot) -> Dict[str, float]:
        """Table 3's SB column: share of each market's listings that are
        signature-based clones (non-original cluster members)."""
        rates: Dict[str, float] = {}
        clone_index: Dict[str, Set[Optional[str]]] = {}
        for package, signer in self.clone_units:
            clone_index.setdefault(package, set()).add(signer)
        for market in snapshot.markets():
            records = snapshot.in_market(market)
            if not records:
                rates[market] = 0.0
                continue
            clones = 0
            for record in records:
                signers = clone_index.get(record.package)
                if signers and record.signer in signers:
                    clones += 1
            rates[market] = clones / len(records)
        return rates

    def developers_per_package(self) -> List[int]:
        """Figure 8(c)'s data: signer count per multi-signature package."""
        return sorted(
            len({u.signer for u in units}) for units in self.clusters.values()
        )


def detect_signature_clones(units: Sequence[AppUnit]) -> SignatureCloneAnalysis:
    """Cluster units by package; flag multi-signer clusters."""
    by_package: Dict[str, List[AppUnit]] = {}
    for unit in units:
        if unit.signer is None:
            continue
        by_package.setdefault(unit.package, []).append(unit)

    clusters: Dict[str, List[AppUnit]] = {}
    originals: Dict[str, UnitKey] = {}
    clone_units: Set[UnitKey] = set()
    for package, members in by_package.items():
        signers = {u.signer for u in members}
        if len(signers) < 2:
            continue
        clusters[package] = members
        original = max(members, key=lambda u: (u.max_downloads or -1))
        originals[package] = (original.package, original.signer)
        for unit in members:
            if unit.signer != original.signer:
                clone_units.add((unit.package, unit.signer))
    return SignatureCloneAnalysis(
        clusters=clusters, originals=originals, clone_units=clone_units
    )


# ---------------------------------------------------------------------------
# code-based clones (WuKong)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClonePair:
    """One detected (original, clone) pair."""

    original: UnitKey
    clone: UnitKey
    distance: float
    overlap: float


@dataclass
class CodeCloneAnalysis:
    pairs: List[ClonePair]
    clone_units: Set[UnitKey]
    original_of: Dict[UnitKey, UnitKey]  # clone -> its best original

    def market_rates(self, snapshot: Snapshot) -> Dict[str, float]:
        """Table 3's CB column."""
        rates: Dict[str, float] = {}
        clone_index: Dict[str, Set[Optional[str]]] = {}
        for package, signer in self.clone_units:
            clone_index.setdefault(package, set()).add(signer)
        for market in snapshot.markets():
            records = snapshot.in_market(market)
            if not records:
                rates[market] = 0.0
                continue
            clones = sum(
                1 for record in records
                if record.signer in clone_index.get(record.package, ())
            )
            rates[market] = clones / len(records)
        return rates

    def heatmap(
        self, units_by_key: Dict[UnitKey, AppUnit], markets: Sequence[str]
    ) -> Dict[Tuple[str, str], int]:
        """Figure 10: (source market, destination market) -> clone count.

        The source is the market where the original has the most
        downloads; each market listing of the clone counts once.
        """
        counts: Dict[Tuple[str, str], int] = {
            (src, dst): 0 for src in markets for dst in markets
        }
        from repro.analysis.corpus import normalized_downloads

        for clone_key, original_key in self.original_of.items():
            original = units_by_key.get(original_key)
            clone = units_by_key.get(clone_key)
            if original is None or clone is None:
                continue
            best_market = None
            best_downloads = -1
            for record in original.records:
                downloads = normalized_downloads(record) or 0
                if downloads > best_downloads:
                    best_downloads = downloads
                    best_market = record.market_id
            if best_market is None:
                continue
            for market in clone.markets:
                if (best_market, market) in counts:
                    counts[(best_market, market)] += 1
        return counts


class CodeCloneDetector:
    """WuKong-style two-phase detector with prefix-filtered candidates.

    ``candidate_strategy`` selects the candidate generator: ``"prefix"``
    (the default) uses prefix-filtered blocking; ``"exhaustive"`` keeps
    the original inverted-index pair enumeration as a reference
    implementation for benchmarks and superset checks.  The prefix
    strategy generates a provable superset of every pair the exhaustive
    strategy would ultimately report, so switching strategies can only
    add detections, never lose them.
    """

    def __init__(
        self,
        distance_threshold: float = 0.05,
        overlap_threshold: float = 0.85,
        min_shared_blocks: int = 8,
        max_block_bucket: int = 200,
        candidate_strategy: str = "prefix",
    ):
        if candidate_strategy not in ("prefix", "exhaustive"):
            raise ValueError(f"unknown candidate strategy {candidate_strategy!r}")
        self.distance_threshold = distance_threshold
        self.overlap_threshold = overlap_threshold
        self.min_shared_blocks = min_shared_blocks
        self.max_block_bucket = max_block_bucket
        self.candidate_strategy = candidate_strategy

    def detect(
        self,
        units: Sequence[AppUnit],
        library_detection: Optional[LibraryDetection] = None,
        engine: Optional[AnalysisEngine] = None,
    ) -> CodeCloneAnalysis:
        engine = engine or INLINE_ENGINE
        lib_digests = (
            library_detection.library_digests if library_detection else set()
        )
        eligible = [u for u in units if u.apk is not None and u.signer is not None]

        def extract(unit: AppUnit) -> Tuple[Dict[int, int], Tuple[int, ...]]:
            features: Dict[int, int] = {}
            blocks: List[int] = []
            for pkg in unit.apk.packages:
                if pkg.feature_digest in lib_digests:
                    continue
                for fid, count in pkg.features.items():
                    features[fid] = features.get(fid, 0) + count
                blocks.extend(pkg.blocks)
            return features, tuple(blocks)

        extracted = engine.map(eligible, extract, stage="analysis.clones.extract")
        keys: List[UnitKey] = [(u.package, u.signer) for u in eligible]
        residual_features = [features for features, _ in extracted]
        residual_blocks = [blocks for _, blocks in extracted]
        downloads = [u.max_downloads or 0 for u in eligible]

        candidates = self._candidate_pairs(residual_blocks)

        def score(pair: Tuple[int, int]) -> Optional[Tuple[int, int, float, float]]:
            i, j = pair
            key_i, key_j = keys[i], keys[j]
            if key_i[0] == key_j[0]:
                return None  # same package: signature-based territory
            if key_i[1] == key_j[1]:
                return None  # same developer: legitimate reuse
            overlap = block_overlap(residual_blocks[i], residual_blocks[j])
            if overlap < self.overlap_threshold:
                return None
            distance = feature_distance(residual_features[i], residual_features[j])
            if distance > self.distance_threshold:
                return None
            return i, j, distance, overlap

        # Candidates are scored in parallel (each score is a pure pair
        # comparison) and merged back in candidate order, so the result
        # is identical at any worker count.
        scored = engine.map(candidates, score, stage="analysis.clones.score")

        pairs: List[ClonePair] = []
        best_original: Dict[UnitKey, Tuple[float, UnitKey]] = {}
        clone_units: Set[UnitKey] = set()
        for hit in scored:
            if hit is None:
                continue
            i, j, distance, overlap = hit
            if downloads[i] >= downloads[j]:
                original, clone = keys[i], keys[j]
            else:
                original, clone = keys[j], keys[i]
            pairs.append(
                ClonePair(original=original, clone=clone, distance=distance, overlap=overlap)
            )
            clone_units.add(clone)
            prior = best_original.get(clone)
            if prior is None or distance < prior[0]:
                best_original[clone] = (distance, original)

        return CodeCloneAnalysis(
            pairs=pairs,
            clone_units=clone_units,
            original_of={clone: orig for clone, (_, orig) in best_original.items()},
        )

    def _candidate_pairs(
        self, residual_blocks: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, int]]:
        """Pairs worth scoring, in canonical sorted order."""
        if self.candidate_strategy == "exhaustive":
            return sorted(self._candidate_pairs_exhaustive(residual_blocks))
        return self._candidate_pairs_prefix(residual_blocks)

    def _candidate_pairs_prefix(
        self, residual_blocks: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, int]]:
        """Prefix-filtered blocking over distinct block hashes.

        Any reported pair (i, j) must satisfy ``|B_i & B_j| >= c`` with
        ``c = max(min_shared_blocks, ceil(t * max(|B_i|, |B_j|)))``
        (the exhaustive generator demands ``min_shared_blocks`` shared
        segments and scoring demands overlap ``>= t``).  Order every
        unit's distinct blocks by a global canonical key (rarest block
        first) and index only the first ``|B_i| - c_i + 1`` of them,
        where ``c_i = max(min_shared_blocks, ceil(t * |B_i|))``.

        Superset proof: let S = B_i & B_j with |S| >= max(c_i, c_j) and
        let s be S's smallest block under the global order.  At least
        |S| - 1 >= c_i - 1 blocks of B_i sort after s, so s sits within
        the first |B_i| - (c_i - 1) = prefix positions of B_i — and
        symmetrically for B_j.  Hence every qualifying pair collides on
        s in both prefixes and is generated; pairs below the thresholds
        may or may not be, which only costs scoring work, never a
        detection.
        """
        t = self.overlap_threshold
        distinct: List[List[int]] = [sorted(set(b)) for b in residual_blocks]
        rarity: Counter = Counter()
        for blocks in distinct:
            rarity.update(blocks)

        index: Dict[int, List[int]] = {}
        candidates: Set[Tuple[int, int]] = set()
        for idx, blocks in enumerate(distinct):
            size = len(blocks)
            # The 1e-9 slack keeps float round-up from over-shrinking
            # the prefix (which could silently drop true pairs).
            required = max(
                self.min_shared_blocks, int(math.ceil(t * size - 1e-9))
            )
            prefix_len = size - required + 1
            if prefix_len <= 0:
                continue  # cannot reach the shared-block floor at all
            blocks.sort(key=lambda b: (rarity[b], b))
            for block in blocks[:prefix_len]:
                posting = index.setdefault(block, [])
                for other in posting:
                    candidates.add((other, idx))
                posting.append(idx)
        return sorted(candidates)

    def _candidate_pairs_exhaustive(
        self, residual_blocks: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, int]]:
        """The original quadratic enumeration (reference/benchmarks)."""
        bucket: Dict[int, List[int]] = {}
        for idx, blocks in enumerate(residual_blocks):
            for block in set(blocks):
                bucket.setdefault(block, []).append(idx)
        shared: Counter = Counter()
        for members in bucket.values():
            if len(members) < 2 or len(members) > self.max_block_bucket:
                continue
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    shared[(members[a], members[b])] += 1
        return [pair for pair, n in shared.items() if n >= self.min_shared_blocks]
