"""Clone detection (Section 6.2, Table 3, Figure 10).

Two detectors, as in the paper:

* **Signature-based**: apps sharing a package name but signed with
  different developer keys.  Package names are supposed to be globally
  unique, so a multi-signature package cluster means someone repackaged
  someone else's app.  The member with the most downloads is taken as
  the original (the paper's heuristic).
* **Code-based** (WuKong): apps with different package names whose
  feature vectors — Android API calls, Intents, Content Providers, with
  third-party library code removed first — sit within a normalized
  Manhattan distance of 0.05 (95% similarity), refined by a second
  phase requiring >=85% shared code segments.

Candidate pairing for the code-based phase offers three strategies:

* ``"prefix"`` (default) — **prefix-filtered blocking** over
  code-segment hashes: each app indexes only a short, rarest-first
  prefix of its block set, sized so that any pair meeting the overlap
  and shared-block thresholds provably collides on at least one indexed
  block.  Exact (a provable superset of every reportable pair), but a
  block shared across a large near-duplicate family lands inside every
  member's prefix, so posting lists — and candidate counts — degrade
  back toward O(family²) on repackaging-heavy corpora.
* ``"minhash"`` — **MinHash signatures + banded LSH**: fixed-seed
  k-permutation MinHash over each unit's distinct residual block set,
  with (bands, rows) derived from ``overlap_threshold`` so the
  collision curve is steep around the reporting threshold (see
  :func:`derive_lsh_params`).  Probabilistic — recall against the
  exhaustive reference is a *measured* contract, enforced in the bench
  via :func:`measure_strategy_recall` — but candidate generation is
  fully vectorized, which is what keeps it sub-quadratic in practice on
  adversarial near-duplicate families.  Signatures fan out over the
  analysis engine's worker pool and persist in the artifact cache.
* ``"exhaustive"`` — the original inverted-index pair enumeration,
  kept as the reference implementation for benchmarks, superset
  checks, and recall measurement.

Candidate scoring fans out across the analysis engine's worker pool
with a deterministic merge, and every strategy returns its candidates
in canonical sorted order — so reports are bit-identical at any worker
width regardless of strategy.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.corpus import AppUnit
from repro.analysis.engine import INLINE_ENGINE, AnalysisEngine
from repro.analysis.libraries import LibraryDetection
from repro.crawler.snapshot import Snapshot
from repro.util.rng import stable_hash64

__all__ = [
    "feature_distance",
    "block_overlap",
    "clone_market_rates",
    "SignatureCloneAnalysis",
    "detect_signature_clones",
    "ClonePair",
    "CloneCorpus",
    "CodeCloneAnalysis",
    "CodeCloneDetector",
    "derive_lsh_params",
    "overlap_to_jaccard",
    "minhash_signature",
    "minhash_jaccard_estimate",
    "StrategyRecall",
    "measure_strategy_recall",
]

UnitKey = Tuple[str, Optional[str]]

#: Bump to invalidate cached MinHash signatures when the algorithm changes.
MINHASH_VERSION = "1"

#: Default MinHash signature length (k permutations).
DEFAULT_MINHASH_PERMUTATIONS = 128

#: Predicted collision probability a true-positive pair must reach at
#: the overlap threshold's Jaccard equivalent when deriving (bands,
#: rows).  The *measured* floor lives in the bench; this is the design
#: margin the derivation aims for.
LSH_TARGET_RECALL = 0.999

#: Signature value for a unit with no residual blocks at all.  Empty
#: units are excluded from LSH banding (they can never reach a nonzero
#: overlap), matching the prefix strategy's behavior.
_EMPTY_SIGNATURE = np.uint64(0xFFFFFFFFFFFFFFFF)


def feature_distance(a: Dict[int, int], b: Dict[int, int]) -> float:
    """The paper's normalized Manhattan distance:
    sum(|A_i - B_i|) / sum(A_i + B_i)."""
    num = 0
    den = 0
    for fid, count in a.items():
        other = b.get(fid, 0)
        num += abs(count - other)
        den += count + other
    for fid, count in b.items():
        if fid not in a:
            num += count
            den += count
    if den == 0:
        return 0.0
    return num / den


def block_overlap(a: Sequence[int], b: Sequence[int]) -> float:
    """Shared code-segment ratio (against the larger segment set)."""
    return _set_overlap(set(a), set(b))


def _set_overlap(sa: FrozenSet[int], sb: FrozenSet[int]) -> float:
    """:func:`block_overlap` over pre-built sets (the scoring hot path
    builds one frozenset per unit up front instead of two per pair)."""
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / max(len(sa), len(sb))


def clone_market_rates(
    clone_units: Set[UnitKey], snapshot: Snapshot
) -> Dict[str, float]:
    """Table 3 rates: share of each market's listings whose
    ``(package, signer)`` identity is in ``clone_units``.

    Shared by the SB and CB columns — both analyses flag clones as unit
    keys and rate them against the same listing denominators.
    """
    rates: Dict[str, float] = {}
    clone_index: Dict[str, Set[Optional[str]]] = {}
    for package, signer in clone_units:
        clone_index.setdefault(package, set()).add(signer)
    for market in snapshot.markets():
        records = snapshot.in_market(market)
        if not records:
            rates[market] = 0.0
            continue
        clones = sum(
            1 for record in records
            if record.signer in clone_index.get(record.package, ())
        )
        rates[market] = clones / len(records)
    return rates


# ---------------------------------------------------------------------------
# signature-based clones
# ---------------------------------------------------------------------------


@dataclass
class SignatureCloneAnalysis:
    """Multi-signature package clusters."""

    clusters: Dict[str, List[AppUnit]]  # package -> units (>=2 signers)
    originals: Dict[str, UnitKey]  # package -> original unit key
    clone_units: Set[UnitKey]

    def market_rates(self, snapshot: Snapshot) -> Dict[str, float]:
        """Table 3's SB column: share of each market's listings that are
        signature-based clones (non-original cluster members)."""
        return clone_market_rates(self.clone_units, snapshot)

    def developers_per_package(self) -> List[int]:
        """Figure 8(c)'s data: signer count per multi-signature package."""
        return sorted(
            len({u.signer for u in units}) for units in self.clusters.values()
        )


def detect_signature_clones(units: Sequence[AppUnit]) -> SignatureCloneAnalysis:
    """Cluster units by package; flag multi-signer clusters."""
    by_package: Dict[str, List[AppUnit]] = {}
    for unit in units:
        if unit.signer is None:
            continue
        by_package.setdefault(unit.package, []).append(unit)

    clusters: Dict[str, List[AppUnit]] = {}
    originals: Dict[str, UnitKey] = {}
    clone_units: Set[UnitKey] = set()
    for package, members in by_package.items():
        signers = {u.signer for u in members}
        if len(signers) < 2:
            continue
        clusters[package] = members
        original = max(members, key=lambda u: (u.max_downloads or -1))
        originals[package] = (original.package, original.signer)
        for unit in members:
            if unit.signer != original.signer:
                clone_units.add((unit.package, unit.signer))
    return SignatureCloneAnalysis(
        clusters=clusters, originals=originals, clone_units=clone_units
    )


# ---------------------------------------------------------------------------
# code-based clones (WuKong)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClonePair:
    """One detected (original, clone) pair."""

    original: UnitKey
    clone: UnitKey
    distance: float
    overlap: float


@dataclass
class CloneCorpus:
    """Per-unit inputs of the code-based phase, extracted once.

    ``block_sets`` carries one frozenset per unit so scoring a candidate
    is a single O(min) set intersection — no per-pair set rebuilds — and
    the recall harness reuses the same extraction across strategies.
    """

    units: List[AppUnit]
    keys: List[UnitKey]
    residual_features: List[Dict[int, int]]
    residual_blocks: List[Tuple[int, ...]]
    block_sets: List[FrozenSet[int]]
    downloads: List[int]
    library_digests: FrozenSet[object]


@dataclass
class CodeCloneAnalysis:
    pairs: List[ClonePair]
    clone_units: Set[UnitKey]
    original_of: Dict[UnitKey, UnitKey]  # clone -> its best original

    def market_rates(self, snapshot: Snapshot) -> Dict[str, float]:
        """Table 3's CB column."""
        return clone_market_rates(self.clone_units, snapshot)

    def heatmap(
        self, units_by_key: Dict[UnitKey, AppUnit], markets: Sequence[str]
    ) -> Dict[Tuple[str, str], int]:
        """Figure 10: (source market, destination market) -> clone count.

        The source is the market where the original has the most
        downloads; each market listing of the clone counts once.
        """
        counts: Dict[Tuple[str, str], int] = {
            (src, dst): 0 for src in markets for dst in markets
        }
        from repro.analysis.corpus import normalized_downloads

        for clone_key, original_key in self.original_of.items():
            original = units_by_key.get(original_key)
            clone = units_by_key.get(clone_key)
            if original is None or clone is None:
                continue
            best_market = None
            best_downloads = -1
            for record in original.records:
                downloads = normalized_downloads(record) or 0
                if downloads > best_downloads:
                    best_downloads = downloads
                    best_market = record.market_id
            if best_market is None:
                continue
            for market in clone.markets:
                if (best_market, market) in counts:
                    counts[(best_market, market)] += 1
        return counts


# -- MinHash / LSH machinery -------------------------------------------------


def overlap_to_jaccard(overlap: float) -> float:
    """The Jaccard similarity implied by the detector's overlap metric.

    The detector scores ``|A ∩ B| / max(|A|, |B|)``, which upper-bounds
    Jaccard; overlap >= t implies ``J >= t / (2 - t)`` (worst case at
    ``|A| = |B|``).  LSH parameters must guarantee collisions down at
    this Jaccard level, not at ``t`` itself.
    """
    return overlap / (2.0 - overlap)


def derive_lsh_params(
    overlap_threshold: float,
    num_perm: int = DEFAULT_MINHASH_PERMUTATIONS,
    target_recall: float = LSH_TARGET_RECALL,
) -> Tuple[int, int]:
    """Derive ``(bands, rows)`` from the reporting threshold.

    A pair at Jaccard ``j`` collides in at least one band with
    probability ``1 - (1 - j^rows)^bands``.  Larger ``rows`` steepens
    the collision curve (fewer sub-threshold candidates) at the cost of
    recall near the threshold, so the contract is: pick the *largest*
    ``rows`` (with ``bands = num_perm // rows``) whose predicted
    collision probability at ``overlap_to_jaccard(overlap_threshold)``
    still reaches ``target_recall``.  For the defaults (t=0.85, 128
    permutations) this lands on 32 bands x 4 rows.
    """
    if not 0 < overlap_threshold <= 1:
        raise ValueError(
            f"overlap_threshold must be in (0, 1], got {overlap_threshold}"
        )
    if num_perm < 1:
        raise ValueError(f"num_perm must be positive, got {num_perm}")
    jaccard = overlap_to_jaccard(overlap_threshold)
    for rows in range(num_perm, 0, -1):
        bands = num_perm // rows
        collision = 1.0 - (1.0 - jaccard**rows) ** bands
        if collision >= target_recall:
            return bands, rows
    return num_perm, 1


def _minhash_coeffs(seed: int, num_perm: int) -> Tuple[np.ndarray, np.ndarray]:
    """Fixed-seed multiply-add hash family over uint64 (odd multipliers,
    natural mod-2^64 wraparound)."""
    a = np.asarray(
        [stable_hash64("minhash-a", seed, i) | 1 for i in range(num_perm)],
        dtype=np.uint64,
    )
    b = np.asarray(
        [stable_hash64("minhash-b", seed, i) for i in range(num_perm)],
        dtype=np.uint64,
    )
    return a, b


def minhash_signature(
    blocks: Sequence[int], coeffs: Tuple[np.ndarray, np.ndarray]
) -> np.ndarray:
    """k-permutation MinHash signature of a block set.

    ``sig[i] = min over blocks x of (a_i * x + b_i) mod 2^64`` — the
    standard universal-hash approximation of row permutations.  Two
    signatures agree at position i with probability equal to the sets'
    Jaccard similarity.
    """
    a, b = coeffs
    if not blocks:
        return np.full(len(a), _EMPTY_SIGNATURE, dtype=np.uint64)
    # No dedup needed: the min over a multiset equals the min over its
    # distinct values, so repeated blocks cannot change the signature.
    x = np.asarray(blocks, dtype=np.uint64)
    hashed = x[None, :] * a[:, None] + b[:, None]
    return hashed.min(axis=1)


def minhash_jaccard_estimate(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """The unbiased Jaccard estimate: share of agreeing positions."""
    return float(np.mean(sig_a == sig_b))


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the loop."""
    ends = np.cumsum(counts)
    return np.arange(ends[-1]) - np.repeat(ends - counts, counts)


def _run_pairs(starts: np.ndarray, widths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """All within-run position pairs (p, q), p < q, for ragged runs.

    Given runs ``[starts[r], starts[r] + widths[r])`` of a sorted array,
    returns two flat position arrays enumerating every unordered pair
    inside every run — pure integer cumsum/repeat arithmetic, no
    per-run Python loop (buckets number in the thousands; per-bucket
    numpy calls would dominate the whole candidate stage).
    """
    # Left element p of run r takes every q in (p, widths[r]).
    lefts = _ragged_arange(widths - 1)  # one entry per (run, p)
    run_of_left = np.repeat(np.arange(len(widths)), widths - 1)
    partners = widths[run_of_left] - 1 - lefts  # q count for each p
    base = np.repeat(starts[run_of_left], partners)
    p = np.repeat(lefts, partners)
    q = p + 1 + _ragged_arange(partners)
    return base + p, base + q


def _lsh_candidate_pairs(
    signatures: Sequence[np.ndarray],
    block_sets: Sequence[FrozenSet[int]],
    bands: int,
    rows: int,
) -> List[Tuple[int, int]]:
    """Banded LSH bucketing with vectorized pair generation.

    Within a genuine near-duplicate family every exact strategy must
    emit ~|family|² candidates too — the speed win here is constant
    factor, not asymptotic: band keys, bucket grouping, pair encoding,
    and dedup all run as array operations instead of per-element Python
    set updates.
    """
    n = len(signatures)
    active = np.asarray(
        [i for i in range(n) if block_sets[i]], dtype=np.int64
    )
    if len(active) < 2:
        return []
    sig = np.vstack([signatures[int(i)] for i in active])
    # Collapse each band's rows into one 64-bit key via a multiply-add
    # chain.  A key collision between distinct row vectors only adds a
    # spurious candidate (scoring filters it); it can never lose a pair.
    mult = np.uint64(0x9E3779B97F4A7C15)
    banded = sig[:, : bands * rows].reshape(len(active), bands, rows)
    keys = np.zeros((len(active), bands), dtype=np.uint64)
    for r in range(rows):
        keys = keys * mult + banded[:, :, r]

    stride = np.int64(n)
    encoded: List[np.ndarray] = []
    for band in range(bands):
        col = keys[:, band]
        # Bucket membership is an equality grouping, so any sort order
        # works; pairs are canonicalized (lo, hi) below and the final
        # np.unique fixes the global order — output is sort-agnostic.
        order = np.argsort(col)
        ordered = col[order]
        edges = np.flatnonzero(np.r_[True, ordered[1:] != ordered[:-1], True])
        widths = np.diff(edges)
        multi = widths >= 2
        if not multi.any():
            continue
        ii, jj = _run_pairs(edges[:-1][multi], widths[multi])
        u = active[order[ii]]
        v = active[order[jj]]
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        encoded.append(lo * stride + hi)
    if not encoded:
        return []
    # One global sort+dedup yields the canonical (i, j) order directly:
    # codes i*n+j sort exactly like tuples (i, j).
    codes = np.unique(np.concatenate(encoded))
    return list(zip((codes // stride).tolist(), (codes % stride).tolist()))


class CodeCloneDetector:
    """WuKong-style two-phase detector with pluggable candidate blocking.

    ``candidate_strategy`` selects the candidate generator: ``"prefix"``
    (the default) uses prefix-filtered blocking; ``"minhash"`` uses
    MinHash-LSH banding (vectorized, sub-quadratic in practice on
    near-duplicate families, recall measured against the reference);
    ``"exhaustive"`` keeps the original inverted-index pair enumeration
    as the reference implementation.  The prefix strategy generates a
    provable superset of every pair the exhaustive strategy would
    ultimately report; the minhash strategy's recall is enforced
    empirically by the benchmark suite (>=99% of exhaustive pairs).

    ``max_block_bucket`` is honored **only by the exhaustive strategy**
    (it drops stop-word blocks whose posting lists exceed the cutoff
    before enumerating pairs).  The prefix strategy deliberately ignores
    it: dropping giant posting lists there would break the superset
    proof (a reportable pair may collide *only* on a popular block),
    and the minhash strategy never builds posting lists at all.  The
    asymmetry is intentional — the exhaustive generator is the only one
    that would otherwise go quadratic on every popular block.
    """

    STRATEGIES = ("prefix", "exhaustive", "minhash")

    def __init__(
        self,
        distance_threshold: float = 0.05,
        overlap_threshold: float = 0.85,
        min_shared_blocks: int = 8,
        max_block_bucket: int = 200,
        candidate_strategy: str = "prefix",
        minhash_permutations: int = DEFAULT_MINHASH_PERMUTATIONS,
        minhash_seed: int = 0,
    ):
        if candidate_strategy not in self.STRATEGIES:
            raise ValueError(f"unknown candidate strategy {candidate_strategy!r}")
        if minhash_permutations < 1:
            raise ValueError(
                f"minhash_permutations must be positive, got {minhash_permutations}"
            )
        self.distance_threshold = distance_threshold
        self.overlap_threshold = overlap_threshold
        self.min_shared_blocks = min_shared_blocks
        #: Stop-word cutoff for the exhaustive strategy only — see the
        #: class docstring for why prefix and minhash ignore it.
        self.max_block_bucket = max_block_bucket
        self.candidate_strategy = candidate_strategy
        self.minhash_permutations = minhash_permutations
        self.minhash_seed = minhash_seed

    def detect(
        self,
        units: Sequence[AppUnit],
        library_detection: Optional[LibraryDetection] = None,
        engine: Optional[AnalysisEngine] = None,
    ) -> CodeCloneAnalysis:
        engine = engine or INLINE_ENGINE
        corpus = self.extract(units, library_detection, engine)
        return self.detect_extracted(corpus, engine)

    def extract(
        self,
        units: Sequence[AppUnit],
        library_detection: Optional[LibraryDetection] = None,
        engine: Optional[AnalysisEngine] = None,
    ) -> CloneCorpus:
        """Library removal + per-unit feature/block extraction.

        Strategy-independent: the recall harness and the benches extract
        once and run several candidate strategies over the same corpus.
        """
        engine = engine or INLINE_ENGINE
        lib_digests = frozenset(
            library_detection.library_digests if library_detection else ()
        )
        eligible = [u for u in units if u.apk is not None and u.signer is not None]

        def extract_one(unit: AppUnit) -> Tuple[Dict[int, int], Tuple[int, ...]]:
            features: Dict[int, int] = {}
            blocks: List[int] = []
            for pkg in unit.apk.packages:
                if pkg.feature_digest in lib_digests:
                    continue
                for fid, count in pkg.features.items():
                    features[fid] = features.get(fid, 0) + count
                blocks.extend(pkg.blocks)
            return features, tuple(blocks)

        extracted = engine.map(eligible, extract_one, stage="analysis.clones.extract")
        return CloneCorpus(
            units=eligible,
            keys=[(u.package, u.signer) for u in eligible],
            residual_features=[features for features, _ in extracted],
            residual_blocks=[blocks for _, blocks in extracted],
            block_sets=[frozenset(blocks) for _, blocks in extracted],
            downloads=[u.max_downloads or 0 for u in eligible],
            library_digests=lib_digests,
        )

    def detect_extracted(
        self,
        corpus: CloneCorpus,
        engine: Optional[AnalysisEngine] = None,
        candidates: Optional[List[Tuple[int, int]]] = None,
    ) -> CodeCloneAnalysis:
        """Candidate generation + scoring over an extracted corpus."""
        engine = engine or INLINE_ENGINE
        if candidates is None:
            candidates = self._candidate_pairs(corpus, engine)
        keys = corpus.keys
        block_sets = corpus.block_sets
        residual_features = corpus.residual_features
        downloads = corpus.downloads

        def score(pair: Tuple[int, int]) -> Optional[Tuple[int, int, float, float]]:
            i, j = pair
            key_i, key_j = keys[i], keys[j]
            if key_i[0] == key_j[0]:
                return None  # same package: signature-based territory
            if key_i[1] == key_j[1]:
                return None  # same developer: legitimate reuse
            overlap = _set_overlap(block_sets[i], block_sets[j])
            if overlap < self.overlap_threshold:
                return None
            distance = feature_distance(residual_features[i], residual_features[j])
            if distance > self.distance_threshold:
                return None
            return i, j, distance, overlap

        # Candidates are scored in parallel (each score is a pure pair
        # comparison) and merged back in candidate order, so the result
        # is identical at any worker count.
        scored = engine.map(candidates, score, stage="analysis.clones.score")

        pairs: List[ClonePair] = []
        best_original: Dict[UnitKey, Tuple[float, UnitKey]] = {}
        clone_units: Set[UnitKey] = set()
        for hit in scored:
            if hit is None:
                continue
            i, j, distance, overlap = hit
            if downloads[i] >= downloads[j]:
                original, clone = keys[i], keys[j]
            else:
                original, clone = keys[j], keys[i]
            pairs.append(
                ClonePair(original=original, clone=clone, distance=distance, overlap=overlap)
            )
            clone_units.add(clone)
            prior = best_original.get(clone)
            if prior is None or distance < prior[0]:
                best_original[clone] = (distance, original)

        return CodeCloneAnalysis(
            pairs=pairs,
            clone_units=clone_units,
            original_of={clone: orig for clone, (_, orig) in best_original.items()},
        )

    def _candidate_pairs(
        self, corpus: CloneCorpus, engine: Optional[AnalysisEngine] = None
    ) -> List[Tuple[int, int]]:
        """Pairs worth scoring, in canonical sorted order."""
        if self.candidate_strategy == "exhaustive":
            return sorted(self._candidate_pairs_exhaustive(corpus.residual_blocks))
        if self.candidate_strategy == "minhash":
            return self._candidate_pairs_minhash(corpus, engine or INLINE_ENGINE)
        return self._candidate_pairs_prefix(corpus.residual_blocks)

    def _candidate_pairs_minhash(
        self, corpus: CloneCorpus, engine: AnalysisEngine
    ) -> List[Tuple[int, int]]:
        """MinHash signatures + banded LSH candidate generation.

        Signatures fan out over the engine's worker pool and land in the
        artifact cache.  A cached signature is a pure function of the
        APK bytes *given* the library set and the strategy parameters,
        so the version string folds in the MinHash seed, permutation
        count, threshold, and a fingerprint of the library digests —
        any of those changing is a cache miss, never a wrong hit.
        """
        bands, rows = derive_lsh_params(
            self.overlap_threshold, self.minhash_permutations
        )
        num_perm = bands * rows
        coeffs = _minhash_coeffs(self.minhash_seed, num_perm)
        lib_fp = stable_hash64(
            "clone-lib-set", tuple(sorted(map(repr, corpus.library_digests)))
        )
        version = (
            f"{MINHASH_VERSION}-k{num_perm}-s{self.minhash_seed}"
            f"-t{self.overlap_threshold}-lib{lib_fp:016x}"
        )
        lib_digests = corpus.library_digests

        def compute(apk) -> np.ndarray:
            blocks = [
                block
                for pkg in apk.packages
                if pkg.feature_digest not in lib_digests
                for block in pkg.blocks
            ]
            return minhash_signature(blocks, coeffs)

        def decode(payload: object) -> np.ndarray:
            sig = np.asarray(payload, dtype=np.uint64)
            if sig.shape != (num_perm,):
                raise ValueError("minhash signature shape mismatch")
            return sig

        signatures = engine.map_units_cached(
            "clone_minhash",
            version,
            corpus.units,
            compute,
            encode=lambda sig: [int(v) for v in sig],
            decode=decode,
            stage="analysis.clones.minhash",
        )
        return _lsh_candidate_pairs(signatures, corpus.block_sets, bands, rows)

    def _candidate_pairs_prefix(
        self, residual_blocks: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, int]]:
        """Prefix-filtered blocking over distinct block hashes.

        Any reported pair (i, j) must satisfy ``|B_i & B_j| >= c`` with
        ``c = max(min_shared_blocks, ceil(t * max(|B_i|, |B_j|)))``
        (the exhaustive generator demands ``min_shared_blocks`` shared
        segments and scoring demands overlap ``>= t``).  Order every
        unit's distinct blocks by a global canonical key (rarest block
        first) and index only the first ``|B_i| - c_i + 1`` of them,
        where ``c_i = max(min_shared_blocks, ceil(t * |B_i|))``.

        Superset proof: let S = B_i & B_j with |S| >= max(c_i, c_j) and
        let s be S's smallest block under the global order.  At least
        |S| - 1 >= c_i - 1 blocks of B_i sort after s, so s sits within
        the first |B_i| - (c_i - 1) = prefix positions of B_i — and
        symmetrically for B_j.  Hence every qualifying pair collides on
        s in both prefixes and is generated; pairs below the thresholds
        may or may not be, which only costs scoring work, never a
        detection.
        """
        t = self.overlap_threshold
        distinct: List[List[int]] = [sorted(set(b)) for b in residual_blocks]
        rarity: Counter = Counter()
        for blocks in distinct:
            rarity.update(blocks)

        index: Dict[int, List[int]] = {}
        candidates: Set[Tuple[int, int]] = set()
        for idx, blocks in enumerate(distinct):
            size = len(blocks)
            # The 1e-9 slack keeps float round-up from over-shrinking
            # the prefix (which could silently drop true pairs).
            required = max(
                self.min_shared_blocks, int(math.ceil(t * size - 1e-9))
            )
            prefix_len = size - required + 1
            if prefix_len <= 0:
                continue  # cannot reach the shared-block floor at all
            blocks.sort(key=lambda b: (rarity[b], b))
            for block in blocks[:prefix_len]:
                posting = index.setdefault(block, [])
                for other in posting:
                    candidates.add((other, idx))
                posting.append(idx)
        return sorted(candidates)

    def _candidate_pairs_exhaustive(
        self, residual_blocks: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, int]]:
        """The original quadratic enumeration (reference/benchmarks)."""
        bucket: Dict[int, List[int]] = {}
        for idx, blocks in enumerate(residual_blocks):
            for block in set(blocks):
                bucket.setdefault(block, []).append(idx)
        shared: Counter = Counter()
        for members in bucket.values():
            if len(members) < 2 or len(members) > self.max_block_bucket:
                continue
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    shared[(members[a], members[b])] += 1
        return [pair for pair, n in shared.items() if n >= self.min_shared_blocks]


# ---------------------------------------------------------------------------
# measured-recall harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StrategyRecall:
    """One strategy's measured recall against a reference strategy."""

    strategy: str
    reference: str
    candidates: int
    reference_candidates: int
    reference_pairs: int
    recovered_pairs: int

    @property
    def recall(self) -> float:
        """Share of the reference's reported clone pairs the probed
        strategy also reported (1.0 when the reference found none)."""
        if self.reference_pairs == 0:
            return 1.0
        return self.recovered_pairs / self.reference_pairs


def measure_strategy_recall(
    units: Sequence[AppUnit],
    library_detection: Optional[LibraryDetection] = None,
    engine: Optional[AnalysisEngine] = None,
    strategy: str = "minhash",
    reference: str = "exhaustive",
    detector: Optional[CodeCloneDetector] = None,
) -> StrategyRecall:
    """Measure one candidate strategy's end-to-end pair recall.

    Extraction happens once; both strategies run over the same
    :class:`CloneCorpus` (reusing its per-unit frozensets), and recall
    is computed over *reported clone pairs*, not raw candidates — a
    candidate either strategy would discard in scoring costs nothing.
    This is the probabilistic strategy's quality guardrail: the bench
    enforces a floor on ``recall`` and records it in the bench artifact.
    """
    engine = engine or INLINE_ENGINE
    base = detector or CodeCloneDetector()

    def configured(name: str) -> CodeCloneDetector:
        return CodeCloneDetector(
            distance_threshold=base.distance_threshold,
            overlap_threshold=base.overlap_threshold,
            min_shared_blocks=base.min_shared_blocks,
            max_block_bucket=base.max_block_bucket,
            candidate_strategy=name,
            minhash_permutations=base.minhash_permutations,
            minhash_seed=base.minhash_seed,
        )

    probe_det = configured(strategy)
    ref_det = configured(reference)
    corpus = probe_det.extract(units, library_detection, engine)
    probe_candidates = probe_det._candidate_pairs(corpus, engine)
    ref_candidates = ref_det._candidate_pairs(corpus, engine)
    probe_pairs = {
        (p.original, p.clone)
        for p in probe_det.detect_extracted(corpus, engine, probe_candidates).pairs
    }
    ref_pairs = {
        (p.original, p.clone)
        for p in ref_det.detect_extracted(corpus, engine, ref_candidates).pairs
    }
    return StrategyRecall(
        strategy=strategy,
        reference=reference,
        candidates=len(probe_candidates),
        reference_candidates=len(ref_candidates),
        reference_pairs=len(ref_pairs),
        recovered_pairs=len(ref_pairs & probe_pairs),
    )
