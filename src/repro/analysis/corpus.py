"""Corpus preparation: from per-market records to unique app units.

Section 5 identifies unique apps across markets by package name; within
a package, distinct developer signatures indicate distinct actors
(potential clones).  An :class:`AppUnit` is one (package, signer) pair
with a representative parsed APK and the per-market records backing it.

Unit construction streams: :func:`iter_units` walks the snapshot's
package groups (a batched cursor on the spilled backend) and yields
each package's units as soon as its records have been seen, so only one
package's records are resident at a time.  A unit holds its
representative APK *by record* — on the spilled backend that is a
:class:`~repro.store.blobs.LazyApk` proxy, so a fully-built unit list
costs metadata, not parsed APKs.  :func:`build_units` is the
materialized form and produces byte-identical output on both backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.apk.archive import ParsedApk
from repro.crawler.snapshot import CrawlRecord, Snapshot

__all__ = [
    "AppUnit",
    "build_units",
    "iter_units",
    "normalized_downloads",
    "record_sort_key",
]


def record_sort_key(record: CrawlRecord) -> Tuple[str, str]:
    """Canonical order for a unit's backing records.

    ``(market_id, package)`` is the snapshot's primary key, so the key
    is unique within a unit and total: however records were grouped —
    serially, from a resumed journal, or by a parallel worker pool —
    the same record set always sorts to the same sequence.  That makes
    ``AppUnit.records[0]`` (the representative record backing
    ``app_name``) explicitly deterministic instead of an accident of
    crawl insertion order.
    """
    return (record.market_id, record.package)


def normalized_downloads(record: CrawlRecord) -> Optional[int]:
    """Install count normalized across reporting styles.

    Markets reporting exact counts pass through; Google Play's install
    ranges use the lower bound (the paper's estimation rule, footnote 8).
    Returns None when the market does not report installs.
    """
    if record.downloads is not None:
        return record.downloads
    if record.install_range is not None:
        return record.install_range[0]
    return None


def _apk_rank(apk) -> Tuple[int, str]:
    """Representative ranking key: (version code, md5 tie-break).

    Reads the spill-time ``version_code_hint`` when the APK is a lazy
    proxy, so ranking never forces a parse; a :class:`ParsedApk` falls
    through to its manifest.
    """
    hint = getattr(apk, "version_code_hint", None)
    version_code = hint if hint is not None else apk.manifest.version_code
    return (version_code, apk.md5)


@dataclass
class AppUnit:
    """One unique app: a (package, signer) pair observed across markets.

    The representative APK is held through ``apk_record`` (the backing
    crawl record); ``apk`` dereferences it on demand — a lazy read on
    the spilled backend — and ``apk_md5`` answers identity questions
    (artifact-cache keys) without touching APK content at all.
    """

    package: str
    signer: Optional[str]  # None when no APK was obtained anywhere
    records: List[CrawlRecord] = field(default_factory=list)
    apk_record: Optional[CrawlRecord] = None

    @property
    def apk(self) -> Optional[ParsedApk]:
        return self.apk_record.apk if self.apk_record is not None else None

    @property
    def apk_md5(self) -> Optional[str]:
        return self.apk_record.md5 if self.apk_record is not None else None

    @property
    def markets(self) -> Tuple[str, ...]:
        return tuple(sorted({r.market_id for r in self.records}))

    @property
    def app_name(self) -> str:
        return self.records[0].app_name

    @property
    def max_downloads(self) -> Optional[int]:
        values = [
            d for d in (normalized_downloads(r) for r in self.records)
            if d is not None
        ]
        return max(values) if values else None

    @property
    def max_version_code(self) -> int:
        return max(r.version_code for r in self.records)


def _package_units(package: str, records: List[CrawlRecord]) -> List[AppUnit]:
    """Group one package's records into its (package, signer) units."""
    by_signer: Dict[str, AppUnit] = {}
    deferred: List[CrawlRecord] = []
    for record in records:
        apk = record.apk
        if apk is None:
            deferred.append(record)
            continue
        signer = apk.signer_fingerprint
        unit = by_signer.get(signer)
        if unit is None:
            unit = AppUnit(package=package, signer=signer)
            by_signer[signer] = unit
        unit.records.append(record)
        if unit.apk_record is None or _apk_rank(apk) > _apk_rank(unit.apk_record.apk):
            unit.apk_record = record

    apk_signers = len(by_signer)
    none_unit: Optional[AppUnit] = None
    for record in deferred:
        if apk_signers == 1:
            next(iter(by_signer.values())).records.append(record)
            continue
        if none_unit is None:
            none_unit = AppUnit(package=package, signer=None)
        none_unit.records.append(record)

    units = list(by_signer.values())
    if none_unit is not None:
        units.append(none_unit)
    units.sort(key=lambda u: (u.package, u.signer or ""))
    for unit in units:
        unit.records.sort(key=record_sort_key)
    return units


def iter_units(
    snapshot: Snapshot, batch_size: Optional[int] = None
) -> Iterator[AppUnit]:
    """Stream (package, signer) units in canonical order.

    Records lacking an APK join the unit of their package's sole signer
    when that is unambiguous; otherwise they form a signer-``None`` unit
    (they still carry metadata for market-level analyses).
    The representative APK is the one with the highest version code —
    the most up-to-date code the crawl saw — with the APK MD5 as the
    tie-break, so the choice depends only on the record *set*, never on
    the order records were ingested.  For the same reason each unit's
    records are sorted by :func:`record_sort_key` and units are yielded
    in ``(package, signer)`` order: any ingestion order and either
    snapshot backend produce the identical unit sequence.

    Grouping is per package (signer assignment never crosses packages),
    so the generator holds one package's records at a time —
    ``batch_size`` tunes the spilled backend's cursor width underneath.
    """
    for package, records in snapshot.iter_package_groups(batch_size):
        yield from _package_units(package, records)


def build_units(snapshot: Snapshot) -> List[AppUnit]:
    """The materialized unit list (see :func:`iter_units`)."""
    return list(iter_units(snapshot))
