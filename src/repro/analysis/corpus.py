"""Corpus preparation: from per-market records to unique app units.

Section 5 identifies unique apps across markets by package name; within
a package, distinct developer signatures indicate distinct actors
(potential clones).  An :class:`AppUnit` is one (package, signer) pair
with a representative parsed APK and the per-market records backing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apk.archive import ParsedApk
from repro.crawler.snapshot import CrawlRecord, Snapshot

__all__ = ["AppUnit", "build_units", "normalized_downloads", "record_sort_key"]


def record_sort_key(record: CrawlRecord) -> Tuple[str, str]:
    """Canonical order for a unit's backing records.

    ``(market_id, package)`` is the snapshot's primary key, so the key
    is unique within a unit and total: however records were grouped —
    serially, from a resumed journal, or by a parallel worker pool —
    the same record set always sorts to the same sequence.  That makes
    ``AppUnit.records[0]`` (the representative record backing
    ``app_name``) explicitly deterministic instead of an accident of
    crawl insertion order.
    """
    return (record.market_id, record.package)


def normalized_downloads(record: CrawlRecord) -> Optional[int]:
    """Install count normalized across reporting styles.

    Markets reporting exact counts pass through; Google Play's install
    ranges use the lower bound (the paper's estimation rule, footnote 8).
    Returns None when the market does not report installs.
    """
    if record.downloads is not None:
        return record.downloads
    if record.install_range is not None:
        return record.install_range[0]
    return None


@dataclass
class AppUnit:
    """One unique app: a (package, signer) pair observed across markets."""

    package: str
    signer: Optional[str]  # None when no APK was obtained anywhere
    records: List[CrawlRecord] = field(default_factory=list)
    apk: Optional[ParsedApk] = None

    @property
    def markets(self) -> Tuple[str, ...]:
        return tuple(sorted({r.market_id for r in self.records}))

    @property
    def app_name(self) -> str:
        return self.records[0].app_name

    @property
    def max_downloads(self) -> Optional[int]:
        values = [
            d for d in (normalized_downloads(r) for r in self.records)
            if d is not None
        ]
        return max(values) if values else None

    @property
    def max_version_code(self) -> int:
        return max(r.version_code for r in self.records)


def build_units(snapshot: Snapshot) -> List[AppUnit]:
    """Group records into (package, signer) units.

    Records lacking an APK join the unit of their package's sole signer
    when that is unambiguous; otherwise they form a signer-``None`` unit
    (they still carry metadata for market-level analyses).
    The representative APK is the one with the highest version code —
    the most up-to-date code the crawl saw — with the APK MD5 as the
    tie-break, so the choice depends only on the record *set*, never on
    the order records were ingested.  For the same reason each unit's
    records are sorted by :func:`record_sort_key` and the unit list by
    ``(package, signer)`` before returning: a parallel unit
    construction can never reorder either silently.
    """
    by_key: Dict[Tuple[str, Optional[str]], AppUnit] = {}
    deferred: List[CrawlRecord] = []
    for record in snapshot:
        if record.apk is None:
            deferred.append(record)
            continue
        key = (record.package, record.apk.signer_fingerprint)
        unit = by_key.get(key)
        if unit is None:
            unit = AppUnit(package=record.package, signer=record.apk.signer_fingerprint)
            by_key[key] = unit
        unit.records.append(record)
        if unit.apk is None or (
            record.apk.manifest.version_code,
            record.apk.md5,
        ) > (unit.apk.manifest.version_code, unit.apk.md5):
            unit.apk = record.apk

    signers_of_package: Dict[str, List[Tuple[str, Optional[str]]]] = {}
    for key in by_key:
        signers_of_package.setdefault(key[0], []).append(key)

    for record in deferred:
        keys = signers_of_package.get(record.package, [])
        if len(keys) == 1:
            by_key[keys[0]].records.append(record)
            continue
        key = (record.package, None)
        unit = by_key.get(key)
        if unit is None:
            unit = AppUnit(package=record.package, signer=None)
            by_key[key] = unit
            signers_of_package.setdefault(record.package, [])
        unit.records.append(record)

    units = sorted(by_key.values(), key=lambda u: (u.package, u.signer or ""))
    for unit in units:
        unit.records.sort(key=record_sort_key)
    return units
