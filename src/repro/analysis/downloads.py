"""Download analysis (Section 4.2, Figure 2, Table 1 aggregates).

Install counts are normalized to Google Play's ranges: exact counts from
Chinese markets fall into the same bins Google Play reports, aggregated
downloads use the range lower bound (footnote 8), and markets that do
not report installs (Xiaomi, App China) yield empty rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.corpus import normalized_downloads
from repro.crawler.snapshot import Snapshot
from repro.markets.profiles import DOWNLOAD_BIN_EDGES, DOWNLOAD_BIN_LABELS
from repro.util.stats import top_share

__all__ = [
    "bin_index",
    "bin_label",
    "download_bin_distribution",
    "download_matrix",
    "aggregated_downloads",
    "top_download_share",
]


def bin_index(downloads: int) -> int:
    """Figure 2 bin index for a normalized install count."""
    if downloads < 0:
        raise ValueError("downloads must be non-negative")
    idx = int(np.searchsorted(DOWNLOAD_BIN_EDGES, downloads, side="right")) - 1
    return max(0, min(idx, len(DOWNLOAD_BIN_LABELS) - 1))


def bin_label(downloads: int) -> str:
    return DOWNLOAD_BIN_LABELS[bin_index(downloads)]


def download_bin_distribution(snapshot: Snapshot, market_id: str) -> List[float]:
    """Per-bin shares for one market (a Figure 2 row).

    All-zero when the market does not report installs.
    """
    counts = [0] * len(DOWNLOAD_BIN_LABELS)
    total = 0
    for record in snapshot.in_market(market_id):
        downloads = normalized_downloads(record)
        if downloads is None:
            continue
        counts[bin_index(downloads)] += 1
        total += 1
    if total == 0:
        return [0.0] * len(DOWNLOAD_BIN_LABELS)
    return [c / total for c in counts]


def download_matrix(snapshot: Snapshot) -> Dict[str, List[float]]:
    """Figure 2: market -> per-bin shares."""
    return {m: download_bin_distribution(snapshot, m) for m in snapshot.markets()}


def aggregated_downloads(snapshot: Snapshot, market_id: str) -> int:
    """Table 1's aggregated downloads (sum of normalized installs)."""
    return sum(
        d
        for d in (
            normalized_downloads(r) for r in snapshot.in_market(market_id)
        )
        if d is not None
    )


def top_download_share(
    snapshot: Snapshot, market_id: str, fraction: float
) -> Optional[float]:
    """Share of a market's installs owned by its top ``fraction`` of apps.

    Section 4.2: the top 0.1% of apps account for >50% of downloads, over
    80% for Tencent Myapp.  None when the market reports no installs.
    """
    values = [
        d
        for d in (normalized_downloads(r) for r in snapshot.in_market(market_id))
        if d is not None
    ]
    if not values or sum(values) == 0:
        return None
    return top_share(values, fraction)
