"""Parallel, cache-aware execution layer for the post-crawl pipeline.

Everything downstream of the snapshot — per-APK library-feature
extraction, VirusTotal scans, permission extraction, clone-candidate
scoring, and the experiment renders — is embarrassingly parallel at the
unit level.  :class:`AnalysisEngine` fans that work across a thread
pool with a **deterministic merge**: results are always collected in
input order, so the output is bit-identical to the serial path at any
worker count (the same invariant the crawl engine guarantees for
snapshots).

The engine also owns the persistent :class:`ArtifactCache`: a
content-addressed store keyed by ``(apk_md5, analyzer_name,
analyzer_version)``.  A per-APK analyzer result depends only on the APK
bytes and the analyzer version, so re-running an experiment, the
April-2018 recheck, or ``run_all`` after a code-irrelevant change skips
every unchanged per-APK computation (incremental analysis).
Invalidation is bump-the-version: an analyzer that changes behavior
bumps its version constant and every stale entry misses.  Writes are
atomic (temp file + ``os.replace``), and a corrupted or truncated entry
falls back to recompute — the cache can never poison a run.
"""

from __future__ import annotations

import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.obs import NULL_OBS, Observability

__all__ = [
    "AnalysisEngine",
    "ArtifactCache",
    "CacheStats",
    "resolve_analysis_workers",
]

T = TypeVar("T")
R = TypeVar("R")


def resolve_analysis_workers(workers: int = 0) -> int:
    """Resolve an analysis worker count (``0`` = one per CPU)."""
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers:
        return workers
    return max(1, os.cpu_count() or 1)


@dataclass
class CacheStats:
    """Hit/miss accounting for one engine's artifact cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


class ArtifactCache:
    """Content-addressed per-APK analyzer result store.

    Layout on disk (one JSON file per artifact)::

        <root>/<analyzer>/<version>/<md5[:2]>/<md5>.json

    Each file wraps its payload with the key it was stored under; a
    ``get`` whose wrapper does not match (or whose file is truncated or
    not JSON at all) counts as ``corrupt`` and behaves as a miss, so a
    damaged cache degrades to recomputation instead of wrong results.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def entry_path(self, analyzer: str, version: str, md5: str) -> Path:
        return self.root / analyzer / version / md5[:2] / f"{md5}.json"

    def get(self, analyzer: str, version: str, md5: str) -> Optional[object]:
        """The stored payload, or None on miss/corruption."""
        path = self.entry_path(analyzer, version, md5)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            doc = json.loads(raw)
            if (
                doc["analyzer"] != analyzer
                or doc["version"] != version
                or doc["md5"] != md5
            ):
                raise ValueError("cache entry key mismatch")
            payload = doc["payload"]
        except (ValueError, KeyError, TypeError):
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return payload

    def put(self, analyzer: str, version: str, md5: str, payload: object) -> None:
        """Store a payload atomically (temp file + rename)."""
        path = self.entry_path(analyzer, version, md5)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "analyzer": analyzer,
            "version": version,
            "md5": md5,
            "payload": payload,
        }
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        tmp.write_text(json.dumps(doc, separators=(",", ":")), encoding="utf-8")
        os.replace(tmp, path)
        with self._lock:
            self.stats.stores += 1


class AnalysisEngine:
    """Worker pool + artifact cache for the analysis pipeline.

    ``map`` fans a pure function over items and returns results in
    input order — the deterministic merge that makes every analysis
    artifact identical at any worker count.  ``map_units_cached`` adds
    the artifact cache for analyzers whose result is a function of the
    APK bytes alone.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ArtifactCache] = None,
        obs: Observability = NULL_OBS,
        batch_size: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.workers = workers
        self.cache = cache
        self.obs = obs
        #: When set, ``map`` feeds the pool in chunks of this many items
        #: instead of enqueueing the whole corpus at once — the analysis
        #: side of the out-of-core contract (results are identical; only
        #: the number of simultaneously in-flight items changes).
        self.batch_size = batch_size
        self.parallel_batches = 0

    @classmethod
    def from_config(cls, config, obs: Observability = NULL_OBS) -> "AnalysisEngine":
        """Build the engine a :class:`~repro.core.config.StudyConfig` asks for."""
        cache_dir = getattr(config, "artifact_cache_dir", None)
        batch_size = (
            getattr(config, "store_batch_size", None)
            if getattr(config, "store_backend", "memory") == "sqlite"
            else None
        )
        return cls(
            workers=getattr(config, "analysis_workers", 1),
            cache=ArtifactCache(cache_dir) if cache_dir else None,
            obs=obs,
            batch_size=batch_size,
        )

    @property
    def cache_stats(self) -> Optional[CacheStats]:
        return self.cache.stats if self.cache is not None else None

    def stats_line(self) -> str:
        """One-line summary for run reports and the CLI."""
        cache = (
            "off"
            if self.cache is None
            else (
                f"{self.cache.stats.hits} hits / {self.cache.stats.misses} misses"
                + (
                    f" ({self.cache.stats.corrupt} corrupt)"
                    if self.cache.stats.corrupt
                    else ""
                )
            )
        )
        return f"analysis engine: {self.workers} workers, artifact cache {cache}"

    # -- execution ---------------------------------------------------------

    def map(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        stage: Optional[str] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item; results in input order.

        ``fn`` must be pure with respect to item order: the serial path
        and every worker width then produce identical output lists.

        With ``batch_size`` set the pool is fed one chunk at a time,
        each chunk merged in input order before the next is enqueued —
        so at most ``batch_size`` items are in flight and the output is
        still bit-identical to the unbatched path.
        """
        items = list(items)
        cm = self.obs.span(stage, n_items=len(items)) if stage else _NULL_CM
        with cm:
            if self.workers == 1 or len(items) <= 1:
                return [fn(item) for item in items]
            self.parallel_batches += 1
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                if self.batch_size is None:
                    return list(pool.map(fn, items))
                results: List[R] = []
                for start in range(0, len(items), self.batch_size):
                    results.extend(
                        pool.map(fn, items[start : start + self.batch_size])
                    )
                return results

    def map_units_cached(
        self,
        analyzer: str,
        version: str,
        units: Sequence,
        compute: Callable,
        encode: Callable[[R], object],
        decode: Callable[[object], R],
        stage: Optional[str] = None,
    ) -> List[Optional[R]]:
        """Run a per-APK analyzer over units, through the artifact cache.

        ``compute`` receives the unit's :class:`ParsedApk` and must
        depend on nothing else — that is what makes ``(md5, analyzer,
        version)`` a complete cache key.  ``encode``/``decode`` convert
        the result to/from a JSON-safe payload; a decode failure counts
        as corruption and falls back to recompute.  Units without an
        APK yield ``None``.
        """
        cache = self.cache

        def one(unit):
            # Identity first: `apk_md5` answers from record metadata, so
            # a cache hit never touches APK content (on the out-of-core
            # backend that means no blob read at all).  Units predating
            # the md5 property fall through to the APK itself.
            md5 = getattr(unit, "apk_md5", None)
            apk = unit.apk if md5 is None else None
            if md5 is None:
                if apk is None:
                    return None
                md5 = apk.md5
            if cache is not None:
                payload = cache.get(analyzer, version, md5)
                if payload is not None:
                    try:
                        return decode(payload)
                    except (ValueError, KeyError, TypeError):
                        with cache._lock:
                            cache.stats.corrupt += 1
                            cache.stats.hits -= 1
                            cache.stats.misses += 1
            value = compute(apk if apk is not None else unit.apk)
            if cache is not None:
                cache.put(analyzer, version, md5, encode(value))
            return value

        return self.map(units, one, stage=stage or f"analysis.{analyzer}.map")


class _NullCM:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CM = _NullCM()

#: A shared serial, cache-less engine: the default for analyzers called
#: without an engine, so the serial path stays the unthreaded baseline.
INLINE_ENGINE = AnalysisEngine(workers=1)
