"""Fake app detection (Section 6.1, Table 3, Figure 8b).

Fake apps masquerade under the *name* of a popular app while carrying a
different package name and signature.  The paper's clustering heuristic:

1. cluster apps by exact display name;
2. keep small clusters (size < 5) with uncommon names that contain one
   popular "official" member (>1M installs) and unpopular members
   (<=1,000 installs) signed by someone else — those members are fakes.

Markets that report no install counts (Xiaomi, App China) cannot anchor
the popularity test, so no fakes are identified there — reproducing the
paper's 0.0 entries for exactly those stores.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.corpus import AppUnit
from repro.crawler.snapshot import Snapshot

__all__ = ["FakeAppAnalysis", "detect_fakes", "name_cluster_sizes"]

UnitKey = Tuple[str, Optional[str]]

OFFICIAL_MIN_DOWNLOADS = 1_000_000
FAKE_MAX_DOWNLOADS = 1_000
MAX_CLUSTER_SIZE = 5


@dataclass
class FakeAppAnalysis:
    fake_units: Set[UnitKey]
    official_of: Dict[UnitKey, UnitKey]

    def market_rates(self, snapshot: Snapshot) -> Dict[str, float]:
        """Table 3's Fake column: share of each market's listings."""
        fake_index: Dict[str, Set[Optional[str]]] = {}
        for package, signer in self.fake_units:
            fake_index.setdefault(package, set()).add(signer)
        rates: Dict[str, float] = {}
        for market in snapshot.markets():
            records = snapshot.in_market(market)
            if not records:
                rates[market] = 0.0
                continue
            fakes = sum(
                1 for record in records
                if record.signer in fake_index.get(record.package, ())
            )
            rates[market] = fakes / len(records)
        return rates


def _common_names(units: Sequence[AppUnit], threshold: int = 8) -> Set[str]:
    """Names shared by many unrelated packages are generic (Flashlight,
    Calculator, ...), not masquerade targets."""
    counts: Counter = Counter()
    for unit in units:
        counts[unit.app_name] += 1
    return {name for name, count in counts.items() if count >= threshold}


def detect_fakes(units: Sequence[AppUnit]) -> FakeAppAnalysis:
    clusters: Dict[str, List[AppUnit]] = {}
    for unit in units:
        clusters.setdefault(unit.app_name, []).append(unit)
    common = _common_names(units)

    fake_units: Set[UnitKey] = set()
    official_of: Dict[UnitKey, UnitKey] = {}
    for name, members in clusters.items():
        packages = {u.package for u in members}
        if len(packages) < 2 or len(packages) >= MAX_CLUSTER_SIZE:
            continue
        if name in common:
            continue
        officials = [
            u for u in members
            if (u.max_downloads or 0) >= OFFICIAL_MIN_DOWNLOADS
        ]
        if not officials:
            continue
        official = max(officials, key=lambda u: u.max_downloads or 0)
        for unit in members:
            if unit.package == official.package:
                continue
            if unit.signer is not None and unit.signer == official.signer:
                continue  # same developer: multi-platform variants
            downloads = unit.max_downloads
            if downloads is not None and downloads > FAKE_MAX_DOWNLOADS:
                continue
            key = (unit.package, unit.signer)
            fake_units.add(key)
            official_of[key] = (official.package, official.signer)
    return FakeAppAnalysis(fake_units=fake_units, official_of=official_of)


def name_cluster_sizes(units: Sequence[AppUnit]) -> List[int]:
    """Figure 8(b): sizes of same-name clusters (distinct packages)."""
    clusters: Dict[str, Set[str]] = {}
    for unit in units:
        clusters.setdefault(unit.app_name, set()).add(unit.package)
    return sorted(len(packages) for packages in clusters.values())
