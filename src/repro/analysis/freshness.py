"""Release/update date analysis (Section 4.3, Figure 4).

Markets report each listing's release or last-update date; the paper
compares the cumulative distribution for Chinese markets against Google
Play and measures the share updated within six months of the crawl.
"""

from __future__ import annotations

import datetime
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.crawler.snapshot import CrawlRecord, Snapshot
from repro.markets.profiles import GOOGLE_PLAY
from repro.util.simtime import FIRST_CRAWL_DAY, date_to_day

__all__ = [
    "YEAR_BUCKETS",
    "release_year_distribution",
    "pre2017_share",
    "recent_update_share",
    "figure4_series",
]

#: Figure 4's x-axis: update year buckets.
YEAR_BUCKETS: Sequence[str] = (
    "<2012", "2012", "2013", "2014", "2015", "2016", "2017",
)

_YEAR_STARTS: Tuple[int, ...] = tuple(
    date_to_day(datetime.date(year, 1, 1)) for year in range(2012, 2018)
)


def _bucket(update_day: int) -> int:
    for i, start in enumerate(_YEAR_STARTS):
        if update_day < start:
            return i
    return len(YEAR_BUCKETS) - 1


def release_year_distribution(records: Iterable[CrawlRecord]) -> List[float]:
    counts = [0] * len(YEAR_BUCKETS)
    total = 0
    for record in records:
        counts[_bucket(record.updated_day)] += 1
        total += 1
    if total == 0:
        return [0.0] * len(YEAR_BUCKETS)
    return [c / total for c in counts]


def pre2017_share(records: Iterable[CrawlRecord]) -> float:
    """Share of listings last updated before 2017.

    Section 4.3: ~90% for Chinese markets versus 66% for Google Play.
    """
    boundary = date_to_day(datetime.date(2017, 1, 1))
    total = 0
    old = 0
    for record in records:
        total += 1
        if record.updated_day < boundary:
            old += 1
    return old / total if total else 0.0


def recent_update_share(records: Iterable[CrawlRecord], months: int = 6) -> float:
    """Share updated within ``months`` months before the first crawl.

    Section 4.3: ~5% for Chinese stores versus >23% for Google Play.
    """
    boundary = FIRST_CRAWL_DAY - months * 30
    total = 0
    recent = 0
    for record in records:
        total += 1
        if record.updated_day >= boundary:
            recent += 1
    return recent / total if total else 0.0


def figure4_series(snapshot: Snapshot) -> Dict[str, object]:
    """Figure 4: year distribution, Chinese aggregate vs Google Play."""
    gp_records = snapshot.in_market(GOOGLE_PLAY)
    cn_records = [
        r for m in snapshot.markets() if m != GOOGLE_PLAY
        for r in snapshot.in_market(m)
    ]
    return {
        "buckets": list(YEAR_BUCKETS),
        "google_play": release_year_distribution(gp_records),
        "chinese": release_year_distribution(cn_records),
        "google_play_pre2017": pre2017_share(gp_records),
        "chinese_pre2017": pre2017_share(cn_records),
        "google_play_recent6mo": recent_update_share(gp_records),
        "chinese_recent6mo": recent_update_share(cn_records),
    }
