"""App identity: MD5 versus (package, version, signature) (Section 5.3).

Two APKs of the same app version from different stores often differ in
MD5 while being functionally identical — store channel files (e.g.
``META-INF/kgchannel``) and store-forced repacking (360 Jiagubao) change
the archive bytes.  This module quantifies those cases and validates the
paper's conclusion: (package name, version code, developer signature) is
a sufficient identity key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.crawler.snapshot import Snapshot

__all__ = ["IdentityStudy", "study_identity"]

IdentityKey = Tuple[str, int, str]  # (package, version_code, signer)


@dataclass
class IdentityStudy:
    """Counters for the Section 5.3 comparison."""

    identity_groups: int  # (package, version, signer) groups seen in >1 store
    md5_divergent_groups: int  # ... whose members do not share one MD5
    md5_divergent_apps: int  # record count inside divergent groups
    channel_only_groups: int  # divergence explained by META-INF channel files
    packer_groups: int  # divergence explained by store-forced packing
    examples: List[Dict[str, object]]

    @property
    def divergence_share(self) -> float:
        if self.identity_groups == 0:
            return 0.0
        return self.md5_divergent_groups / self.identity_groups

    @property
    def explained_share(self) -> float:
        """Share of divergent groups fully explained by channel files or
        packing — the paper's conclusion that the identity key is sound."""
        if self.md5_divergent_groups == 0:
            return 1.0
        return (
            self.channel_only_groups + self.packer_groups
        ) / self.md5_divergent_groups


def _dex_fingerprint(apk) -> Tuple:
    """Fingerprint of executable content only (feature digests), ignoring
    package names (renamed by packers) and META-INF entries."""
    return tuple(sorted(pkg.feature_digest for pkg in apk.packages))


def study_identity(snapshot: Snapshot, max_examples: int = 10) -> IdentityStudy:
    groups: Dict[IdentityKey, List] = {}
    for record in snapshot:
        if record.apk is None:
            continue
        key = (
            record.package,
            record.apk.manifest.version_code,
            record.apk.signer_fingerprint,
        )
        groups.setdefault(key, []).append(record)

    identity_groups = 0
    divergent = 0
    divergent_apps = 0
    channel_only = 0
    packer = 0
    examples: List[Dict[str, object]] = []

    for key, records in groups.items():
        if len(records) < 2:
            continue
        identity_groups += 1
        md5s = {r.apk.md5 for r in records}
        if len(md5s) == 1:
            continue
        divergent += 1
        divergent_apps += len(records)

        packed = {r.apk.obfuscated_by for r in records}
        if len(packed) > 1 or (packed and next(iter(packed)) is not None):
            packer += 1
            kind = "store packing"
        else:
            dex = {_dex_fingerprint(r.apk) for r in records}
            if len(dex) == 1:
                channel_only += 1
                kind = "channel file"
            else:
                kind = "unexplained"
        if len(examples) < max_examples:
            examples.append(
                {
                    "package": key[0],
                    "version_code": key[1],
                    "markets": sorted(r.market_id for r in records),
                    "md5_count": len(md5s),
                    "kind": kind,
                }
            )

    return IdentityStudy(
        identity_groups=identity_groups,
        md5_divergent_groups=divergent,
        md5_divergent_apps=divergent_apps,
        channel_only_groups=channel_only,
        packer_groups=packer,
        examples=examples,
    )
