"""Third-party library detection (Section 4.4, Figure 5, Table 2).

Reimplements the clustering approach of LibRadar on the crawled corpus:
a code package whose feature digest recurs across enough *distinct apps
by distinct developers* is third-party code, not first-party code.  The
feature digest ignores package names entirely, which is what makes the
approach obfuscation-resilient — 360-packed apps cluster with their
unpacked siblings, and name resolution recovers the unobfuscated
identity from markets that serve unpacked builds.

The paper then manually labeled the top clusters using AppBrain,
PrivacyGrade and the Common Library lists; our equivalent knowledge base
is the *public* name/category information of known SDKs (sourced from
the catalog's public attributes — never its usage targets or any
per-world state).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.corpus import AppUnit
from repro.analysis.engine import INLINE_ENGINE, AnalysisEngine
from repro.markets.profiles import GOOGLE_PLAY

__all__ = [
    "DetectedLibrary",
    "LibraryDetection",
    "LibraryDetector",
    "known_library_categories",
    "extract_package_digests",
    "AD_CATEGORY",
    "LIBFEATURES_VERSION",
]

AD_CATEGORY = "Advertisement"
UNKNOWN_CATEGORY = "Unknown"

#: Artifact-cache version of the per-APK package-digest extraction.
#: Bump when the digest definition or the extraction output changes.
LIBFEATURES_VERSION = "1"


def extract_package_digests(apk) -> List[Tuple[str, int]]:
    """Per-APK (code-package name, feature digest) pairs.

    A pure function of the APK bytes — this is the per-APK half of
    LibRadar-style detection, and what the artifact cache stores under
    the ``libfeatures`` analyzer.  The corpus-level clustering that
    turns digests into library identities stays in :meth:`fit`.
    """
    return [(pkg.name, pkg.feature_digest) for pkg in apk.packages]

#: Obfuscated package names produced by packers (e.g. 360 Jiagubao).
_OBFUSCATED_RE = re.compile(r"^o\.[0-9a-f]{6,}$")


def known_library_categories() -> Dict[str, str]:
    """Public SDK package -> category knowledge base.

    Mirrors the paper's use of AppBrain / PrivacyGrade / Common Library
    classifications.  Only public identity data (package name, declared
    purpose) is read; usage targets never leave the ecosystem.
    """
    from repro.ecosystem.libraries import default_catalog

    table = {lib.package: lib.category for lib in default_catalog()}
    # Known packer stubs are classified as development tooling.
    table["com.qihoo.util"] = "Development"
    return table


@dataclass
class DetectedLibrary:
    """One detected library: an identity with one digest per version."""

    identity: str
    digests: FrozenSet[int]
    app_count: int
    category: str

    @property
    def version_count(self) -> int:
        return len(self.digests)

    @property
    def is_ad(self) -> bool:
        return AD_CATEGORY in self.category


@dataclass
class LibraryDetection:
    """Result of fitting the detector on a corpus."""

    libraries: List[DetectedLibrary]
    digest_identity: Dict[int, str]
    unit_libraries: Dict[Tuple[str, Optional[str]], FrozenSet[str]]
    category_of: Dict[str, str]

    @property
    def library_digests(self) -> Set[int]:
        return set(self.digest_identity)

    def libraries_of(self, unit: AppUnit) -> FrozenSet[str]:
        """Identities of the libraries embedded in one app unit."""
        return self.unit_libraries.get((unit.package, unit.signer), frozenset())

    def is_ad_identity(self, identity: str) -> bool:
        return AD_CATEGORY in self.category_of.get(identity, UNKNOWN_CATEGORY)

    def usage_table(self, units: Iterable[AppUnit], markets: Optional[Set[str]] = None):
        """Per-library usage share among (APK-backed) units.

        ``markets=None`` counts every unit; otherwise only units listed
        in at least one of the given markets (e.g. Table 2's Google Play
        column vs its all-Chinese-markets column).
        """
        counter: Counter = Counter()
        total = 0
        for unit in units:
            if unit.apk is None:
                continue
            if markets is not None and not (set(unit.markets) & markets):
                continue
            total += 1
            for identity in self.libraries_of(unit):
                counter[identity] += 1
        if total == 0:
            return []
        return [
            (identity, count / total, self.category_of.get(identity, UNKNOWN_CATEGORY))
            for identity, count in counter.most_common()
        ]


class LibraryDetector:
    """Clustering-based detector over code-package feature digests."""

    def __init__(self, min_apps: int = 3, min_signers: int = 2):
        if min_apps < 2 or min_signers < 2:
            raise ValueError("thresholds must be at least 2")
        self._min_apps = min_apps
        self._min_signers = min_signers

    def fit(
        self,
        units: Iterable[AppUnit],
        engine: Optional[AnalysisEngine] = None,
    ) -> LibraryDetection:
        engine = engine or INLINE_ENGINE
        units = [u for u in units if u.apk is not None]

        # Per-APK digest extraction is pure in the APK bytes: it fans
        # out across the engine's workers and lands in the artifact
        # cache, so warm reruns skip straight to the clustering below.
        digest_lists = engine.map_units_cached(
            "libfeatures",
            LIBFEATURES_VERSION,
            units,
            compute=extract_package_digests,
            encode=lambda pairs: [[name, digest] for name, digest in pairs],
            decode=lambda payload: [
                (str(name), int(digest)) for name, digest in payload
            ],
            stage="analysis.libraries.extract",
        )

        app_packages: Dict[int, Set[str]] = {}
        signers: Dict[int, Set[str]] = {}
        names: Dict[int, Counter] = {}
        for unit, pairs in zip(units, digest_lists):
            for name, digest in pairs:
                app_packages.setdefault(digest, set()).add(unit.package)
                if unit.signer is not None:
                    bucket = signers.setdefault(digest, set())
                    if len(bucket) < 16:
                        bucket.add(unit.signer)
                names.setdefault(digest, Counter())[name] += 1

        digest_identity: Dict[int, str] = {}
        for digest, apps in app_packages.items():
            if len(apps) < self._min_apps:
                continue
            if len(signers.get(digest, ())) < self._min_signers:
                continue
            digest_identity[digest] = self._resolve_identity(digest, names[digest])

        categories = known_library_categories()

        def classify(identity: str) -> str:
            best = UNKNOWN_CATEGORY
            best_len = -1
            for prefix, category in categories.items():
                if (identity == prefix or identity.startswith(prefix + ".")) and len(
                    prefix
                ) > best_len:
                    best, best_len = category, len(prefix)
            return best

        grouped: Dict[str, Set[int]] = {}
        for digest, identity in digest_identity.items():
            grouped.setdefault(identity, set()).add(digest)

        unit_libraries: Dict[Tuple[str, Optional[str]], FrozenSet[str]] = {}
        identity_apps: Dict[str, Set[str]] = {}
        for unit, pairs in zip(units, digest_lists):
            found: Set[str] = set()
            for _name, digest in pairs:
                identity = digest_identity.get(digest)
                if identity is None or identity == unit.package:
                    continue
                found.add(identity)
                identity_apps.setdefault(identity, set()).add(unit.package)
            unit_libraries[(unit.package, unit.signer)] = frozenset(found)

        category_of = {identity: classify(identity) for identity in grouped}
        libraries = [
            DetectedLibrary(
                identity=identity,
                digests=frozenset(digests),
                app_count=len(identity_apps.get(identity, ())),
                category=category_of[identity],
            )
            for identity, digests in sorted(grouped.items())
        ]
        libraries.sort(key=lambda lib: lib.app_count, reverse=True)
        return LibraryDetection(
            libraries=libraries,
            digest_identity=digest_identity,
            unit_libraries=unit_libraries,
            category_of=category_of,
        )

    @staticmethod
    def _resolve_identity(digest: int, name_counts: Counter) -> str:
        """Dominant unobfuscated name; packed-only clusters get a synthetic id."""
        for name, _ in name_counts.most_common():
            if not _OBFUSCATED_RE.match(name):
                return name
        return f"obfuscated.{digest:016x}"


# ---------------------------------------------------------------------------
# Figure 5 statistics
# ---------------------------------------------------------------------------


def market_tpl_stats(
    units: Iterable[AppUnit], detection: LibraryDetection
) -> Dict[str, Dict[str, float]]:
    """Per-market TPL presence / average count / ad-lib presence.

    Returns ``{market: {presence, avg_count, ad_presence, avg_ad_count}}``
    over APK-backed units listed in each market (Figure 5a/5b).
    """
    acc: Dict[str, List[Tuple[int, int]]] = {}
    for unit in units:
        if unit.apk is None:
            continue
        libs = detection.libraries_of(unit)
        n_libs = len(libs)
        n_ads = sum(1 for identity in libs if detection.is_ad_identity(identity))
        for market in unit.markets:
            acc.setdefault(market, []).append((n_libs, n_ads))
    stats: Dict[str, Dict[str, float]] = {}
    for market, values in acc.items():
        n = len(values)
        stats[market] = {
            "presence": sum(1 for libs, _ in values if libs > 0) / n,
            "avg_count": sum(libs for libs, _ in values) / n,
            "ad_presence": sum(1 for _, ads in values if ads > 0) / n,
            "avg_ad_count": sum(ads for _, ads in values) / n,
        }
    return stats


def top_libraries_table(
    units: List[AppUnit], detection: LibraryDetection, top_n: int = 10
):
    """Table 2: top libraries for Google Play vs the Chinese markets."""
    from repro.markets.profiles import CHINESE_MARKET_IDS

    gp = detection.usage_table(units, markets={GOOGLE_PLAY})[:top_n]
    cn = detection.usage_table(units, markets=set(CHINESE_MARKET_IDS))[:top_n]
    return {"google_play": gp, "chinese": cn}
