"""Longitudinal comparison of two crawl snapshots (Section 7 support).

The paper's second campaign (April 2018) re-crawled the stores to see
what changed over eight months.  Given two snapshots this module
measures catalog churn per market — listings removed, listings that
survived, version upgrades among survivors — and joins removals against
a flagged set to separate security cleanup from ordinary churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

from repro.crawler.snapshot import Snapshot

__all__ = ["MarketChurn", "compare_snapshots"]


@dataclass
class MarketChurn:
    """Catalog changes in one market between two campaigns."""

    market_id: str
    first_size: int
    second_size: int
    removed: int  # in first, gone in second
    added: int  # in second, absent from first
    survivors: int
    upgraded: int  # survivors whose version_code increased
    flagged_removed: int  # removed listings that were in the flagged set
    flagged_total: int  # flagged listings present at the first crawl

    @property
    def removal_share(self) -> float:
        return self.removed / self.first_size if self.first_size else 0.0

    @property
    def flagged_removal_share(self) -> float:
        if not self.flagged_total:
            return 0.0
        return self.flagged_removed / self.flagged_total

    @property
    def upgrade_share(self) -> float:
        return self.upgraded / self.survivors if self.survivors else 0.0


def compare_snapshots(
    first: Snapshot,
    second: Snapshot,
    flagged: Optional[Mapping[str, Set[str]]] = None,
) -> Dict[str, MarketChurn]:
    """Per-market churn between two campaigns.

    Markets absent from the second snapshot entirely (dead web
    interfaces) are skipped — there is nothing to compare against.
    """
    flagged = flagged or {}
    churn: Dict[str, MarketChurn] = {}
    for market_id in first.markets():
        second_records = {
            r.package: r for r in second.in_market(market_id)
        }
        if not second_records and not second.market_size(market_id):
            continue
        first_records = {r.package: r for r in first.in_market(market_id)}
        removed = set(first_records) - set(second_records)
        added = set(second_records) - set(first_records)
        survivors = set(first_records) & set(second_records)
        upgraded = sum(
            1
            for package in survivors
            if second_records[package].version_code
            > first_records[package].version_code
        )
        market_flagged = flagged.get(market_id, set()) & set(first_records)
        churn[market_id] = MarketChurn(
            market_id=market_id,
            first_size=len(first_records),
            second_size=len(second_records),
            removed=len(removed),
            added=len(added),
            survivors=len(survivors),
            upgraded=upgraded,
            flagged_removed=len(removed & market_flagged),
            flagged_total=len(market_flagged),
        )
    return churn
