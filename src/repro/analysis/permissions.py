"""Over-privilege analysis (Section 6.3, Figure 11).

PScout-style: the platform's API->permission specification tells us
which permissions an app's code can actually exercise; anything
requested in the manifest beyond that set is an unused ("over-
privileged") permission.  As in the paper, the static view covers the
whole DEX — first-party code, libraries, and anything else shipped in
the APK.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.corpus import AppUnit
from repro.analysis.engine import INLINE_ENGINE, AnalysisEngine
from repro.android.permissions import PermissionSpec, platform_spec
from repro.crawler.snapshot import Snapshot
from repro.markets.profiles import GOOGLE_PLAY
from repro.util.stats import BoxStats

__all__ = [
    "OverprivilegeResult",
    "analyze_overprivilege",
    "market_overprivilege",
    "figure11_series",
    "dangerous_request_stats",
    "OVERPRIVILEGE_VERSION",
]

#: Artifact-cache version of the per-APK unused-permission extraction
#: against the *platform* spec.  Bump when the analysis rule or the
#: platform API->permission map changes.
OVERPRIVILEGE_VERSION = "1"

#: Figure 11 histogram buckets: 0..9 and ">9".
COUNT_BUCKETS = tuple(str(i) for i in range(10)) + (">9",)


@dataclass
class OverprivilegeResult:
    """Per-unit over-privilege measurements."""

    unused: Dict[Tuple[str, Optional[str]], FrozenSet[str]]
    spec: PermissionSpec

    def unused_of(self, unit: AppUnit) -> Optional[FrozenSet[str]]:
        return self.unused.get((unit.package, unit.signer))

    def top_unused_dangerous(self, top_n: int = 10) -> List[Tuple[str, float]]:
        """Most common unused *dangerous* permissions, as the share of
        over-privileged apps requesting each (Section 6.3's list)."""
        over_units = [perms for perms in self.unused.values() if perms]
        if not over_units:
            return []
        counter: Counter = Counter()
        for perms in over_units:
            for perm in perms:
                if self.spec.is_dangerous(perm):
                    counter[perm] += 1
        return [
            (perm, count / len(over_units))
            for perm, count in counter.most_common(top_n)
        ]


def analyze_overprivilege(
    units: Sequence[AppUnit],
    spec: Optional[PermissionSpec] = None,
    engine: Optional[AnalysisEngine] = None,
) -> OverprivilegeResult:
    """Compute unused permissions for every APK-backed unit.

    Per-APK extraction fans out across the engine's workers; with the
    default platform spec the result is a pure function of the APK, so
    it is also persisted in the artifact cache.  A caller-supplied spec
    bypasses the cache (its results would not be keyed by the spec).
    """
    custom_spec = spec is not None
    spec = spec or platform_spec()
    engine = engine or INLINE_ENGINE
    if custom_spec and engine.cache is not None:
        engine = AnalysisEngine(workers=engine.workers, obs=engine.obs)

    def compute(apk) -> FrozenSet[str]:
        requested = set(apk.manifest.permissions)
        used = spec.permissions_for(apk.merged_features())
        return frozenset(requested - used)

    unused_list = engine.map_units_cached(
        "overprivilege",
        OVERPRIVILEGE_VERSION,
        units,
        compute=compute,
        encode=lambda perms: sorted(perms),
        decode=lambda payload: frozenset(str(p) for p in payload),
        stage="analysis.overprivilege.map",
    )
    unused: Dict[Tuple[str, Optional[str]], FrozenSet[str]] = {}
    for unit, perms in zip(units, unused_list):
        if perms is not None:
            unused[(unit.package, unit.signer)] = perms
    return OverprivilegeResult(unused=unused, spec=spec)


def market_overprivilege(
    snapshot: Snapshot, units: Sequence[AppUnit], result: OverprivilegeResult
) -> Dict[str, Dict[str, object]]:
    """Per-market over-privilege statistics.

    Returns ``{market: {share, histogram}}`` where ``share`` is the
    fraction of apps requesting at least one unused permission and
    ``histogram`` the Figure 11 bucket shares.
    """
    per_market_counts: Dict[str, List[int]] = {}
    for unit in units:
        perms = result.unused_of(unit)
        if perms is None:
            continue
        for market in unit.markets:
            per_market_counts.setdefault(market, []).append(len(perms))
    stats: Dict[str, Dict[str, object]] = {}
    for market in snapshot.markets():
        counts = per_market_counts.get(market, [])
        if not counts:
            stats[market] = {
                "share": 0.0,
                "histogram": [0.0] * len(COUNT_BUCKETS),
            }
            continue
        histogram = [0] * len(COUNT_BUCKETS)
        for count in counts:
            histogram[min(count, len(COUNT_BUCKETS) - 1)] += 1
        stats[market] = {
            "share": sum(1 for c in counts if c > 0) / len(counts),
            "histogram": [h / len(counts) for h in histogram],
        }
    return stats


def dangerous_request_stats(
    units: Sequence[AppUnit], spec: Optional[PermissionSpec] = None
) -> Dict[str, float]:
    """Average number of *dangerous* permissions requested, per market.

    Section 6.3: apps in Chinese markets tend to request more sensitive
    permissions than Google Play apps.
    """
    spec = spec or platform_spec()
    sums: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    for unit in units:
        if unit.apk is None:
            continue
        dangerous = sum(
            1 for perm in unit.apk.manifest.permissions
            if spec.is_dangerous(perm)
        )
        for market in unit.markets:
            sums[market] = sums.get(market, 0) + dangerous
            counts[market] = counts.get(market, 0) + 1
    return {
        market: sums[market] / counts[market]
        for market in sums
        if counts[market]
    }


def figure11_series(
    snapshot: Snapshot, units: Sequence[AppUnit], result: OverprivilegeResult
) -> Dict[str, object]:
    """Figure 11: Google Play histogram vs per-bucket Chinese box stats."""
    stats = market_overprivilege(snapshot, units, result)
    gp = stats.get(GOOGLE_PLAY, {"histogram": [0.0] * len(COUNT_BUCKETS)})
    chinese = [v["histogram"] for m, v in stats.items() if m != GOOGLE_PLAY]
    boxes = []
    for i in range(len(COUNT_BUCKETS)):
        values = [row[i] for row in chinese] or [0.0]
        boxes.append(BoxStats(values).as_dict())
    return {
        "buckets": list(COUNT_BUCKETS),
        "google_play": gp["histogram"],
        "chinese_box": boxes,
        "gp_share": stats.get(GOOGLE_PLAY, {}).get("share", 0.0),
        "chinese_share_mean": (
            sum(v["share"] for m, v in stats.items() if m != GOOGLE_PLAY)
            / max(1, len(stats) - 1)
        ),
        "top_unused_dangerous": result.top_unused_dangerous(),
    }
