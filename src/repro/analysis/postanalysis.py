"""Post-analysis: malware removal between crawls (Section 7, Table 6).

Joins the first crawl's flagged apps against the second campaign's
presence checks: what share of each market's malware was removed, how
many of its flagged apps were also removed from Google Play (GPRM), and
how many Google-Play-removed malicious apps still survive in Chinese
stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.analysis.corpus import AppUnit
from repro.analysis.malware import DEFAULT_MALWARE_THRESHOLD, MalwareScan
from repro.crawler.snapshot import Snapshot
from repro.markets.profiles import GOOGLE_PLAY

__all__ = ["RemovalReport", "flagged_packages_by_market", "removal_report"]


def flagged_packages_by_market(
    snapshot: Snapshot,
    units: Sequence[AppUnit],
    scan: MalwareScan,
    threshold: int = DEFAULT_MALWARE_THRESHOLD,
) -> Dict[str, Set[str]]:
    """Per market: the packages flagged at or above the AV-rank threshold.

    Flagging is signer-aware: a market hosting a *clean* app whose
    package name is shared by a flagged clone elsewhere is not charged
    with hosting that malware.
    """
    flagged_units = scan.flagged_units(threshold)
    flagged_signers: Dict[str, Set[Optional[str]]] = {}
    for package, signer in flagged_units:
        flagged_signers.setdefault(package, set()).add(signer)
    result: Dict[str, Set[str]] = {}
    for market in snapshot.markets():
        result[market] = {
            r.package for r in snapshot.in_market(market)
            if r.signer in flagged_signers.get(r.package, ())
        }
    return result


@dataclass
class RemovalReport:
    """Table 6's rows."""

    removal_share: Dict[str, float]  # market -> share of flagged removed
    gprm_overlap: Dict[str, int]  # market -> flagged apps also removed from GP
    gprm_removed_share: Dict[str, float]  # ... share of those also removed here
    gprm_survivor_share: float  # GP-removed malware still hosted somewhere
    excluded_markets: List[str]  # markets unreachable at the second crawl


def removal_report(
    flagged: Mapping[str, Set[str]],
    presence: Mapping[str, Mapping[str, bool]],
) -> RemovalReport:
    """Compute Table 6 from flagged sets and second-crawl presence.

    ``presence[market][package]`` is True when the package was still
    listed at the second crawl.  Markets absent from ``presence`` (dead
    web interfaces: HiApk, OPPO) are excluded, as in the paper.
    """
    removal_share: Dict[str, float] = {}
    excluded: List[str] = []
    for market, packages in flagged.items():
        checks = presence.get(market)
        if checks is None:
            excluded.append(market)
            continue
        if not packages:
            removal_share[market] = 0.0
            continue
        removed = sum(1 for p in packages if not checks.get(p, False))
        removal_share[market] = removed / len(packages)

    gp_flagged = flagged.get(GOOGLE_PLAY, set())
    gp_checks = presence.get(GOOGLE_PLAY, {})
    gprm = {p for p in gp_flagged if not gp_checks.get(p, False)}

    gprm_overlap: Dict[str, int] = {}
    gprm_removed_share: Dict[str, float] = {}
    survivors: Set[str] = set()
    for market, packages in flagged.items():
        if market == GOOGLE_PLAY or market not in presence:
            continue
        overlap = packages & gprm
        gprm_overlap[market] = len(overlap)
        if overlap:
            removed = sum(
                1 for p in overlap if not presence[market].get(p, False)
            )
            gprm_removed_share[market] = removed / len(overlap)
            survivors.update(
                p for p in overlap if presence[market].get(p, False)
            )
        else:
            gprm_removed_share[market] = 0.0

    survivor_share = len(survivors) / len(gprm) if gprm else 0.0
    return RemovalReport(
        removal_share=removal_share,
        gprm_overlap=gprm_overlap,
        gprm_removed_share=gprm_removed_share,
        gprm_survivor_share=survivor_share,
        excluded_markets=sorted(excluded),
    )
