"""Publishing dynamics (Section 5, Figures 7-9, Table 1 developer stats).

Developers are identified by the signing certificate extracted from
their APKs (ApkSigner, Section 5.1); apps are identified by package
name.  The analyses here cover developer market coverage, single- vs
multi-store apps, simultaneous multi-version packages, and outdated
listings.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.analysis.corpus import AppUnit
from repro.crawler.snapshot import Snapshot
from repro.markets.profiles import GOOGLE_PLAY

__all__ = [
    "developer_markets",
    "developer_market_cdf_counts",
    "developer_stats",
    "developer_name_variants",
    "market_developer_counts",
    "single_store_shares",
    "gp_overlap_share",
    "versions_per_package",
    "highest_version_shares",
]


def developer_markets(units: Sequence[AppUnit]) -> Dict[str, Set[str]]:
    """Map developer signature -> set of markets they publish in."""
    coverage: Dict[str, Set[str]] = {}
    for unit in units:
        if unit.signer is None:
            continue
        coverage.setdefault(unit.signer, set()).update(unit.markets)
    return coverage


def developer_market_cdf_counts(units: Sequence[AppUnit]) -> List[int]:
    """Figure 7's data: per developer, the number of markets targeted."""
    return sorted(len(markets) for markets in developer_markets(units).values())


def developer_stats(units: Sequence[AppUnit]) -> Dict[str, float]:
    """Section 5.1 headline shares.

    * ``gp_share``: developers publishing in Google Play;
    * ``chinese_only_share``: developers publishing only in Chinese markets;
    * ``gp_exclusive_share``: among Google Play developers, those with no
      Chinese-market presence (the paper's 57%);
    * ``single_chinese_store_share``: developers exclusive to exactly one
      Chinese store (the paper's >10%);
    * ``all_market_devs``: developers present in all 17 markets.
    """
    coverage = developer_markets(units)
    if not coverage:
        return {}
    n = len(coverage)
    gp_devs = [m for m in coverage.values() if GOOGLE_PLAY in m]
    chinese_only = [m for m in coverage.values() if GOOGLE_PLAY not in m]
    gp_exclusive = [m for m in gp_devs if len(m) == 1]
    single_cn = [m for m in chinese_only if len(m) == 1]
    all_17 = [m for m in coverage.values() if len(m) >= 17]
    return {
        "developers": float(n),
        "gp_share": len(gp_devs) / n,
        "chinese_only_share": len(chinese_only) / n,
        "gp_exclusive_share": len(gp_exclusive) / max(1, len(gp_devs)),
        "single_chinese_store_share": len(single_cn) / n,
        "all_market_devs": float(len(all_17)),
    }


def developer_name_variants(units: Sequence[AppUnit]) -> Dict[str, float]:
    """Signature-vs-display-name consistency (the paper's footnote 11).

    One signing key may appear under several display names across markets
    (e.g. a Chinese name in one store, an English one in another).
    Returns the number of signers observed, the share with more than one
    display name, and the maximum variants seen for one signer.
    """
    names_of: Dict[str, Set[str]] = {}
    for unit in units:
        if unit.signer is None:
            continue
        bucket = names_of.setdefault(unit.signer, set())
        for record in unit.records:
            bucket.add(record.developer_name)
    if not names_of:
        return {"signers": 0.0, "multi_name_share": 0.0, "max_variants": 0.0}
    multi = sum(1 for names in names_of.values() if len(names) > 1)
    return {
        "signers": float(len(names_of)),
        "multi_name_share": multi / len(names_of),
        "max_variants": float(max(len(names) for names in names_of.values())),
    }


def market_developer_counts(units: Sequence[AppUnit]) -> Dict[str, Dict[str, float]]:
    """Table 1's #Developers and %Unique Developers per market."""
    devs_in: Dict[str, Set[str]] = {}
    coverage = developer_markets(units)
    for signer, markets in coverage.items():
        for market in markets:
            devs_in.setdefault(market, set()).add(signer)
    stats: Dict[str, Dict[str, float]] = {}
    for market, devs in devs_in.items():
        unique = sum(1 for d in devs if len(coverage[d]) == 1)
        stats[market] = {
            "developers": float(len(devs)),
            "unique_share": unique / len(devs) if devs else 0.0,
        }
    return stats


def single_store_shares(snapshot: Snapshot) -> Dict[str, float]:
    """Section 5.2: per market, the share of its apps found nowhere else."""
    market_count: Dict[str, int] = {}
    for package in snapshot.packages():
        market_count[package] = len(snapshot.markets_of(package))
    shares: Dict[str, float] = {}
    for market in snapshot.markets():
        records = snapshot.in_market(market)
        if not records:
            shares[market] = 0.0
            continue
        single = sum(1 for r in records if market_count[r.package] == 1)
        shares[market] = single / len(records)
    return shares


def gp_overlap_share(snapshot: Snapshot, market_id: str) -> float:
    """Share of a Chinese market's apps also present in Google Play
    (Section 5.2: between 20% and 30%)."""
    records = snapshot.in_market(market_id)
    if not records:
        return 0.0
    gp_packages = {r.package for r in snapshot.in_market(GOOGLE_PLAY)}
    return sum(1 for r in records if r.package in gp_packages) / len(records)


def versions_per_package(snapshot: Snapshot) -> List[int]:
    """Figure 8(a): simultaneous distinct versions per package across stores."""
    counts: List[int] = []
    for package in snapshot.packages():
        versions = {r.version_code for r in snapshot.for_package(package)}
        counts.append(len(versions))
    return sorted(counts)


def highest_version_shares(snapshot: Snapshot) -> Dict[str, float]:
    """Figure 9: per market, the share of its multi-store apps listed at
    the globally-highest version number.

    Single-store apps are excluded — they are trivially up to date.
    """
    best_version: Dict[str, int] = {}
    market_counts: Dict[str, int] = {}
    for package in snapshot.packages():
        records = snapshot.for_package(package)
        market_counts[package] = len({r.market_id for r in records})
        best_version[package] = max(r.version_code for r in records)
    shares: Dict[str, float] = {}
    for market in snapshot.markets():
        multi = [
            r for r in snapshot.in_market(market) if market_counts[r.package] > 1
        ]
        if not multi:
            shares[market] = 1.0
            continue
        current = sum(
            1 for r in multi if r.version_code >= best_version[r.package]
        )
        shares[market] = current / len(multi)
    return shares
