"""Multi-dimensional market comparison (Section 8, Figure 13).

Normalizes several per-market quality metrics to [0, 100] (100 = best)
and produces the radar series for the paper's five showcase markets:
Google Play, Tencent Myapp, PC Online, Huawei, and Lenovo MM.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

__all__ = ["RADAR_MARKETS", "RADAR_DIMENSIONS", "radar_series"]

RADAR_MARKETS = ("google_play", "tencent", "pconline", "huawei", "lenovo")

#: dimension name -> whether a higher raw value is better.
RADAR_DIMENSIONS = {
    "malware_resistance": False,  # raw: malware share
    "fake_resistance": False,  # raw: fake share
    "clone_resistance": False,  # raw: code-clone share
    "app_ratings": True,  # raw: mean rating
    "catalog_freshness": True,  # raw: highest-version share
    "malware_removal": True,  # raw: removal share
}


def _normalize(values: Dict[str, float], higher_is_better: bool) -> Dict[str, float]:
    present = {m: v for m, v in values.items() if v is not None}
    if not present:
        return {m: 0.0 for m in values}
    lo, hi = min(present.values()), max(present.values())
    span = hi - lo
    out: Dict[str, float] = {}
    for market, value in values.items():
        if value is None:
            out[market] = 0.0
            continue
        score = 0.5 if span == 0 else (value - lo) / span
        if not higher_is_better:
            score = 1.0 - score
        out[market] = round(100.0 * score, 1)
    return out


def radar_series(
    raw_metrics: Mapping[str, Mapping[str, Optional[float]]],
    markets: Sequence[str] = RADAR_MARKETS,
) -> Dict[str, Dict[str, float]]:
    """Build Figure 13's series.

    ``raw_metrics[dimension][market]`` holds raw values; output is
    ``{market: {dimension: score_0_100}}``.
    """
    for dimension in raw_metrics:
        if dimension not in RADAR_DIMENSIONS:
            raise KeyError(f"unknown radar dimension {dimension!r}")
    series: Dict[str, Dict[str, float]] = {m: {} for m in markets}
    for dimension, per_market in raw_metrics.items():
        values = {m: per_market.get(m) for m in markets}
        normalized = _normalize(values, RADAR_DIMENSIONS[dimension])
        for market in markets:
            series[market][dimension] = normalized[market]
    return series
