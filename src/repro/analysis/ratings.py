"""App rating analysis (Section 4.5, Figure 6).

Ratings come from market metadata; unrated apps are recorded as 0 (the
paper's convention).  The analysis surfaces the paper's two patterns —
the mass of unrated apps in Chinese stores, and PC Online's suspicious
spike between 2.5 and 3 caused by its default rating of 3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.corpus import normalized_downloads
from repro.crawler.snapshot import Snapshot
from repro.util.stats import cdf_points

__all__ = [
    "rating_cdf",
    "rating_cdfs",
    "unrated_share",
    "high_rating_share",
    "default_rating_spike_share",
    "unrated_low_download_share",
]

_GRID = tuple(np.round(np.arange(0.0, 5.01, 0.25), 2))


def rating_cdf(snapshot: Snapshot, market_id: str) -> Tuple[List[float], List[float]]:
    """Empirical rating CDF on a fixed 0..5 grid."""
    ratings = [r.rating for r in snapshot.in_market(market_id)]
    if not ratings:
        return list(_GRID), [0.0] * len(_GRID)
    xs, cdf = cdf_points(ratings, grid=_GRID)
    return list(map(float, xs)), list(map(float, cdf))


def rating_cdfs(snapshot: Snapshot) -> Dict[str, Tuple[List[float], List[float]]]:
    """Figure 6: per-market rating CDFs."""
    return {m: rating_cdf(snapshot, m) for m in snapshot.markets()}


def unrated_share(snapshot: Snapshot, market_id: str) -> float:
    """Share of listings with no user rating (reported as 0)."""
    records = snapshot.in_market(market_id)
    if not records:
        return 0.0
    return sum(1 for r in records if r.rating == 0.0) / len(records)


def high_rating_share(snapshot: Snapshot, market_id: str, threshold: float = 4.0) -> float:
    """Share of listings rated above ``threshold`` (GP: >50% above 4)."""
    records = snapshot.in_market(market_id)
    if not records:
        return 0.0
    return sum(1 for r in records if r.rating > threshold) / len(records)


def default_rating_spike_share(
    snapshot: Snapshot, market_id: str, low: float = 2.5, high: float = 3.0
) -> float:
    """Share of listings rated in (low, high] — PC Online's default-3
    artifact shows up as a spike here (Pattern #2)."""
    records = snapshot.in_market(market_id)
    if not records:
        return 0.0
    return sum(1 for r in records if low < r.rating <= high) / len(records)


def unrated_low_download_share(snapshot: Snapshot, market_id: str) -> float:
    """Among unrated listings, the share with fewer than 1,000 downloads.

    Section 4.5, Pattern #1: ~90% of unrated apps are low-download apps.
    """
    unrated = [r for r in snapshot.in_market(market_id) if r.rating == 0.0]
    if not unrated:
        return 0.0
    low = 0
    known = 0
    for record in unrated:
        downloads = normalized_downloads(record)
        if downloads is None:
            continue
        known += 1
        if downloads < 1_000:
            low += 1
    return low / known if known else 0.0
