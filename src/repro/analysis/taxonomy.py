"""Category consolidation (Section 4.1, Figure 1).

Every market publishes its own category taxonomy; the paper manually
consolidates them into 22 canonical categories.  The alias table in
:func:`repro.markets.categories.consolidation_table` plays the role of
that manual mapping; unknown or non-descriptive labels map to
``Null/Other`` — which is how 40% of Tencent/360/OPPO/25PP listings end
up there.
"""

from __future__ import annotations

from typing import Dict

from repro.crawler.snapshot import Snapshot
from repro.markets.categories import (
    CANONICAL_CATEGORIES,
    OTHER_CATEGORY,
    consolidation_table,
)

__all__ = [
    "consolidate_label",
    "category_distribution",
    "category_distributions",
    "category_similarity",
    "similarity_to_google_play",
]

_TABLE = None


def consolidate_label(label: str) -> str:
    """Map one market-reported label onto the canonical taxonomy."""
    global _TABLE
    if _TABLE is None:
        _TABLE = consolidation_table()
    return _TABLE.get(label.strip(), OTHER_CATEGORY)


def category_distribution(snapshot: Snapshot, market_id: str) -> Dict[str, float]:
    """Share of a market's listings per canonical category."""
    records = snapshot.in_market(market_id)
    if not records:
        return {c: 0.0 for c in CANONICAL_CATEGORIES}
    counts = {c: 0 for c in CANONICAL_CATEGORIES}
    for record in records:
        counts[consolidate_label(record.category)] += 1
    total = len(records)
    return {c: counts[c] / total for c in CANONICAL_CATEGORIES}


def category_distributions(snapshot: Snapshot) -> Dict[str, Dict[str, float]]:
    """Figure 1's matrix: per-market canonical category shares."""
    return {m: category_distribution(snapshot, m) for m in snapshot.markets()}


def category_similarity(
    a: Dict[str, float], b: Dict[str, float], ignore_other: bool = True
) -> float:
    """Cosine similarity of two category distributions.

    ``ignore_other`` drops the Null/Other bucket first — markets with lax
    metadata (Section 4.1's 40% NULL categories) would otherwise look
    artificially dissimilar for reporting reasons, not catalog reasons.
    """
    import math

    keys = [
        c for c in CANONICAL_CATEGORIES
        if not (ignore_other and c == OTHER_CATEGORY)
    ]
    va = [a.get(c, 0.0) for c in keys]
    vb = [b.get(c, 0.0) for c in keys]
    norm_a = math.sqrt(sum(x * x for x in va))
    norm_b = math.sqrt(sum(x * x for x in vb))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return sum(x * y for x, y in zip(va, vb)) / (norm_a * norm_b)


def similarity_to_google_play(snapshot: Snapshot) -> Dict[str, float]:
    """Per-market category-mix similarity to Google Play.

    Section 4.1: most Chinese stores follow Google Play's distribution
    closely, while vendor stores (Meizu, Huawei, Lenovo) diverge.
    """
    matrix = category_distributions(snapshot)
    reference = matrix.get("google_play")
    if reference is None:
        return {}
    return {
        market: category_similarity(reference, dist)
        for market, dist in matrix.items()
        if market != "google_play"
    }
