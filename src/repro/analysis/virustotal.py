"""Simulated VirusTotal (Section 6.4).

The paper uploads every APK to VirusTotal and aggregates 60+ anti-virus
engines.  The simulation keeps the parts that matter for AV-rank
analysis:

* ~60 engines of varying quality (strong / medium / weak tiers),
* per-engine signature databases over known malware payloads — vendors
  possess the samples, so databases derive from the *pure*
  ``payload_code(family, variant)`` function, not from world state,
* weak-engine-only grayware signatures for aggressive ad SDK builds,
* weak-engine heuristics on 360-Jiagubao-packed apps (the ``jiagu``
  labels of Figure 12) and a tiny generic false-positive rate,
* vendor-specific label formats and family aliases, which is what makes
  AVClass-style label normalization (in :mod:`repro.analysis.malware`)
  a real task.

Everything is hash-deterministic: scanning the same APK always yields
the same report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.apk.archive import ParsedApk
from repro.apk.obfuscation import JiaguObfuscator
from repro.util.rng import stable_hash32

__all__ = ["EngineProfile", "ScanReport", "VirusTotalService", "default_engines"]

#: How many payload variants per family the vendor sample feeds cover.
VARIANTS_PER_FAMILY = 64

_TIER_MULTIPLIER = {"strong": 1.2, "medium": 1.0, "weak": 0.75}

#: Vendor-specific family alias spellings (AVClass must undo these).
_FAMILY_ALIASES: Mapping[str, Tuple[str, ...]] = {
    "kuguo": ("kuguo", "kugou", "kuguopush"),
    "dowgin": ("dowgin", "dowjin"),
    "airpush": ("airpush", "stopsms", "airpushad"),
    "revmob": ("revmob", "revmobads"),
    "youmi": ("youmi", "yomi"),
    "leadbolt": ("leadbolt", "leadbolder"),
    "adwo": ("adwo", "adwoad"),
    "domob": ("domob", "duomob"),
    "smsreg": ("smsreg", "smsregister"),
    "gappusin": ("gappusin", "gapusin"),
    "smspay": ("smspay", "smcharger"),
    "droidkungfu": ("droidkungfu", "kungfu"),
    "basebridge": ("basebridge", "bridge"),
    "ramnit": ("ramnit", "nimnul"),
    "eicar": ("eicar", "eicartest"),
}

_VENDOR_ROOTS = (
    "Aegis", "Bluehat", "Cerberus", "DeepScan", "Everest", "Falconet",
    "Guardia", "Hawkbit", "Ironclad", "Jadefort", "Kitefin", "Lumosec",
    "Mistral", "Nightowl", "Obsidian", "Pangolin", "Quartzav", "Redwall",
    "Sentryx", "Tigershark",
)
_VENDOR_SUFFIXES = ("AV", "Secure", "Shield")


@dataclass(frozen=True)
class EngineProfile:
    """One anti-virus engine."""

    name: str
    tier: str  # "strong" | "medium" | "weak"
    style: str  # "dot" | "slash" | "adware" | "generic"

    def __post_init__(self) -> None:
        if self.tier not in _TIER_MULTIPLIER:
            raise ValueError(f"bad tier {self.tier!r}")


def default_engines(count: int = 60) -> List[EngineProfile]:
    """The default engine roster: 25 strong, 20 medium, the rest weak."""
    engines: List[EngineProfile] = []
    styles = ("dot", "slash", "adware", "generic")
    for i in range(count):
        root = _VENDOR_ROOTS[i % len(_VENDOR_ROOTS)]
        suffix = _VENDOR_SUFFIXES[i // len(_VENDOR_ROOTS) % len(_VENDOR_SUFFIXES)]
        name = f"{root}{suffix}"
        if i < 25:
            tier = "strong"
        elif i < 45:
            tier = "medium"
        else:
            tier = "weak"
        style = styles[i % 3] if tier != "weak" else styles[(i % 4)]
        engines.append(EngineProfile(name=name, tier=tier, style=style))
    return engines


@dataclass
class ScanReport:
    """One APK's scan result."""

    md5: str
    detections: Dict[str, str]  # engine name -> label

    @property
    def av_rank(self) -> int:
        return len(self.detections)

    def labels(self) -> List[str]:
        return list(self.detections.values())


class VirusTotalService:
    """Scans parsed APKs against the engine roster.

    ``cache_version`` keys this service's verdicts in the persistent
    artifact cache: a scan is a pure function of the APK bytes given
    the engine roster and signature databases, so any subclass or
    configuration that changes verdicts must bump it (bump-the-version
    invalidation).  Wrappers that only change *how* a verdict is
    obtained — latency models, transport retries — keep it.
    """

    cache_version = "1"

    def __init__(self, engines: Optional[List[EngineProfile]] = None):
        self._engines = engines or default_engines()
        if engines is not None:
            # A custom roster changes verdicts: never share the default
            # roster's cache namespace.
            roster = tuple((e.name, e.tier, e.style) for e in engines)
            self.cache_version = f"custom-{stable_hash32('roster', roster):08x}"
        self._weak = [e for e in self._engines if e.tier == "weak"]
        self._signature_db = self._build_signature_db()
        self._grayware_db = self._build_grayware_db()
        self._jiagu_digest = JiaguObfuscator.stub_digest()
        self._cache: Dict[str, ScanReport] = {}

    @property
    def engines(self) -> List[EngineProfile]:
        return list(self._engines)

    # -- databases ---------------------------------------------------------

    @staticmethod
    def _build_signature_db() -> Dict[int, Tuple[str, int]]:
        """digest -> (family, variant) over the vendor sample feeds."""
        from repro.ecosystem.threats import MALWARE_FAMILIES, payload_code

        db: Dict[int, Tuple[str, int]] = {}
        for family in MALWARE_FAMILIES:
            for variant in range(VARIANTS_PER_FAMILY):
                digest = payload_code(family, variant).feature_digest
                db[digest] = (family, variant)
        return db

    @staticmethod
    def _build_grayware_db() -> Dict[int, str]:
        """digest -> grayware family for aggressive ad SDK builds."""
        from repro.ecosystem.libraries import default_catalog

        db: Dict[int, str] = {}
        catalog = default_catalog()
        for lib in catalog.aggressive_libraries:
            for version in range(lib.n_versions):
                code = catalog.version_code(lib.package, version).as_code_package()
                db[code.feature_digest] = lib.grayware_family
        return db

    # -- detection ------------------------------------------------------------

    def _engine_knows(self, engine: EngineProfile, family: str, variant: int,
                      breadth: float) -> bool:
        effective = min(1.0, breadth * _TIER_MULTIPLIER[engine.tier])
        roll = stable_hash32("sigdb", engine.name, family, variant) % 100_000
        return roll < int(effective * 100_000)

    def _weak_knows(self, engine: EngineProfile, key: str, target: str,
                    per_engine_p: float) -> bool:
        roll = stable_hash32(key, engine.name, target) % 100_000
        return roll < int(per_engine_p * 100_000)

    def _label(self, engine: EngineProfile, family: str, variant: int,
               kind: str, md5: str) -> str:
        aliases = _FAMILY_ALIASES.get(family, (family,))
        alias = aliases[stable_hash32("alias", engine.name, family) % len(aliases)]
        pretty = alias.capitalize()
        letter = chr(ord("a") + variant % 26)
        if engine.style == "generic":
            return f"Artemis!{md5[:8]}"
        if kind in ("adware", "grayware"):
            if engine.style == "adware":
                return f"AdWare.AndroidOS.{pretty}.{letter}"
            if engine.style == "slash":
                return f"Adware/ANDR.{pretty}.gen"
            return f"Android.AdWare.{pretty}.{letter}"
        if engine.style == "slash":
            return f"Trojan/AndroidOS.{alias}.{variant}"
        return f"Android.Trojan.{pretty}.{letter}"

    def scan(self, apk: ParsedApk) -> ScanReport:
        """Scan one APK (cached by MD5)."""
        cached = self._cache.get(apk.md5)
        if cached is not None:
            return cached

        from repro.ecosystem.threats import (
            GRAYWARE_BREADTH,
            JIAGU_HEURISTIC_BREADTH,
            MALWARE_FAMILIES,
        )

        detections: Dict[str, str] = {}
        digests = [pkg.feature_digest for pkg in apk.packages]
        n_weak = max(1, len(self._weak))
        scale = len(self._engines) / n_weak

        for digest in digests:
            hit = self._signature_db.get(digest)
            if hit is not None:
                family, variant = hit
                breadth = MALWARE_FAMILIES[family].breadth
                kind = MALWARE_FAMILIES[family].kind
                for engine in self._engines:
                    if engine.name in detections:
                        continue
                    if self._engine_knows(engine, family, variant, breadth):
                        detections[engine.name] = self._label(
                            engine, family, variant, kind, apk.md5
                        )
                continue
            gray = self._grayware_db.get(digest)
            if gray is not None:
                per_engine = min(1.0, GRAYWARE_BREADTH * scale)
                for engine in self._weak:
                    if engine.name in detections:
                        continue
                    if self._weak_knows(engine, "graydb", f"{gray}:{digest}", per_engine):
                        detections[engine.name] = self._label(
                            engine, gray, digest % 26, "grayware", apk.md5
                        )
            if digest == self._jiagu_digest:
                per_engine = min(1.0, JIAGU_HEURISTIC_BREADTH * scale)
                for engine in self._weak:
                    if engine.name in detections:
                        continue
                    if self._weak_knows(engine, "jiagu-heur", apk.md5, per_engine):
                        detections[engine.name] = self._label(
                            engine, "jiagu", 0, "grayware", apk.md5
                        )

        # Tiny generic false-positive rate on weak engines.
        for engine in self._weak:
            if engine.name in detections:
                continue
            if self._weak_knows(engine, "weak-fp", apk.md5, 0.0002 * scale):
                detections[engine.name] = f"Artemis!{apk.md5[:8]}"

        report = ScanReport(md5=apk.md5, detections=detections)
        self._cache[apk.md5] = report
        return report

    def family_aliases(self) -> Mapping[str, Tuple[str, ...]]:
        """The alias table (exposed for AVClass-style normalization)."""
        return _FAMILY_ALIASES
