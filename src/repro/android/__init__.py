"""Android platform model: permissions and the API-permission specification."""

from repro.android.permissions import (
    ALL_PERMISSIONS,
    DANGEROUS_PERMISSIONS,
    PermissionSpec,
    platform_spec,
)

__all__ = [
    "ALL_PERMISSIONS",
    "DANGEROUS_PERMISSIONS",
    "PermissionSpec",
    "platform_spec",
]
