"""Android permission model and the PScout-style API-permission map.

The paper's over-privilege analysis (Section 6.3) uses PScout's mapping
from API calls / Intents / Content Providers to the permissions they
require (32,445 permission-related APIs for Android 5.1.1).  Here the
platform defines the ground-truth specification at reduced width: each
permission guards a disjoint slice of the feature-id space.  The analysis
side (:mod:`repro.analysis.permissions`) consumes this spec exactly the
way the paper consumed the published PScout dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple

import numpy as np

from repro.apk.models import (
    API_FEATURE_RANGE,
    INTENT_FEATURE_RANGE,
    PROVIDER_FEATURE_RANGE,
)
from repro.util.rng import stable_hash64

__all__ = [
    "ALL_PERMISSIONS",
    "DANGEROUS_PERMISSIONS",
    "PermissionSpec",
    "platform_spec",
]

#: Android permissions modeled in the simulation.  Dangerous permissions
#: follow Google's protection-level classification.
DANGEROUS_PERMISSIONS: Tuple[str, ...] = (
    "READ_PHONE_STATE",
    "ACCESS_COARSE_LOCATION",
    "ACCESS_FINE_LOCATION",
    "CAMERA",
    "RECORD_AUDIO",
    "READ_CONTACTS",
    "WRITE_CONTACTS",
    "READ_SMS",
    "SEND_SMS",
    "RECEIVE_SMS",
    "READ_CALL_LOG",
    "WRITE_CALL_LOG",
    "CALL_PHONE",
    "READ_EXTERNAL_STORAGE",
    "WRITE_EXTERNAL_STORAGE",
    "READ_CALENDAR",
    "WRITE_CALENDAR",
    "BODY_SENSORS",
    "GET_ACCOUNTS",
    "PROCESS_OUTGOING_CALLS",
)

NORMAL_PERMISSIONS: Tuple[str, ...] = (
    "INTERNET",
    "ACCESS_NETWORK_STATE",
    "ACCESS_WIFI_STATE",
    "BLUETOOTH",
    "BLUETOOTH_ADMIN",
    "VIBRATE",
    "WAKE_LOCK",
    "NFC",
    "SET_WALLPAPER",
    "RECEIVE_BOOT_COMPLETED",
    "CHANGE_WIFI_STATE",
    "FLASHLIGHT",
    "EXPAND_STATUS_BAR",
    "GET_PACKAGE_SIZE",
    "KILL_BACKGROUND_PROCESSES",
    "REORDER_TASKS",
    "SYSTEM_ALERT_WINDOW",
    "WRITE_SETTINGS",
    "DOWNLOAD_WITHOUT_NOTIFICATION",
    "FOREGROUND_SERVICE",
)

ALL_PERMISSIONS: Tuple[str, ...] = DANGEROUS_PERMISSIONS + NORMAL_PERMISSIONS


@dataclass(frozen=True)
class PermissionSpec:
    """The platform's permission specification.

    ``feature_permission`` maps each guarded feature id to the permission
    it requires; ``permission_features`` is the inverse, grouped.
    """

    feature_permission: Mapping[int, str]
    permission_features: Mapping[str, FrozenSet[int]]

    def permissions_for(self, feature_ids) -> FrozenSet[str]:
        """Set of permissions required by the given feature ids."""
        return frozenset(
            self.feature_permission[fid]
            for fid in feature_ids
            if fid in self.feature_permission
        )

    def sample_feature(self, permission: str, rng: np.random.Generator) -> int:
        """Pick one feature id guarded by ``permission`` (for codegen)."""
        features = sorted(self.permission_features[permission])
        return features[int(rng.integers(0, len(features)))]

    def is_dangerous(self, permission: str) -> bool:
        return permission in DANGEROUS_PERMISSIONS


def _spec_builder() -> PermissionSpec:
    """Build the deterministic platform specification.

    Each permission guards ~40 API features plus a few Intent and
    Content-Provider features, mirroring PScout's structure (APIs,
    permission-related Intents, Content Provider URIs).  Assignments are
    deterministic in the permission name, independent of any study seed —
    the platform does not change between studies.
    """
    rng = np.random.default_rng(stable_hash64("android-platform-spec") % 2**63)
    feature_permission: Dict[int, str] = {}
    permission_features: Dict[str, set] = {p: set() for p in ALL_PERMISSIONS}

    api_lo, api_hi = API_FEATURE_RANGE
    # Reserve the lower half of the API space as permission-free; guard
    # the upper half.  This keeps plenty of unguarded APIs for generic
    # app/library code.
    guarded_lo = api_lo + (api_hi - api_lo) // 2
    guarded_apis = rng.permutation(np.arange(guarded_lo, api_hi))
    per_perm = len(guarded_apis) // len(ALL_PERMISSIONS)
    for idx, perm in enumerate(ALL_PERMISSIONS):
        chunk = guarded_apis[idx * per_perm : (idx + 1) * per_perm]
        for fid in chunk:
            feature_permission[int(fid)] = perm
            permission_features[perm].add(int(fid))

    # A few guarded Intents and Providers per dangerous permission.
    intent_lo, intent_hi = INTENT_FEATURE_RANGE
    provider_lo, provider_hi = PROVIDER_FEATURE_RANGE
    intents = rng.permutation(np.arange(intent_lo, intent_hi))
    providers = rng.permutation(np.arange(provider_lo, provider_hi))
    for idx, perm in enumerate(DANGEROUS_PERMISSIONS):
        for fid in (intents[2 * idx], intents[2 * idx + 1], providers[idx]):
            feature_permission[int(fid)] = perm
            permission_features[perm].add(int(fid))

    return PermissionSpec(
        feature_permission=feature_permission,
        permission_features={p: frozenset(s) for p, s in permission_features.items()},
    )


_SPEC: PermissionSpec = None  # type: ignore[assignment]


def platform_spec() -> PermissionSpec:
    """The singleton platform permission specification."""
    global _SPEC
    if _SPEC is None:
        _SPEC = _spec_builder()
    return _SPEC
