"""Synthetic APK toolchain.

An :class:`~repro.apk.models.Apk` is a structured model of an Android
package: manifest, DEX code organized as top-level code packages with
API-call features and code blocks, a developer signature, and META-INF
entries (including per-market channel files).  ``archive`` serializes an
APK to a binary blob and parses it back; all analyzers work on parsed
archives, never on ecosystem ground truth.
"""

from repro.apk.models import (
    Apk,
    ChannelFile,
    CodePackage,
    Manifest,
)
from repro.apk.archive import ApkParseError, ParsedApk, parse_apk, serialize_apk
from repro.apk.signing import SigningKey, extract_signature
from repro.apk.obfuscation import JiaguObfuscator

__all__ = [
    "Apk",
    "Manifest",
    "CodePackage",
    "ChannelFile",
    "ParsedApk",
    "ApkParseError",
    "parse_apk",
    "serialize_apk",
    "SigningKey",
    "extract_signature",
    "JiaguObfuscator",
]
