"""Binary APK archive format.

``serialize_apk`` turns an :class:`~repro.apk.models.Apk` into a
compressed binary blob (magic ``RAPK1``); ``parse_apk`` reverses it.
Analyzers only ever receive blobs (from crawler downloads) and work on
the resulting :class:`ParsedApk` — this enforces the boundary between
the synthetic world and the measurement code.

A :class:`SegmentCache` may be passed to :func:`serialize_apk`: the
per-code-package ``dex`` segments (the bulk of every blob, and the part
shared verbatim across a package's 16-market × version fan-out — per
§5.3 placements differ only by manifest, channel file, and signature)
are then JSON-encoded once and spliced by bytes thereafter.  The cache
only changes who pays the encoding cost; the emitted bytes are
identical with or without it.
"""

from __future__ import annotations

import hashlib
import json
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apk.models import Apk, ChannelFile, CodePackage, Manifest

__all__ = [
    "MAGIC",
    "ApkParseError",
    "ParsedApk",
    "SegmentCache",
    "serialize_apk",
    "parse_apk",
]

MAGIC = b"RAPK1"


class ApkParseError(Exception):
    """Raised when a blob is not a valid APK archive."""


def _package_doc(pkg: CodePackage) -> dict:
    return {
        "name": pkg.name,
        "features": sorted(pkg.features.items()),
        "blocks": list(pkg.blocks),
    }


class SegmentCache:
    """Encoded ``dex`` segments, keyed by code-package content.

    The key is ``(name, feature_digest, blocks)`` — the full content of
    a :class:`CodePackage` — so a hit can only ever return the bytes the
    cold path would have produced.  Thread-safe: stores are idempotent
    (same key -> same bytes), so the lock only guards dict integrity,
    and the cache is shared across all 16 market stores plus the
    archive backfill.
    """

    def __init__(self) -> None:
        self._fragments: Dict[Tuple[str, int, Tuple[int, ...]], str] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def fragment(self, pkg: CodePackage) -> str:
        """The compact-JSON encoding of one package's dex segment."""
        key = (pkg.name, pkg.feature_digest, tuple(pkg.blocks))
        with self._lock:
            cached = self._fragments.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        encoded = json.dumps(_package_doc(pkg), separators=(",", ":"))
        with self._lock:
            self._fragments[key] = encoded
        return encoded

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "segments": len(self._fragments),
            }


def serialize_apk(apk: Apk, segments: Optional[SegmentCache] = None) -> bytes:
    """Serialize an APK to its on-the-wire binary form.

    With a :class:`SegmentCache`, the per-package ``dex`` fragments come
    from the cache and only the small per-placement parts (manifest,
    signature, META-INF) are re-encoded; the output bytes are identical
    either way (the splice reassembles exactly the compact-JSON document
    of the cold path — same key order, same separators).
    """
    manifest_doc = {
        "package": apk.manifest.package,
        "version_code": apk.manifest.version_code,
        "version_name": apk.manifest.version_name,
        "min_sdk": apk.manifest.min_sdk,
        "target_sdk": apk.manifest.target_sdk,
        "permissions": list(apk.manifest.permissions),
    }
    signature_doc = {
        "fingerprint": apk.signer_fingerprint,
        "signer": apk.signer_name,
    }
    meta_inf_doc = [[entry.name, entry.content] for entry in apk.meta_inf]
    if segments is None:
        doc = {
            "manifest": manifest_doc,
            "dex": [_package_doc(pkg) for pkg in apk.packages],
            "signature": signature_doc,
            "meta_inf": meta_inf_doc,
            "obfuscated_by": apk.obfuscated_by,
        }
        body = json.dumps(doc, separators=(",", ":"))
    else:
        compact = lambda value: json.dumps(value, separators=(",", ":"))  # noqa: E731
        body = (
            '{"manifest":'
            + compact(manifest_doc)
            + ',"dex":['
            + ",".join(segments.fragment(pkg) for pkg in apk.packages)
            + '],"signature":'
            + compact(signature_doc)
            + ',"meta_inf":'
            + compact(meta_inf_doc)
            + ',"obfuscated_by":'
            + compact(apk.obfuscated_by)
            + "}"
        )
    payload = zlib.compress(body.encode("utf-8"), 6)
    return MAGIC + struct.pack(">I", len(payload)) + payload


@dataclass
class ParsedApk:
    """The analyzer-facing view of one APK file.

    Produced only by :func:`parse_apk`, so everything here is derived
    from the archive bytes, exactly as androguard/ApkSigner would derive
    it from a real APK.
    """

    manifest: Manifest
    packages: Tuple[CodePackage, ...]
    signer_fingerprint: str
    signer_name: str
    meta_inf: Tuple[ChannelFile, ...]
    obfuscated_by: Optional[str]
    md5: str
    size_bytes: int

    def merged_features(self) -> Dict[int, int]:
        # Memoized: every permission/library pass re-reads this per APK,
        # and a parsed APK's packages never change after parse_apk.
        cached = getattr(self, "_merged_features", None)
        if cached is None:
            cached = {}
            for pkg in self.packages:
                for fid, count in pkg.features.items():
                    cached[fid] = cached.get(fid, 0) + count
            self._merged_features = cached
        return cached

    def package_names(self) -> Tuple[str, ...]:
        return tuple(pkg.name for pkg in self.packages)

    def package_digests(self) -> Dict[str, int]:
        """Map code-package name -> feature digest (AV/library lookups)."""
        return {pkg.name: pkg.feature_digest for pkg in self.packages}

    @property
    def identity(self) -> Tuple[str, int]:
        """The (package, version_code) primary key used throughout §5."""
        return (self.manifest.package, self.manifest.version_code)


def parse_apk(blob: bytes) -> ParsedApk:
    """Parse a serialized APK blob.

    Raises :class:`ApkParseError` on malformed input (bad magic,
    truncation, corrupt payload, or schema violations).
    """
    if len(blob) < len(MAGIC) + 4:
        raise ApkParseError("blob too short")
    if blob[: len(MAGIC)] != MAGIC:
        raise ApkParseError("bad magic")
    (length,) = struct.unpack(">I", blob[len(MAGIC) : len(MAGIC) + 4])
    payload = blob[len(MAGIC) + 4 :]
    if len(payload) != length:
        raise ApkParseError(f"payload length mismatch: {len(payload)} != {length}")
    try:
        doc = json.loads(zlib.decompress(payload).decode("utf-8"))
    except (zlib.error, ValueError) as exc:
        raise ApkParseError(f"corrupt payload: {exc}") from exc

    try:
        mdoc = doc["manifest"]
        manifest = Manifest(
            package=mdoc["package"],
            version_code=int(mdoc["version_code"]),
            version_name=mdoc["version_name"],
            min_sdk=int(mdoc["min_sdk"]),
            target_sdk=int(mdoc["target_sdk"]),
            permissions=tuple(mdoc["permissions"]),
        )
        packages = tuple(
            CodePackage(
                name=p["name"],
                features={int(fid): int(count) for fid, count in p["features"]},
                blocks=tuple(int(b) for b in p["blocks"]),
            )
            for p in doc["dex"]
        )
        meta_inf = tuple(ChannelFile(name, content) for name, content in doc["meta_inf"])
        return ParsedApk(
            manifest=manifest,
            packages=packages,
            signer_fingerprint=doc["signature"]["fingerprint"],
            signer_name=doc["signature"]["signer"],
            meta_inf=meta_inf,
            obfuscated_by=doc.get("obfuscated_by"),
            md5=hashlib.md5(blob).hexdigest(),
            size_bytes=len(blob),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ApkParseError(f"schema violation: {exc}") from exc
