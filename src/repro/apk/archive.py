"""Binary APK archive format.

``serialize_apk`` turns an :class:`~repro.apk.models.Apk` into a
compressed binary blob (magic ``RAPK1``); ``parse_apk`` reverses it.
Analyzers only ever receive blobs (from crawler downloads) and work on
the resulting :class:`ParsedApk` — this enforces the boundary between
the synthetic world and the measurement code.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apk.models import Apk, ChannelFile, CodePackage, Manifest

__all__ = ["MAGIC", "ApkParseError", "ParsedApk", "serialize_apk", "parse_apk"]

MAGIC = b"RAPK1"


class ApkParseError(Exception):
    """Raised when a blob is not a valid APK archive."""


def serialize_apk(apk: Apk) -> bytes:
    """Serialize an APK to its on-the-wire binary form."""
    doc = {
        "manifest": {
            "package": apk.manifest.package,
            "version_code": apk.manifest.version_code,
            "version_name": apk.manifest.version_name,
            "min_sdk": apk.manifest.min_sdk,
            "target_sdk": apk.manifest.target_sdk,
            "permissions": list(apk.manifest.permissions),
        },
        "dex": [
            {
                "name": pkg.name,
                "features": sorted(pkg.features.items()),
                "blocks": list(pkg.blocks),
            }
            for pkg in apk.packages
        ],
        "signature": {
            "fingerprint": apk.signer_fingerprint,
            "signer": apk.signer_name,
        },
        "meta_inf": [[entry.name, entry.content] for entry in apk.meta_inf],
        "obfuscated_by": apk.obfuscated_by,
    }
    payload = zlib.compress(json.dumps(doc, separators=(",", ":")).encode("utf-8"), 6)
    return MAGIC + struct.pack(">I", len(payload)) + payload


@dataclass
class ParsedApk:
    """The analyzer-facing view of one APK file.

    Produced only by :func:`parse_apk`, so everything here is derived
    from the archive bytes, exactly as androguard/ApkSigner would derive
    it from a real APK.
    """

    manifest: Manifest
    packages: Tuple[CodePackage, ...]
    signer_fingerprint: str
    signer_name: str
    meta_inf: Tuple[ChannelFile, ...]
    obfuscated_by: Optional[str]
    md5: str
    size_bytes: int

    def merged_features(self) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for pkg in self.packages:
            for fid, count in pkg.features.items():
                merged[fid] = merged.get(fid, 0) + count
        return merged

    def package_names(self) -> Tuple[str, ...]:
        return tuple(pkg.name for pkg in self.packages)

    def package_digests(self) -> Dict[str, int]:
        """Map code-package name -> feature digest (AV/library lookups)."""
        return {pkg.name: pkg.feature_digest for pkg in self.packages}

    @property
    def identity(self) -> Tuple[str, int]:
        """The (package, version_code) primary key used throughout §5."""
        return (self.manifest.package, self.manifest.version_code)


def parse_apk(blob: bytes) -> ParsedApk:
    """Parse a serialized APK blob.

    Raises :class:`ApkParseError` on malformed input (bad magic,
    truncation, corrupt payload, or schema violations).
    """
    if len(blob) < len(MAGIC) + 4:
        raise ApkParseError("blob too short")
    if blob[: len(MAGIC)] != MAGIC:
        raise ApkParseError("bad magic")
    (length,) = struct.unpack(">I", blob[len(MAGIC) : len(MAGIC) + 4])
    payload = blob[len(MAGIC) + 4 :]
    if len(payload) != length:
        raise ApkParseError(f"payload length mismatch: {len(payload)} != {length}")
    try:
        doc = json.loads(zlib.decompress(payload).decode("utf-8"))
    except (zlib.error, ValueError) as exc:
        raise ApkParseError(f"corrupt payload: {exc}") from exc

    try:
        mdoc = doc["manifest"]
        manifest = Manifest(
            package=mdoc["package"],
            version_code=int(mdoc["version_code"]),
            version_name=mdoc["version_name"],
            min_sdk=int(mdoc["min_sdk"]),
            target_sdk=int(mdoc["target_sdk"]),
            permissions=tuple(mdoc["permissions"]),
        )
        packages = tuple(
            CodePackage(
                name=p["name"],
                features={int(fid): int(count) for fid, count in p["features"]},
                blocks=tuple(int(b) for b in p["blocks"]),
            )
            for p in doc["dex"]
        )
        meta_inf = tuple(ChannelFile(name, content) for name, content in doc["meta_inf"])
        return ParsedApk(
            manifest=manifest,
            packages=packages,
            signer_fingerprint=doc["signature"]["fingerprint"],
            signer_name=doc["signature"]["signer"],
            meta_inf=meta_inf,
            obfuscated_by=doc.get("obfuscated_by"),
            md5=hashlib.md5(blob).hexdigest(),
            size_bytes=len(blob),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ApkParseError(f"schema violation: {exc}") from exc
