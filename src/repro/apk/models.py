"""Structured APK model.

The model captures exactly the artifacts the paper's analyses read:

* the manifest (package name, version code/name, SDK levels, requested
  permissions),
* the DEX code as a set of top-level *code packages*, each with a sparse
  multiset of feature identifiers (Android API calls, Intents, Content
  Provider URIs share one feature-id space) and a list of code-block
  hashes (for WuKong's second-phase code-segment comparison),
* the developer signature block, and
* META-INF entries such as the per-market channel files of Section 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "FEATURE_SPACE",
    "API_FEATURE_RANGE",
    "INTENT_FEATURE_RANGE",
    "PROVIDER_FEATURE_RANGE",
    "Manifest",
    "CodePackage",
    "ChannelFile",
    "Apk",
]

#: Unified feature-id space for DEX features.  The paper's WuKong vectors
#: have >45K dimensions (32,445 APIs + Intents + Providers); we keep the
#: same structure at reduced width.
API_FEATURE_RANGE = (0, 10_000)
INTENT_FEATURE_RANGE = (10_000, 10_200)
PROVIDER_FEATURE_RANGE = (10_200, 10_400)
FEATURE_SPACE = PROVIDER_FEATURE_RANGE[1]


@dataclass(frozen=True)
class Manifest:
    """AndroidManifest.xml as analyzers see it."""

    package: str
    version_code: int
    version_name: str
    min_sdk: int
    target_sdk: int
    permissions: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.version_code < 0:
            raise ValueError("version_code must be non-negative")
        if self.min_sdk < 1 or self.target_sdk < self.min_sdk:
            raise ValueError(
                f"invalid SDK range: min={self.min_sdk} target={self.target_sdk}"
            )


@dataclass(frozen=True)
class CodePackage:
    """One top-level code package inside the DEX.

    ``features`` maps feature id -> occurrence count.  ``blocks`` are
    stable hashes of code segments.  ``feature_digest`` is a
    content-derived digest of the feature multiset; it is what both the
    library detector clusters on and what AV signature databases store.
    """

    name: str
    features: Mapping[int, int]
    blocks: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for fid, count in self.features.items():
            if not (0 <= fid < FEATURE_SPACE):
                raise ValueError(f"feature id {fid} outside feature space")
            if count <= 0:
                raise ValueError(f"feature count must be positive, got {count}")

    @property
    def feature_digest(self) -> int:
        # Memoized on the frozen instance: the digest keys segment-cache
        # and AV/library lookups, all of which hit it repeatedly.
        try:
            return self._feature_digest
        except AttributeError:
            pass
        from repro.util.rng import stable_hash64

        items = tuple(sorted(self.features.items()))
        digest = stable_hash64("pkg-features", items)
        object.__setattr__(self, "_feature_digest", digest)
        return digest

    def total_features(self) -> int:
        return sum(self.features.values())


@dataclass(frozen=True)
class ChannelFile:
    """A META-INF entry, e.g. the ``kgchannel`` market-channel marker."""

    name: str
    content: str


@dataclass
class Apk:
    """A complete APK ready for serialization."""

    manifest: Manifest
    packages: Tuple[CodePackage, ...]
    signer_fingerprint: str
    signer_name: str
    meta_inf: Tuple[ChannelFile, ...] = ()
    obfuscated_by: Optional[str] = None

    def merged_features(self) -> Dict[int, int]:
        """Merge feature multisets across all code packages."""
        merged: Dict[int, int] = {}
        for pkg in self.packages:
            for fid, count in pkg.features.items():
                merged[fid] = merged.get(fid, 0) + count
        return merged

    def package_names(self) -> Tuple[str, ...]:
        return tuple(pkg.name for pkg in self.packages)
