"""360 Jiagubao-style packaging/obfuscation.

The 360 market requires developers to run their APKs through the 360
Jiagubao packer before submission (Section 2, Section 5.3).  The packer:

* renames every code-package to a meaningless identifier (feature
  multisets are untouched, which is why the paper's clustering-based
  library detection is obfuscation resilient),
* injects a small loader stub package, and
* stamps the archive with the packer's name.

Weak anti-virus engines heuristically flag packed apps (the ``jiagu``
family visible in the paper's Figure 12), which the simulated VirusTotal
reproduces by matching on the stub package digest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apk.models import Apk, CodePackage
from repro.util.rng import stable_hash32

__all__ = ["JiaguObfuscator", "JIAGU_STUB_PACKAGE"]

#: Name of the loader stub the packer injects.
JIAGU_STUB_PACKAGE = "com.qihoo.util"

#: The stub's code is byte-identical across packed apps, so its feature
#: digest is a stable, recognisable signature.
_STUB_FEATURES = {101: 3, 202: 1, 303: 2, 404: 1}
_STUB_BLOCKS = (0x360360, 0x360361)


@dataclass(frozen=True)
class JiaguObfuscator:
    """Applies 360 Jiagubao-style packing to an APK model."""

    packer_name: str = "360jiagubao"

    def obfuscate(self, apk: Apk) -> Apk:
        """Return a packed copy of ``apk``; the input is not modified."""
        renamed = tuple(
            CodePackage(
                name=self._mangle(pkg.name, apk.manifest.package),
                features=dict(pkg.features),
                blocks=pkg.blocks,
            )
            for pkg in apk.packages
        )
        stub = CodePackage(
            name=JIAGU_STUB_PACKAGE,
            features=dict(_STUB_FEATURES),
            blocks=_STUB_BLOCKS,
        )
        return Apk(
            manifest=apk.manifest,
            packages=renamed + (stub,),
            signer_fingerprint=apk.signer_fingerprint,
            signer_name=apk.signer_name,
            meta_inf=apk.meta_inf,
            obfuscated_by=self.packer_name,
        )

    @staticmethod
    def _mangle(package_name: str, app_package: str) -> str:
        """Deterministic opaque rename, stable per (app, package)."""
        tag = stable_hash32("jiagu-rename", app_package, package_name)
        return f"o.{tag:08x}"

    @staticmethod
    def stub_digest() -> int:
        """Feature digest of the loader stub (used by AV heuristics)."""
        return CodePackage(JIAGU_STUB_PACKAGE, dict(_STUB_FEATURES), _STUB_BLOCKS).feature_digest
