"""Developer signing keys and signature extraction.

Android apps must be signed before release; the paper uses ApkSigner to
extract each APK's developer signature (Section 5.1).  Here a
``SigningKey`` produces a stable certificate fingerprint; the signature
cannot be spoofed because :func:`extract_signature` reads it from the
parsed archive, and clones built by other developers necessarily carry a
different fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apk.archive import ParsedApk
from repro.util.rng import stable_hash64

__all__ = ["SigningKey", "extract_signature"]


@dataclass(frozen=True)
class SigningKey:
    """A developer signing identity.

    ``key_id`` is the secret key material (an opaque integer in the
    simulation); the public certificate fingerprint is derived from it.
    """

    key_id: int
    owner_name: str

    @property
    def fingerprint(self) -> str:
        """Hex SHA-like fingerprint of the signing certificate."""
        return f"{stable_hash64('cert', self.key_id):016x}"


def extract_signature(parsed: ParsedApk) -> str:
    """Extract the signer certificate fingerprint from a parsed APK.

    Mirrors the paper's use of ApkSigner: the value comes from the
    archive's signature block, not from any ground-truth channel.
    """
    return parsed.signer_fingerprint
