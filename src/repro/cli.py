"""Command-line interface.

    python -m repro list
    python -m repro markets
    python -m repro run --scale 0.001 --seed 42
    python -m repro experiment table4 figure9 --scale 0.001
    python -m repro report --scale 0.002 --output EXPERIMENTS.md
    python -m repro run --trace-out trace.jsonl --metrics-out metrics.jsonl
    python -m repro run-report --trace trace.jsonl --metrics metrics.jsonl

``run`` executes the full study and prints a summary; ``experiment``
additionally renders the requested tables/figures; ``report`` writes all
of them to a markdown file.  ``--trace-out`` / ``--metrics-out`` /
``--profile`` turn on the observability layer (:mod:`repro.obs`), and
``run-report`` re-renders a finished campaign from its exported
artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro import Study, StudyConfig, __version__
from repro.experiments import EXPERIMENT_IDS, run_experiment
from repro.markets.profiles import ALL_MARKET_IDS, GOOGLE_PLAY, get_profile

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Beyond Google Play' (IMC 2018): simulate the "
            "app-market ecosystem, crawl it, and regenerate the paper's "
            "tables and figures."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")
    sub.add_parser("markets", help="print the 17 market profiles")

    def workers_arg(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"must be non-negative (0 = auto), got {value}"
            )
        return value

    def add_study_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=42, help="master seed")
        p.add_argument("--scale", type=float, default=0.001,
                       help="fraction of the paper's 6.27M-listing corpus")
        p.add_argument("--no-apks", action="store_true",
                       help="metadata-only crawl (faster)")
        p.add_argument("--full-second-crawl", action="store_true",
                       help="run a full second campaign (enables 'churn')")
        p.add_argument("--workers", type=workers_arg, default=1,
                       help="crawl-engine threads, 0 = auto "
                            "(snapshot identical at any width)")
        p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="journal completed crawl work under DIR "
                            "(enables crash-safe campaigns)")
        p.add_argument("--resume", action="store_true",
                       help="replay an existing checkpoint journal instead "
                            "of re-crawling (requires --checkpoint-dir)")
        p.add_argument("--breaker-threshold", type=int, default=None,
                       metavar="N",
                       help="consecutive failures before a market's circuit "
                            "breaker opens (default: policy default)")
        failure_mode = p.add_mutually_exclusive_group()
        failure_mode.add_argument(
            "--fail-fast", action="store_true",
            help="abort the study when a market exhausts its breaker "
                 "trip budget")
        failure_mode.add_argument(
            "--degrade", action="store_true",
            help="complete the study with dead markets marked degraded "
                 "(the default)")
        p.add_argument("--analysis-workers", type=workers_arg, default=1,
                       metavar="N",
                       help="analysis-engine threads, 0 = auto (every "
                            "artifact and report identical at any width)")
        p.add_argument("--gen-workers", type=workers_arg, default=1,
                       metavar="N",
                       help="world-generation worker processes, 0 = auto "
                            "(world bit-identical at any width)")
        p.add_argument("--no-segment-cache", action="store_true",
                       help="rebuild every APK blob cold instead of "
                            "splicing shared dex segments (bytes are "
                            "identical either way; for benchmarking)")
        p.add_argument("--artifact-cache", default=None, metavar="DIR",
                       help="persist per-APK analysis artifacts under DIR "
                            "(default: <checkpoint-dir>/artifacts when "
                            "--checkpoint-dir is set)")
        p.add_argument("--no-artifact-cache", action="store_true",
                       help="disable the artifact cache even when "
                            "--checkpoint-dir is set")
        p.add_argument("--store-backend", choices=("memory", "sqlite"),
                       default="memory",
                       help="corpus storage backend: 'memory' holds the "
                            "full corpus in RAM, 'sqlite' spills record "
                            "families to disk-backed segment tables and "
                            "streams them (digests identical either way)")
        p.add_argument("--store-batch-size", type=int, default=512,
                       metavar="N",
                       help="streaming-cursor batch width for the sqlite "
                            "backend (records in flight per cursor)")
        p.add_argument("--store-spill-threshold", type=int, default=None,
                       metavar="N",
                       help="record count above which a family spills to "
                            "disk (default: 5000; small worlds stay fully "
                            "in-memory)")
        p.add_argument("--store-dir", default=None, metavar="DIR",
                       help="root for the sqlite backend's segment tables "
                            "and APK vault (default: <checkpoint-dir>/store "
                            "or a temporary directory)")
        p.add_argument("--hostility", default=None, metavar="SPEC",
                       help="make market servers hostile: a comma-joined "
                            "behavior list from {auth,binary,antibot,"
                            "package_list}, 'full' for all four, or "
                            "'profile' to give each market the behaviors "
                            "its profile declares (default: polite fleet)")
        p.add_argument("--identity-pool", type=int, default=None, metavar="N",
                       help="client identities per market lane; hostile "
                            "antibot markets ban a lane's current identity "
                            "(default: 4 when --hostility is set, else 0)")
        p.add_argument("--identity-rotation", default="on_ban",
                       choices=("on_ban", "round_robin"),
                       help="identity-rotation mode (default: on_ban)")
        p.add_argument("--credential-ttl", type=float, default=None,
                       metavar="DAYS",
                       help="override hostile markets' session-token TTL "
                            "in simulated days")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the campaign span trace to PATH (JSONL)")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics registry to PATH (JSONL)")
        p.add_argument("--profile", action="store_true",
                       help="profile pipeline stages (wall time + peak "
                            "memory) and print the critical-path report")

    run_parser = sub.add_parser("run", help="run a study and print a summary")
    add_study_args(run_parser)

    exp_parser = sub.add_parser("experiment", help="run specific experiments")
    add_study_args(exp_parser)
    exp_parser.add_argument("ids", nargs="+", metavar="EXPERIMENT",
                            help="experiment ids (see 'list')")

    report_parser = sub.add_parser("report", help="write all experiments to markdown")
    add_study_args(report_parser)
    report_parser.add_argument("--output", default="EXPERIMENTS.md")

    rr_parser = sub.add_parser(
        "run-report",
        help="render a campaign report from exported observability artifacts")
    rr_parser.add_argument("--trace", default=None, metavar="PATH",
                           help="a --trace-out artifact to summarize")
    rr_parser.add_argument("--metrics", default=None, metavar="PATH",
                           help="a --metrics-out artifact to re-render")
    return parser


def _artifact_cache_dir(args: argparse.Namespace) -> Optional[str]:
    """Resolve the artifact-cache directory from the CLI flags.

    ``--no-artifact-cache`` wins; an explicit ``--artifact-cache DIR``
    is next; otherwise a checkpointed study defaults to keeping its
    artifacts next to the crawl journal.
    """
    if args.no_artifact_cache:
        return None
    if args.artifact_cache is not None:
        return args.artifact_cache
    if args.checkpoint_dir:
        import os

        return os.path.join(args.checkpoint_dir, "artifacts")
    return None


def _config_from(args: argparse.Namespace) -> StudyConfig:
    from repro.analysis.engine import resolve_analysis_workers
    from repro.crawler.workers import resolve_thread_workers
    from repro.ecosystem.sharding import resolve_gen_workers

    return StudyConfig(
        seed=args.seed,
        scale=args.scale,
        download_apks=not args.no_apks,
        full_second_crawl=args.full_second_crawl,
        crawl_workers=resolve_thread_workers(args.workers),
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        fail_fast=args.fail_fast,
        breaker_threshold=args.breaker_threshold,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile=args.profile,
        analysis_workers=resolve_analysis_workers(args.analysis_workers),
        artifact_cache_dir=_artifact_cache_dir(args),
        gen_workers=resolve_gen_workers(args.gen_workers),
        segment_cache=not args.no_segment_cache,
        store_backend=args.store_backend,
        store_batch_size=args.store_batch_size,
        **(
            {"store_spill_threshold": args.store_spill_threshold}
            if args.store_spill_threshold is not None
            else {}
        ),
        store_dir=args.store_dir,
        hostility=args.hostility,
        identity_pool=(
            args.identity_pool
            if args.identity_pool is not None
            else (4 if args.hostility is not None else 0)
        ),
        identity_rotation=args.identity_rotation,
        credential_ttl=args.credential_ttl,
    )


def _cmd_list(out) -> int:
    for experiment_id in EXPERIMENT_IDS:
        print(experiment_id, file=out)
    return 0


def _cmd_markets(out) -> int:
    header = (f"{'id':12s} {'name':16s} {'kind':12s} {'paper size':>11s} "
              f"{'vetting':>8s} {'security':>9s}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        print(
            f"{market_id:12s} {profile.display_name:16s} {profile.kind:12s} "
            f"{profile.paper_size:>11,d} "
            f"{'yes' if profile.app_vetting else 'no':>8s} "
            f"{'yes' if profile.security_check else 'no':>9s}",
            file=out,
        )
    return 0


def _run_study(args, out):
    config = _config_from(args)
    print(f"running study: seed={config.seed} scale={config.scale}", file=out)
    start = time.time()
    result = Study(config).run()
    print(f"done in {time.time() - start:.1f}s: "
          f"{len(result.snapshot):,} listings, "
          f"{len(result.snapshot.packages()):,} packages", file=out)
    return result


def _finish_observability(result, out) -> None:
    """Export artifacts and print the profile (after analyses ran)."""
    if result.engine.workers > 1 or result.engine.cache is not None:
        print(result.engine.stats_line(), file=out)
    for path in result.export_observability():
        print(f"wrote {path}", file=out)
    if result.config.profile:
        print(file=out)
        print(result.obs.profile_report(result.telemetry), file=out)


def _cmd_run(args, out) -> int:
    result = _run_study(args, out)
    snapshot = result.snapshot
    print(file=out)
    print(result.crawl_report(), file=out)
    print(file=out)
    if result.degraded_markets:
        print(f"degraded markets (completed without): "
              f"{', '.join(result.degraded_markets)}", file=out)
    print(f"google play apk coverage: "
          f"{snapshot.apk_coverage(GOOGLE_PLAY):.1%}", file=out)
    if result.config.download_apks:
        from repro.analysis.malware import av_rank_rates
        from repro.markets.profiles import CHINESE_MARKET_IDS

        rates = av_rank_rates(snapshot, result.units, result.vt_scan)
        cn = sum(rates[m][10] for m in CHINESE_MARKET_IDS) / len(CHINESE_MARKET_IDS)
        print(f"malware (AV-rank>=10): GP {rates[GOOGLE_PLAY][10]:.1%} "
              f"vs Chinese avg {cn:.1%}", file=out)
    _finish_observability(result, out)
    return 0


def _cmd_experiment(args, out) -> int:
    unknown = [i for i in args.ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)} "
              f"(try 'repro list')", file=sys.stderr)
        return 2
    result = _run_study(args, out)
    for experiment_id in args.ids:
        print(file=out)
        print(run_experiment(experiment_id, result).render(), file=out)
    _finish_observability(result, out)
    return 0


def _cmd_report(args, out) -> int:
    from repro.experiments import run_all

    result = _run_study(args, out)
    reports = run_all(result)
    lines = ["# EXPERIMENTS — paper vs. measured", ""]
    for experiment_id in EXPERIMENT_IDS:
        report = reports[experiment_id]
        lines.extend([f"## {experiment_id}", "", "```", report.render(), "```", ""])
    with open(args.output, "w") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {args.output}", file=out)
    _finish_observability(result, out)
    return 0


def _cmd_run_report(args, out) -> int:
    from repro.obs.report import render_run_report
    from repro.obs.schema import SchemaError

    if args.trace is None and args.metrics is None:
        print("run-report needs --trace and/or --metrics", file=sys.stderr)
        return 2
    try:
        print(render_run_report(args.trace, args.metrics), file=out)
    except (OSError, SchemaError) as exc:
        print(f"run-report: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "markets":
        return _cmd_markets(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "run-report":
        return _cmd_run_report(args, out)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
