"""Command-line interface.

    python -m repro list
    python -m repro markets
    python -m repro run --scale 0.001 --seed 42
    python -m repro experiment table4 figure9 --scale 0.001
    python -m repro report --scale 0.002 --output EXPERIMENTS.md
    python -m repro run --trace-out trace.jsonl --metrics-out metrics.jsonl
    python -m repro run-report --trace trace.jsonl --metrics metrics.jsonl

``run`` executes the full study and prints a summary; ``experiment``
additionally renders the requested tables/figures; ``report`` writes all
of them to a markdown file.  ``--trace-out`` / ``--metrics-out`` /
``--profile`` turn on the observability layer (:mod:`repro.obs`), and
``run-report`` re-renders a finished campaign from its exported
artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro import Study, StudyConfig, __version__
from repro.experiments import EXPERIMENT_IDS, run_experiment
from repro.markets.profiles import ALL_MARKET_IDS, GOOGLE_PLAY, get_profile

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Beyond Google Play' (IMC 2018): simulate the "
            "app-market ecosystem, crawl it, and regenerate the paper's "
            "tables and figures."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")
    sub.add_parser("markets", help="print the 17 market profiles")

    def workers_arg(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"must be non-negative (0 = auto), got {value}"
            )
        return value

    def add_study_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=42, help="master seed")
        p.add_argument("--scale", type=float, default=0.001,
                       help="fraction of the paper's 6.27M-listing corpus")
        p.add_argument("--no-apks", action="store_true",
                       help="metadata-only crawl (faster)")
        p.add_argument("--full-second-crawl", action="store_true",
                       help="run a full second campaign (enables 'churn')")
        p.add_argument("--workers", type=workers_arg, default=1,
                       help="crawl-engine threads, 0 = auto "
                            "(snapshot identical at any width)")
        p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="journal completed crawl work under DIR "
                            "(enables crash-safe campaigns)")
        p.add_argument("--resume", action="store_true",
                       help="replay an existing checkpoint journal instead "
                            "of re-crawling (requires --checkpoint-dir)")
        p.add_argument("--breaker-threshold", type=int, default=None,
                       metavar="N",
                       help="consecutive failures before a market's circuit "
                            "breaker opens (default: policy default)")
        failure_mode = p.add_mutually_exclusive_group()
        failure_mode.add_argument(
            "--fail-fast", action="store_true",
            help="abort the study when a market exhausts its breaker "
                 "trip budget")
        failure_mode.add_argument(
            "--degrade", action="store_true",
            help="complete the study with dead markets marked degraded "
                 "(the default)")
        p.add_argument("--analysis-workers", type=workers_arg, default=1,
                       metavar="N",
                       help="analysis-engine threads, 0 = auto (every "
                            "artifact and report identical at any width)")
        p.add_argument("--gen-workers", type=workers_arg, default=1,
                       metavar="N",
                       help="world-generation worker processes, 0 = auto "
                            "(world bit-identical at any width)")
        p.add_argument("--no-segment-cache", action="store_true",
                       help="rebuild every APK blob cold instead of "
                            "splicing shared dex segments (bytes are "
                            "identical either way; for benchmarking)")
        p.add_argument("--artifact-cache", default=None, metavar="DIR",
                       help="persist per-APK analysis artifacts under DIR "
                            "(default: <checkpoint-dir>/artifacts when "
                            "--checkpoint-dir is set)")
        p.add_argument("--no-artifact-cache", action="store_true",
                       help="disable the artifact cache even when "
                            "--checkpoint-dir is set")
        p.add_argument("--store-backend", choices=("memory", "sqlite"),
                       default="memory",
                       help="corpus storage backend: 'memory' holds the "
                            "full corpus in RAM, 'sqlite' spills record "
                            "families to disk-backed segment tables and "
                            "streams them (digests identical either way)")
        p.add_argument("--store-batch-size", type=int, default=512,
                       metavar="N",
                       help="streaming-cursor batch width for the sqlite "
                            "backend (records in flight per cursor)")
        p.add_argument("--store-spill-threshold", type=int, default=None,
                       metavar="N",
                       help="record count above which a family spills to "
                            "disk (default: 5000; small worlds stay fully "
                            "in-memory)")
        p.add_argument("--store-dir", default=None, metavar="DIR",
                       help="root for the sqlite backend's segment tables "
                            "and APK vault (default: <checkpoint-dir>/store "
                            "or a temporary directory)")
        p.add_argument("--hostility", default=None, metavar="SPEC",
                       help="make market servers hostile: a comma-joined "
                            "behavior list from {auth,binary,antibot,"
                            "package_list}, 'full' for all four, or "
                            "'profile' to give each market the behaviors "
                            "its profile declares (default: polite fleet)")
        p.add_argument("--identity-pool", type=int, default=None, metavar="N",
                       help="client identities per market lane; hostile "
                            "antibot markets ban a lane's current identity "
                            "(default: 4 when --hostility is set, else 0)")
        p.add_argument("--identity-rotation", default="on_ban",
                       choices=("on_ban", "round_robin"),
                       help="identity-rotation mode (default: on_ban)")
        p.add_argument("--credential-ttl", type=float, default=None,
                       metavar="DAYS",
                       help="override hostile markets' session-token TTL "
                            "in simulated days")
        p.add_argument("--transport", choices=("inprocess", "socket"),
                       default="inprocess",
                       help="how crawl requests reach the markets: "
                            "'inprocess' calls servers directly, 'socket' "
                            "stands up the asyncio serving tier and routes "
                            "every lane over local TCP (snapshots "
                            "identical either way)")
        p.add_argument("--crawl-engine", choices=("thread", "asyncio"),
                       default="thread",
                       help="crawl scheduling substrate: 'thread' lanes on "
                            "a pool, or 'asyncio' lanes multiplexed on one "
                            "event loop (unlocks --pipeline)")
        p.add_argument("--pipeline", type=int, default=1, metavar="N",
                       help="in-flight requests per lane under the asyncio "
                            "engine (requires a polite, unjournaled fleet; "
                            "default: 1)")
        p.add_argument("--clone-strategy",
                       choices=("prefix", "exhaustive", "minhash"),
                       default="prefix",
                       help="candidate blocking for code-clone detection: "
                            "'prefix' (exact prefix filter), 'minhash' "
                            "(MinHash-LSH, vectorized, >=99%% measured "
                            "recall), or 'exhaustive' (quadratic "
                            "reference)")
        p.add_argument("--clone-families", choices=("default", "adversarial"),
                       default="default",
                       help="repackaging profile for world generation: "
                            "'default' matches the paper's clone rates, "
                            "'adversarial' builds deep repackaging chains "
                            "and boosted near-duplicate families")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the campaign span trace to PATH (JSONL)")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics registry to PATH (JSONL)")
        p.add_argument("--profile", action="store_true",
                       help="profile pipeline stages (wall time + peak "
                            "memory) and print the critical-path report")
        p.add_argument("--profile-out", default=None, metavar="PATH",
                       help="write the stage profile to PATH (JSONL; "
                            "implies --profile)")
        p.add_argument("--run-meta", default=None, metavar="PATH",
                       help="write the run manifest (config fingerprint, "
                            "seed/scale, content digests) to PATH for "
                            "'repro obs ingest'")
        p.add_argument("--monitor", action="store_true",
                       help="live campaign monitoring: heartbeat metric "
                            "samples + lane stall watchdog (digest-"
                            "invariant; <=3%% overhead)")
        p.add_argument("--monitor-interval", type=float, default=1.0,
                       metavar="DAYS",
                       help="simulated days of fleet progress between "
                            "heartbeats (default: 1.0)")
        p.add_argument("--stall-budget", type=float, default=5.0,
                       metavar="DAYS",
                       help="simulated days a lane may advance without "
                            "frontier progress before the watchdog flags "
                            "it (default: 5.0)")

    run_parser = sub.add_parser("run", help="run a study and print a summary")
    add_study_args(run_parser)

    exp_parser = sub.add_parser("experiment", help="run specific experiments")
    add_study_args(exp_parser)
    exp_parser.add_argument("ids", nargs="+", metavar="EXPERIMENT",
                            help="experiment ids (see 'list')")

    report_parser = sub.add_parser("report", help="write all experiments to markdown")
    add_study_args(report_parser)
    report_parser.add_argument("--output", default="EXPERIMENTS.md")

    rr_parser = sub.add_parser(
        "run-report",
        help="render a campaign report from exported observability artifacts")
    rr_parser.add_argument("--trace", default=None, metavar="PATH",
                           help="a --trace-out artifact to summarize")
    rr_parser.add_argument("--metrics", default=None, metavar="PATH",
                           help="a --metrics-out artifact to re-render")

    lg_parser = sub.add_parser(
        "loadgen",
        help="stand up the serving tier and hammer it with end-user "
             "traffic; reports latency quantiles and throughput")
    lg_parser.add_argument("--seed", type=int, default=42, help="master seed")
    lg_parser.add_argument("--scale", type=float, default=0.001,
                           help="fraction of the paper's corpus to serve")
    lg_parser.add_argument("--users", type=int, default=8,
                           help="concurrent simulated end users (default: 8)")
    lg_parser.add_argument("--requests", type=int, default=25, metavar="N",
                           help="requests each user issues (default: 25)")
    lg_parser.add_argument("--mix", default="search=5,detail=3,download=2",
                           metavar="SPEC",
                           help="traffic mix weights (default: "
                                "search=5,detail=3,download=2)")
    lg_parser.add_argument("--latency-ms", type=float, default=0.0,
                           metavar="MS",
                           help="service latency the tier injects per "
                                "request, asynchronously (default: 0)")
    lg_parser.add_argument("--out", default=None, metavar="PATH",
                           help="record the report into this BENCH_*.json "
                                "artifact (section 'loadgen')")
    lg_parser.add_argument("--metrics-out", default=None, metavar="PATH",
                           help="write the latency histograms to PATH "
                                "(JSONL, for 'repro obs ingest')")

    obs_parser = sub.add_parser(
        "obs", help="run warehouse: ingest, list, diff, and gate runs")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    def add_db_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", default="warehouse.sqlite", metavar="PATH",
                       help="warehouse database (default: warehouse.sqlite)")

    ingest_parser = obs_sub.add_parser(
        "ingest", help="ingest one run's artifacts into the warehouse")
    add_db_arg(ingest_parser)
    ingest_parser.add_argument("--meta", default=None, metavar="PATH",
                               help="the run manifest written by --run-meta")
    ingest_parser.add_argument("--label", default="run",
                               help="run label when no --meta is given")
    ingest_parser.add_argument("--metrics", default=None, metavar="PATH",
                               help="a --metrics-out artifact")
    ingest_parser.add_argument("--trace", default=None, metavar="PATH",
                               help="a --trace-out artifact")
    ingest_parser.add_argument("--profile", default=None, metavar="PATH",
                               help="a --profile-out artifact")
    ingest_parser.add_argument("--bench", action="append", default=[],
                               metavar="PATH",
                               help="a BENCH_*.json artifact (repeatable)")

    runs_parser = obs_sub.add_parser(
        "runs", help="list ingested runs (ingest order)")
    add_db_arg(runs_parser)

    diff_parser = obs_sub.add_parser(
        "diff", help="compare two ingested runs (exact for deterministic "
                     "series, median/MAD baselines for timing)")
    add_db_arg(diff_parser)
    diff_parser.add_argument("a", help="run id (prefix), label, or -N index")
    diff_parser.add_argument("b", help="run id (prefix), label, or -N index")
    diff_parser.add_argument("--strict", action="store_true",
                             help="exit nonzero unless the diff is clean")

    check_parser = obs_sub.add_parser(
        "check", help="evaluate slo.toml rules against a run; exits "
                      "nonzero on breach")
    add_db_arg(check_parser)
    check_parser.add_argument("--rules", default="slo.toml", metavar="PATH",
                              help="TOML rule file (default: slo.toml)")
    check_parser.add_argument("--run", default="-1", metavar="REF",
                              help="run to gate: id (prefix), label, or -N "
                                   "index (default: -1, the latest)")
    check_parser.add_argument("--json", default=None, metavar="PATH",
                              help="also write machine-readable verdicts")

    flame_parser = obs_sub.add_parser(
        "flame", help="export a trace as folded stacks (flamegraph.pl / "
                      "speedscope compatible)")
    flame_parser.add_argument("trace", help="a --trace-out artifact")
    flame_parser.add_argument("--out", default=None, metavar="PATH",
                              help="output path (default: <trace>.folded)")
    return parser


def _artifact_cache_dir(args: argparse.Namespace) -> Optional[str]:
    """Resolve the artifact-cache directory from the CLI flags.

    ``--no-artifact-cache`` wins; an explicit ``--artifact-cache DIR``
    is next; otherwise a checkpointed study defaults to keeping its
    artifacts next to the crawl journal.
    """
    if args.no_artifact_cache:
        return None
    if args.artifact_cache is not None:
        return args.artifact_cache
    if args.checkpoint_dir:
        import os

        return os.path.join(args.checkpoint_dir, "artifacts")
    return None


def _config_from(args: argparse.Namespace) -> StudyConfig:
    from repro.analysis.engine import resolve_analysis_workers
    from repro.crawler.workers import resolve_thread_workers
    from repro.ecosystem.sharding import resolve_gen_workers

    return StudyConfig(
        seed=args.seed,
        scale=args.scale,
        download_apks=not args.no_apks,
        full_second_crawl=args.full_second_crawl,
        crawl_workers=resolve_thread_workers(args.workers),
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        fail_fast=args.fail_fast,
        breaker_threshold=args.breaker_threshold,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile=args.profile,
        profile_out=args.profile_out,
        run_meta=args.run_meta,
        monitor=args.monitor,
        monitor_interval=args.monitor_interval,
        stall_budget=args.stall_budget,
        analysis_workers=resolve_analysis_workers(args.analysis_workers),
        artifact_cache_dir=_artifact_cache_dir(args),
        gen_workers=resolve_gen_workers(args.gen_workers),
        segment_cache=not args.no_segment_cache,
        store_backend=args.store_backend,
        store_batch_size=args.store_batch_size,
        **(
            {"store_spill_threshold": args.store_spill_threshold}
            if args.store_spill_threshold is not None
            else {}
        ),
        store_dir=args.store_dir,
        hostility=args.hostility,
        identity_pool=(
            args.identity_pool
            if args.identity_pool is not None
            else (4 if args.hostility is not None else 0)
        ),
        identity_rotation=args.identity_rotation,
        credential_ttl=args.credential_ttl,
        transport=args.transport,
        crawl_engine=args.crawl_engine,
        crawl_pipeline=args.pipeline,
        clone_strategy=args.clone_strategy,
        clone_families=args.clone_families,
    )


def _cmd_list(out) -> int:
    for experiment_id in EXPERIMENT_IDS:
        print(experiment_id, file=out)
    return 0


def _cmd_markets(out) -> int:
    header = (f"{'id':12s} {'name':16s} {'kind':12s} {'paper size':>11s} "
              f"{'vetting':>8s} {'security':>9s}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        print(
            f"{market_id:12s} {profile.display_name:16s} {profile.kind:12s} "
            f"{profile.paper_size:>11,d} "
            f"{'yes' if profile.app_vetting else 'no':>8s} "
            f"{'yes' if profile.security_check else 'no':>9s}",
            file=out,
        )
    return 0


def _run_study(args, out):
    config = _config_from(args)
    print(f"running study: seed={config.seed} scale={config.scale}", file=out)
    start = time.time()
    result = Study(config).run()
    print(f"done in {time.time() - start:.1f}s: "
          f"{len(result.snapshot):,} listings, "
          f"{len(result.snapshot.packages()):,} packages", file=out)
    return result


def _finish_observability(result, out) -> None:
    """Export artifacts and print the profile (after analyses ran)."""
    if result.engine.workers > 1 or result.engine.cache is not None:
        print(result.engine.stats_line(), file=out)
    for path in result.export_observability():
        print(f"wrote {path}", file=out)
    if result.config.profile:
        print(file=out)
        print(result.obs.profile_report(result.telemetry), file=out)


def _cmd_run(args, out) -> int:
    result = _run_study(args, out)
    snapshot = result.snapshot
    print(file=out)
    print(result.crawl_report(), file=out)
    print(file=out)
    if result.degraded_markets:
        print(f"degraded markets (completed without): "
              f"{', '.join(result.degraded_markets)}", file=out)
    print(f"google play apk coverage: "
          f"{snapshot.apk_coverage(GOOGLE_PLAY):.1%}", file=out)
    if result.config.download_apks:
        from repro.analysis.malware import av_rank_rates
        from repro.markets.profiles import CHINESE_MARKET_IDS

        rates = av_rank_rates(snapshot, result.units, result.vt_scan)
        cn = sum(rates[m][10] for m in CHINESE_MARKET_IDS) / len(CHINESE_MARKET_IDS)
        print(f"malware (AV-rank>=10): GP {rates[GOOGLE_PLAY][10]:.1%} "
              f"vs Chinese avg {cn:.1%}", file=out)
    _finish_observability(result, out)
    return 0


def _cmd_experiment(args, out) -> int:
    unknown = [i for i in args.ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)} "
              f"(try 'repro list')", file=sys.stderr)
        return 2
    result = _run_study(args, out)
    for experiment_id in args.ids:
        print(file=out)
        print(run_experiment(experiment_id, result).render(), file=out)
    _finish_observability(result, out)
    return 0


def _cmd_report(args, out) -> int:
    from repro.experiments import run_all

    result = _run_study(args, out)
    reports = run_all(result)
    lines = ["# EXPERIMENTS — paper vs. measured", ""]
    for experiment_id in EXPERIMENT_IDS:
        report = reports[experiment_id]
        lines.extend([f"## {experiment_id}", "", "```", report.render(), "```", ""])
    with open(args.output, "w") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {args.output}", file=out)
    _finish_observability(result, out)
    return 0


def _cmd_run_report(args, out) -> int:
    from repro.obs.report import render_run_report
    from repro.obs.schema import SchemaError

    if args.trace is None and args.metrics is None:
        print("run-report needs --trace and/or --metrics", file=sys.stderr)
        return 2
    try:
        print(render_run_report(args.trace, args.metrics), file=out)
    except SchemaError as exc:
        # Name the artifact so the operator knows which file to re-export;
        # a schema failure means the artifact, not the renderer, is bad.
        print(f"run-report: invalid artifact: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        path = exc.filename if exc.filename else "artifact"
        print(
            f"run-report: cannot read {path}: "
            f"{type(exc).__name__}: {exc.strerror or exc}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_loadgen(args, out) -> int:
    from repro.ecosystem.generator import EcosystemGenerator
    from repro.markets.server import MarketServer
    from repro.markets.store import build_stores
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.results import BenchResults
    from repro.serving import LoadGenerator, ServingTier, TrafficMix
    from repro.util.simtime import SimClock

    try:
        mix = TrafficMix.parse(args.mix)
    except ValueError as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2
    if args.latency_ms < 0:
        print("loadgen: --latency-ms must be non-negative", file=sys.stderr)
        return 2

    print(f"generating ecosystem (seed={args.seed}, scale={args.scale}) ...",
          file=out)
    world = EcosystemGenerator(seed=args.seed, scale=args.scale).generate()
    stores = build_stores(world)
    clock = SimClock()
    servers = {m: MarketServer(store, clock) for m, store in stores.items()}
    registry = MetricsRegistry() if args.metrics_out else None

    tier = ServingTier(servers, latency_s=args.latency_ms / 1000.0).start()
    try:
        generator = LoadGenerator(
            tier,
            servers,
            users=args.users,
            requests_per_user=args.requests,
            mix=mix,
            seed=args.seed,
            day=clock.now,
            registry=registry,
        )
        print(f"load: {args.users} users x {args.requests} requests "
              f"(mix {mix.describe()}, tier latency {args.latency_ms:g}ms) "
              f"across {len(servers)} markets", file=out)
        report = generator.run()
    finally:
        tier.stop()

    print(f"served {report.requests} requests in {report.wall_seconds:.2f}s "
          f"({report.rps:.0f} req/s)", file=out)
    print(f"latency: p50 {report.p50_ms:.2f}ms, p99 {report.p99_ms:.2f}ms",
          file=out)
    print(f"outcomes: {report.ok} ok, {report.shed} shed (quota), "
          f"{report.errors} errors", file=out)
    if args.out:
        bench = BenchResults("serving", seed=args.seed, scale=args.scale,
                             path=args.out)
        path = bench.record("loadgen", **report.to_dict())
        print(f"wrote {path}", file=out)
    if args.metrics_out:
        registry.export_jsonl(args.metrics_out)
        print(f"wrote {args.metrics_out}", file=out)
    return 0 if report.errors == 0 else 1


def _cmd_obs(args, out) -> int:
    from repro.obs.schema import SchemaError
    from repro.obs.warehouse import RunWarehouse, WarehouseError

    if args.obs_command == "flame":
        from repro.obs.flame import export_folded
        from repro.obs.schema import validate_trace_file

        try:
            records = validate_trace_file(args.trace)
        except (OSError, SchemaError) as exc:
            print(f"obs flame: {args.trace}: {exc}", file=sys.stderr)
            return 1
        out_path = args.out if args.out else f"{args.trace}.folded"
        count = export_folded(records, out_path)
        print(f"wrote {out_path} ({count} stacks)", file=out)
        return 0

    try:
        warehouse = RunWarehouse(args.db)
    except Exception as exc:  # StoreError subclasses vary by backend
        print(f"obs: cannot open {args.db}: {exc}", file=sys.stderr)
        return 1
    try:
        if args.obs_command == "ingest":
            try:
                manifest = warehouse.ingest_run(
                    label=args.label,
                    meta=args.meta,
                    metrics=args.metrics,
                    trace=args.trace,
                    profile=args.profile,
                    bench=args.bench,
                )
            except (OSError, SchemaError, WarehouseError) as exc:
                print(f"obs ingest: {exc}", file=sys.stderr)
                return 1
            verb = "ingested" if manifest["created"] else "already ingested"
            print(
                f"{verb} {manifest['run_id']} "
                f"label={manifest['label']} "
                f"fingerprint={manifest['fingerprint'] or '-'}",
                file=out,
            )
            return 0
        if args.obs_command == "runs":
            print(RunWarehouse.render_runs(warehouse.runs()), file=out)
            return 0
        if args.obs_command == "diff":
            try:
                diff = warehouse.diff(args.a, args.b)
            except WarehouseError as exc:
                print(f"obs diff: {exc}", file=sys.stderr)
                return 1
            print(RunWarehouse.render_diff(diff), file=out)
            if args.strict and not diff["clean"]:
                return 1
            return 0
        if args.obs_command == "check":
            from repro.obs.slo import (
                SloError,
                check_passed,
                check_run,
                load_rules,
                render_check_report,
                results_to_json,
            )

            try:
                rules = load_rules(args.rules)
            except (OSError, SloError) as exc:
                print(f"obs check: {args.rules}: {exc}", file=sys.stderr)
                return 2
            try:
                results, manifest = check_run(warehouse, rules, ref=args.run)
            except WarehouseError as exc:
                print(f"obs check: {exc}", file=sys.stderr)
                return 2
            print(render_check_report(results, manifest), file=out)
            if args.json:
                with open(args.json, "w") as handle:
                    handle.write(results_to_json(results, manifest))
                    handle.write("\n")
                print(f"wrote {args.json}", file=out)
            return 0 if check_passed(results) else 1
        raise AssertionError(
            f"unhandled obs command {args.obs_command}")  # pragma: no cover
    finally:
        warehouse.close()


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "markets":
        return _cmd_markets(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "run-report":
        return _cmd_run_report(args, out)
    if args.command == "loadgen":
        return _cmd_loadgen(args, out)
    if args.command == "obs":
        return _cmd_obs(args, out)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
