"""Study orchestration: configuration, pipeline, and report rendering."""

from repro.core.config import StudyConfig
from repro.core.study import Study, StudyResult
from repro.core.reports import FigureReport, TableReport

__all__ = ["StudyConfig", "Study", "StudyResult", "TableReport", "FigureReport"]
