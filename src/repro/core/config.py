"""Study configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.net.faults import FaultPlan

__all__ = ["StudyConfig"]


@dataclass(frozen=True)
class StudyConfig:
    """Configuration for one end-to-end study run.

    Parameters
    ----------
    seed:
        Master seed; every stochastic component derives from it, so the
        same config reproduces the exact corpus, crawl, and reports.
    scale:
        Fraction of the paper's 6.27M-listing corpus to synthesize.
        The default (0.002, ~12.5K listings) regenerates every table and
        figure shape in well under a minute; tests use smaller values.
    download_apks:
        Whether the crawler downloads and parses APKs.  Metadata-only
        runs are much faster and still support Figures 1-2, 4, 6-9.
    gp_seed_share:
        Share of Google Play packages present in the public seed list
        (PrivacyGrade supplied ~74% of the catalog in the paper).
    first_crawl_days / second_crawl_days:
        Simulated duration of the two campaigns (the paper's took ~15
        days and ~1 week).
    """

    seed: int = 42
    scale: float = 0.002
    download_apks: bool = True
    gp_seed_share: float = 0.74
    first_crawl_days: float = 15.0
    second_crawl_days: float = 7.0
    min_market_size: int = 40
    #: Run a full second campaign (metadata for every market) in
    #: addition to the targeted recheck; enables the longitudinal churn
    #: analysis at the cost of roughly doubling crawl time.
    full_second_crawl: bool = False
    #: Crawl-engine thread width (one lane per market; the snapshot is
    #: identical at any width, only wall-clock time changes).
    crawl_workers: int = 1
    #: Fault mix every market server injects (None = clean servers).
    fault_plan: Optional[FaultPlan] = None
    #: Per-market fault-plan overrides; a market listed here ignores
    #: ``fault_plan``.  This is how a single market is blacked out while
    #: the rest of the fleet stays healthy.
    market_fault_plans: Optional[Mapping[str, FaultPlan]] = None
    #: Directory for the crawl's checkpoint journal (None disables
    #: checkpointing).  With ``resume=True`` a restarted study replays
    #: the journal and produces a bit-identical snapshot.
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    #: When a market's circuit breaker exhausts its trip budget:
    #: ``fail_fast=True`` aborts the study, the default degrades —
    #: the campaign completes with that market marked degraded.
    fail_fast: bool = False
    #: Override the breaker's consecutive-failure threshold (None keeps
    #: the default policy).
    breaker_threshold: Optional[int] = None
    #: Write the campaign's span trace to this JSONL path (None leaves
    #: tracing off — the crawl hot path then costs one ``is None`` test).
    trace_out: Optional[str] = None
    #: Write the metrics registry to this JSONL path (None leaves the
    #: registry off; telemetry falls back to a private registry).
    metrics_out: Optional[str] = None
    #: Profile pipeline stages (wall time + tracemalloc peak memory) and
    #: print the critical-path report after the run.
    profile: bool = False
    #: Write the stage profile to this JSONL path (implies profiling;
    #: the artifact ``repro obs ingest`` reads).
    profile_out: Optional[str] = None
    #: Write the run manifest (config, seed/scale, content digests, the
    #: artifact paths above) to this JSON path — the ``--run-meta`` file
    #: ``repro obs ingest`` keys the warehouse on.
    run_meta: Optional[str] = None
    #: Live campaign monitoring: heartbeat gauge samples plus the lane
    #: stall watchdog.  Digest-invariant — the monitor only observes.
    monitor: bool = False
    #: Simulated days of fleet progress between heartbeats.
    monitor_interval: float = 1.0
    #: Simulated days a lane may advance without frontier progress
    #: before the watchdog flags it stalled.
    stall_budget: float = 5.0
    #: Analysis-engine worker width for the post-crawl pipeline (per-APK
    #: library features, VT scans, permission extraction, clone scoring,
    #: experiment renders).  Every analysis artifact is bit-identical at
    #: any width; only wall-clock time changes.
    analysis_workers: int = 1
    #: Directory of the persistent content-addressed artifact cache
    #: (``(apk_md5, analyzer, version)`` -> result).  ``None`` disables
    #: caching; re-runs then recompute every per-APK artifact.
    artifact_cache_dir: Optional[str] = None
    #: World-generation worker processes.  The world is bit-identical at
    #: any width (index-keyed RNG substreams — see DESIGN.md's sharding
    #: contract); only generation wall-clock time changes.
    gen_workers: int = 1
    #: Share encoded dex segments across the market×version APK blob
    #: fan-out.  Blob bytes are identical either way; disabling is only
    #: useful for benchmarking the cold build path.
    segment_cache: bool = True
    #: Corpus storage backend.  ``"memory"`` (default) holds world,
    #: snapshot, and units fully in RAM — today's behavior.  ``"sqlite"``
    #: spills record families to disk-backed segment tables once they
    #: cross ``store_spill_threshold`` and serves them through batched
    #: streaming cursors; every ``content_digest()`` is bit-identical
    #: between backends (the out-of-core contract, see DESIGN.md).
    store_backend: str = "memory"
    #: Streaming-cursor batch width for the sqlite backend: how many
    #: records a cursor (and the analysis engine's worker pool) holds in
    #: flight at once.
    store_batch_size: int = 512
    #: Record count above which a family spills to disk.  Small worlds
    #: stay fully in-memory under the sqlite backend, bit-identical to
    #: the memory backend in layout as well as digest.
    store_spill_threshold: int = 5000
    #: Root directory for the sqlite backend's segment tables and APK
    #: blob vault.  ``None`` resolves to ``<checkpoint_dir>/store`` when
    #: checkpointing is on, else a self-cleaning temporary directory.
    store_dir: Optional[str] = None
    #: Hostility spec applied to every market server (``None`` = polite
    #: fleet, today's behavior).  A comma-joined behavior list
    #: (``"auth,binary"``), ``"full"`` for all four behaviors, or
    #: ``"profile"`` to give each market the behaviors its
    #: :class:`~repro.markets.profiles.MarketProfile` declares.
    hostility: Optional[str] = None
    #: Per-market hostility-spec overrides; a market listed here ignores
    #: ``hostility`` (an empty/``"none"`` spec makes just that market
    #: polite).
    market_hostility: Optional[Mapping[str, str]] = None
    #: Client identities per market lane (0 disables identity rotation;
    #: hostile antibot markets then ban the lane's single identity).
    identity_pool: int = 0
    #: Identity-rotation mode (:data:`repro.net.identity.ROTATION_MODES`).
    identity_rotation: str = "on_ban"
    #: Override hostile markets' session-token TTL in simulated days
    #: (None keeps each policy's own TTL).
    credential_ttl: Optional[float] = None
    #: How crawl requests reach the market servers.  ``"inprocess"``
    #: (default) calls ``server.handle`` directly — the fast path.
    #: ``"socket"`` stands up a :class:`~repro.serving.ServingTier`
    #: (one asyncio TCP listener per market) and routes every lane
    #: through it; snapshots are bit-identical either way (the
    #: transport contract, see DESIGN.md).
    transport: str = "inprocess"
    #: Crawl scheduling substrate.  ``"thread"`` (default) runs one
    #: request-at-a-time lanes on a thread pool; ``"asyncio"``
    #: multiplexes every lane's requests on one event loop and unlocks
    #: ``crawl_pipeline``.
    crawl_engine: str = "thread"
    #: Candidate-generation strategy for the code-based clone detector:
    #: ``"prefix"`` (default, exact prefix-filtered blocking),
    #: ``"minhash"`` (MinHash-LSH, vectorized, recall measured against
    #: the exhaustive reference), or ``"exhaustive"`` (the quadratic
    #: reference enumeration).
    clone_strategy: str = "prefix"
    #: Repackaging profile for world generation: ``"default"``
    #: reproduces the paper's Table 3 clone rates; ``"adversarial"``
    #: builds deep repackaging chains and boosted near-duplicate
    #: families — the corpus shape the clone benchmarks stress.
    clone_families: str = "default"
    #: Per-lane in-flight request depth under the asyncio engine.
    #: Depth > 1 reorders the request stream each server observes, so
    #: it requires the asyncio engine and a polite, unjournaled fleet
    #: (no faults, no hostility, no checkpointing).
    crawl_pipeline: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if not 0 < self.gp_seed_share <= 1:
            raise ValueError("gp_seed_share must be in (0, 1]")
        if self.crawl_workers < 1:
            raise ValueError(f"crawl_workers must be positive, got {self.crawl_workers}")
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume requires checkpoint_dir")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be positive, got {self.breaker_threshold}"
            )
        if self.analysis_workers < 1:
            raise ValueError(
                f"analysis_workers must be positive, got {self.analysis_workers}"
            )
        if self.gen_workers < 1:
            raise ValueError(f"gen_workers must be positive, got {self.gen_workers}")
        if self.store_backend not in ("memory", "sqlite"):
            raise ValueError(
                f"store_backend must be 'memory' or 'sqlite', "
                f"got {self.store_backend!r}"
            )
        if self.store_batch_size < 1:
            raise ValueError(
                f"store_batch_size must be positive, got {self.store_batch_size}"
            )
        if self.store_spill_threshold < 0:
            raise ValueError(
                f"store_spill_threshold must be non-negative, "
                f"got {self.store_spill_threshold}"
            )
        from repro.markets.hostility import HostilityPolicy
        from repro.net.identity import ROTATION_MODES

        if self.hostility is not None and self.hostility != "profile":
            HostilityPolicy.from_spec(self.hostility)  # validates the spec
        if self.market_hostility:
            for market_id, spec in self.market_hostility.items():
                if spec != "profile":
                    HostilityPolicy.from_spec(spec)
        if self.identity_pool < 0:
            raise ValueError(
                f"identity_pool must be non-negative, got {self.identity_pool}"
            )
        if self.identity_rotation not in ROTATION_MODES:
            raise ValueError(
                f"identity_rotation must be one of {ROTATION_MODES}, "
                f"got {self.identity_rotation!r}"
            )
        if self.credential_ttl is not None and self.credential_ttl <= 0:
            raise ValueError(
                f"credential_ttl must be positive, got {self.credential_ttl}"
            )
        if self.transport not in ("inprocess", "socket"):
            raise ValueError(
                f"transport must be 'inprocess' or 'socket', "
                f"got {self.transport!r}"
            )
        if self.crawl_engine not in ("thread", "asyncio"):
            raise ValueError(
                f"crawl_engine must be 'thread' or 'asyncio', "
                f"got {self.crawl_engine!r}"
            )
        if self.crawl_pipeline < 1:
            raise ValueError(
                f"crawl_pipeline must be positive, got {self.crawl_pipeline}"
            )
        if self.crawl_pipeline > 1:
            if self.crawl_engine != "asyncio":
                raise ValueError("crawl_pipeline > 1 requires crawl_engine='asyncio'")
            # Pipelined requests reach the server out of order, which
            # breaks anything keyed on server-side request ordinals:
            # fault injection, hostility screening, and the journal's
            # state high-water marks.
            if self.checkpoint_dir is not None:
                raise ValueError("crawl_pipeline > 1 is incompatible with checkpointing")
            if self.fault_plan is not None or self.market_fault_plans:
                raise ValueError("crawl_pipeline > 1 is incompatible with fault injection")
            if self.hostility is not None or self.market_hostility:
                raise ValueError("crawl_pipeline > 1 is incompatible with hostility")
        from repro.analysis.clones import CodeCloneDetector
        from repro.ecosystem.threats import RepackagingModel

        if self.clone_strategy not in CodeCloneDetector.STRATEGIES:
            raise ValueError(
                f"clone_strategy must be one of {CodeCloneDetector.STRATEGIES}, "
                f"got {self.clone_strategy!r}"
            )
        if self.clone_families not in RepackagingModel.PROFILES:
            raise ValueError(
                f"clone_families must be one of {RepackagingModel.PROFILES}, "
                f"got {self.clone_families!r}"
            )
        if self.monitor_interval <= 0:
            raise ValueError(
                f"monitor_interval must be positive, got {self.monitor_interval}"
            )
        if self.stall_budget <= 0:
            raise ValueError(
                f"stall_budget must be positive, got {self.stall_budget}"
            )
