"""Plain-text chart rendering.

The paper's figures are bar charts, CDFs, box plots, and a heatmap; this
module renders their data as aligned unicode-free ASCII so reports read
in any terminal and diff cleanly in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = ["bar_chart", "cdf_plot", "heatmap", "grouped_bars"]

_BAR = "#"
_SHADES = " .:-=+*%@"


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.2f}",
    sort: bool = False,
) -> str:
    """Horizontal bar chart; one row per labeled value."""
    if not values:
        return "(no data)"
    items: List[Tuple[str, float]] = list(values.items())
    if sort:
        items.sort(key=lambda kv: kv[1], reverse=True)
    label_width = max(len(str(k)) for k, _ in items)
    peak = max((v for _, v in items if v is not None), default=0.0)
    lines = []
    for label, value in items:
        if value is None:
            lines.append(f"{str(label):<{label_width}}  (n/a)")
            continue
        filled = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(
            f"{str(label):<{label_width}}  {_BAR * filled:<{width}}  "
            + fmt.format(value)
        )
    return "\n".join(lines)


def grouped_bars(
    series: Mapping[str, Mapping[str, float]],
    width: int = 30,
    fmt: str = "{:.2f}",
) -> str:
    """Several named series over the same categories, rendered per category."""
    if not series:
        return "(no data)"
    categories: List[str] = []
    for per_category in series.values():
        for category in per_category:
            if category not in categories:
                categories.append(category)
    peak = max(
        (v for per_category in series.values() for v in per_category.values()
         if v is not None),
        default=0.0,
    )
    name_width = max(len(name) for name in series)
    lines = []
    for category in categories:
        lines.append(f"[{category}]")
        for name, per_category in series.items():
            value = per_category.get(category)
            if value is None:
                lines.append(f"  {name:<{name_width}}  (n/a)")
                continue
            filled = 0 if peak <= 0 else int(round(width * value / peak))
            lines.append(
                f"  {name:<{name_width}}  {_BAR * filled:<{width}}  "
                + fmt.format(value)
            )
    return "\n".join(lines)


def cdf_plot(
    xs: Sequence[float],
    cdf: Sequence[float],
    height: int = 10,
    width: Optional[int] = None,
) -> str:
    """A coarse ASCII CDF curve: x on columns, cumulative share on rows."""
    if len(xs) != len(cdf) or not xs:
        raise ValueError("xs and cdf must be equal-length and non-empty")
    width = width or min(60, len(xs))
    # Resample columns evenly across the x index range.
    columns = [
        cdf[min(len(cdf) - 1, int(round(i * (len(cdf) - 1) / max(1, width - 1))))]
        for i in range(width)
    ]
    rows = []
    for level in range(height, 0, -1):
        threshold = level / height
        row = "".join(_BAR if value >= threshold else " " for value in columns)
        rows.append(f"{threshold:4.1f} |{row}")
    rows.append("     +" + "-" * width)
    rows.append(f"      x: {xs[0]:g} .. {xs[-1]:g}")
    return "\n".join(rows)


def heatmap(
    counts: Mapping[Tuple[str, str], float],
    rows: Sequence[str],
    columns: Sequence[str],
    cell_width: int = 4,
) -> str:
    """Shaded grid (row = source, column = destination)."""
    peak = max((v for v in counts.values() if v), default=0.0)
    label_width = max((len(r) for r in rows), default=4)
    header = " " * label_width + " " + " ".join(
        f"{c[:cell_width]:>{cell_width}}" for c in columns
    )
    lines = [header]
    for row in rows:
        cells = []
        for column in columns:
            value = counts.get((row, column), 0)
            if peak <= 0 or not value:
                shade = _SHADES[0]
            else:
                idx = min(len(_SHADES) - 1,
                          1 + int((len(_SHADES) - 2) * value / peak))
                shade = _SHADES[idx]
            cells.append(shade * cell_width)
        lines.append(f"{row:<{label_width}} " + " ".join(cells))
    if peak > 0:
        lines.append(f"(scale: blank=0 .. '{_SHADES[-1]}'={peak:g})")
    else:
        lines.append("(all cells zero)")
    return "\n".join(lines)
