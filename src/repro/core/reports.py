"""Report structures: tables and figures with text rendering.

Experiments return :class:`TableReport` / :class:`FigureReport` objects.
``render()`` produces aligned plain-text suitable for terminals and for
EXPERIMENTS.md; cells may carry paper-reference values for side-by-side
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.util.rng import stable_hash64

__all__ = ["TableReport", "FigureReport", "format_cell", "report_digest"]


def _canonical(value: object) -> object:
    """A hashable, deterministic form of arbitrary report data.

    Dict keys are stringified (figure data uses tuple keys), floats kept
    as repr (bit-identical or not at all), containers recursed in order.
    """
    if isinstance(value, dict):
        return tuple(
            (str(k), _canonical(v)) for k, v in value.items()
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def report_digest(report: "TableReport | FigureReport") -> str:
    """A stable content digest of one report's full data.

    Bit-identical data -> identical digest, regardless of how (serial,
    parallel, or cache-resumed run) the report was produced.
    """
    return f"{stable_hash64('report', _canonical(report.as_payload())):016x}"


def format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class TableReport:
    """A table with named columns."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(cells)} cells, "
                f"table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def column(self, name: str) -> List[object]:
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def row_map(self, key_column: str = None) -> Dict[object, Sequence[object]]:
        """Rows keyed by their first (or named) column."""
        idx = 0 if key_column is None else list(self.columns).index(key_column)
        return {row[idx]: row for row in self.rows}

    def as_payload(self) -> Dict[str, object]:
        """Everything that defines this table, for content digesting."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def content_digest(self) -> str:
        """Stable digest of the table's full contents."""
        return report_digest(self)

    def render(self) -> str:
        cells = [[format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(col)), *(len(r[i]) for r in cells)) if cells else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass
class FigureReport:
    """A figure's underlying data series."""

    experiment_id: str
    title: str
    data: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def as_payload(self) -> Dict[str, object]:
        """Everything that defines this figure, for content digesting."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "data": self.data,
            "notes": list(self.notes),
        }

    def content_digest(self) -> str:
        """Stable digest of the figure's full contents."""
        return report_digest(self)

    def render(self, max_items: int = 24) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for key, value in self.data.items():
            lines.append(f"[{key}]")
            lines.extend(self._render_value(value, max_items))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    @staticmethod
    def _render_value(value: object, max_items: int) -> List[str]:
        if isinstance(value, dict):
            items = list(value.items())
            lines = [
                f"  {k}: {format_cell(v) if not isinstance(v, (list, dict)) else v}"
                for k, v in items[:max_items]
            ]
            if len(items) > max_items:
                lines.append(f"  ... ({len(items) - max_items} more)")
            return lines
        if isinstance(value, (list, tuple)):
            rendered = ", ".join(format_cell(v) for v in list(value)[:max_items])
            suffix = ", ..." if len(value) > max_items else ""
            return [f"  [{rendered}{suffix}]"]
        return [f"  {format_cell(value)}"]
