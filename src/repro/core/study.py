"""The end-to-end study pipeline.

``Study(config).run()`` executes the paper's methodology:

1. synthesize the ecosystem (:mod:`repro.ecosystem`),
2. stand up the 17 market servers and crawl them (August 2017 campaign:
   BFS/index/category discovery, parallel cross-market search, APK
   downloads with Google Play rate limiting + archive backfill),
3. let markets clean up their catalogs over the following 8 months,
4. run the second, targeted campaign (April 2018) checking whether
   flagged apps are still hosted.

The returned :class:`StudyResult` exposes the crawl snapshot plus
lazily-computed analysis artifacts (app units, library detection,
VirusTotal scans, clone/fake detections, over-privilege measurements,
and the removal report) that the experiment modules consume.
"""

from __future__ import annotations

import threading
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.clones import (
    CodeCloneAnalysis,
    CodeCloneDetector,
    SignatureCloneAnalysis,
    detect_signature_clones,
)
from repro.analysis.corpus import AppUnit, build_units
from repro.analysis.engine import AnalysisEngine
from repro.analysis.fake import FakeAppAnalysis, detect_fakes
from repro.analysis.libraries import LibraryDetection, LibraryDetector
from repro.analysis.malware import MalwareScan, scan_units
from repro.analysis.permissions import OverprivilegeResult, analyze_overprivilege
from repro.analysis.postanalysis import (
    RemovalReport,
    flagged_packages_by_market,
    removal_report,
)
from repro.analysis.virustotal import VirusTotalService
from repro.apk.archive import SegmentCache
from repro.core.config import StudyConfig
from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.crawler import CrawlCoordinator
from repro.crawler.journal import CrawlJournal
from repro.crawler.snapshot import Snapshot
from repro.crawler.telemetry import CrawlTelemetry
from repro.ecosystem.generator import EcosystemGenerator
from repro.ecosystem.world import World
from repro.markets.evolution import apply_catalog_updates
from repro.markets.hostility import HostilityPolicy
from repro.markets.profiles import GOOGLE_PLAY, get_profile
from repro.markets.removal_apply import apply_store_removals
from repro.markets.server import MarketServer
from repro.markets.store import MarketStore, build_stores
from repro.net.breaker import DEFAULT_BREAKER_POLICY, BreakerPolicy
from repro.net.identity import IdentityPolicy
from repro.obs import NULL_OBS, Observability
from repro.util.rng import RngFactory, stable_hash32
from repro.util.simtime import SECOND_CRAWL_DAY, SimClock

__all__ = ["Study", "StudyResult"]


class StudyResult:
    """Everything one study run produced."""

    def __init__(
        self,
        config: StudyConfig,
        world: World,
        stores: Mapping[str, MarketStore],
        servers: Mapping[str, MarketServer],
        clock: SimClock,
        snapshot: Snapshot,
        presence: Mapping[str, Mapping[str, bool]],
        removal_outcome: Mapping[str, Tuple[int, int]],
        second_snapshot: Optional[Snapshot] = None,
        update_outcome: Optional[Mapping[str, int]] = None,
        obs: Observability = NULL_OBS,
        engine: Optional[AnalysisEngine] = None,
        corpus=None,
    ):
        self.config = config
        self.world = world
        #: The disk corpus store (sqlite backend), or None.  Held here
        #: so the store outlives the run: snapshot and world cursors
        #: read through it for the result's whole lifetime.
        self.corpus = corpus
        self.stores = dict(stores)
        self.servers = dict(servers)
        self.clock = clock
        self.snapshot = snapshot
        self.presence = dict(presence)
        self.removal_outcome = dict(removal_outcome)
        self.second_snapshot = second_snapshot
        self.update_outcome = dict(update_outcome or {})
        self.obs = obs
        #: The analysis execution layer: worker pool + artifact cache.
        self.engine = engine or AnalysisEngine.from_config(config, obs)
        #: Override for the VT scanning backend (None = default service).
        self.vt_service = None
        self._materialize_lock = threading.Lock()

    # -- crawl telemetry ---------------------------------------------------

    @property
    def telemetry(self) -> Optional["CrawlTelemetry"]:
        """The first campaign's crawl telemetry (per-market counters)."""
        stats = getattr(self.snapshot, "stats", None)
        return stats.telemetry if stats is not None else None

    def crawl_report(self) -> str:
        """Render the per-market crawl telemetry table."""
        telemetry = self.telemetry
        if telemetry is None:
            return "no crawl telemetry recorded"
        report = telemetry.stats_report()
        degraded = self.degraded_markets
        if degraded and not telemetry.degraded_markets():
            # Belt and braces: health normally rides on the telemetry,
            # but a loaded snapshot may carry it alone.
            report += "\ndegraded markets: " + ", ".join(degraded)
        return report

    @property
    def degraded_markets(self) -> List[str]:
        """Markets the first campaign completed without (quarantined)."""
        return self.snapshot.degraded_markets()

    # -- observability exports ---------------------------------------------

    def export_observability(self) -> List[str]:
        """Write the trace/metrics artifacts the config asked for.

        Returns the paths written.  Called by the CLI *after* the
        analyses ran, so analysis-stage spans land in the trace.
        """
        written: List[str] = []
        if self.config.trace_out is not None:
            self.obs.export_trace(self.config.trace_out)
            written.append(self.config.trace_out)
        if self.config.metrics_out is not None:
            self.obs.export_metrics(self.config.metrics_out)
            written.append(self.config.metrics_out)
        if self.config.profile_out is not None:
            self.obs.export_profile(self.config.profile_out)
            written.append(self.config.profile_out)
        if self.config.run_meta is not None:
            self.write_run_meta(self.config.run_meta)
            written.append(self.config.run_meta)
        return written

    def write_run_meta(self, path: str) -> None:
        """Write the run manifest ``repro obs ingest`` keys a run on."""
        import json
        from dataclasses import asdict

        from repro.obs.results import current_git_commit
        from repro.obs.warehouse import RUN_SCHEMA, config_fingerprint

        config = self.config
        meta = {
            "schema": RUN_SCHEMA,
            "label": f"study-seed{config.seed}",
            "seed": config.seed,
            "scale": config.scale,
            "fingerprint": config_fingerprint(config),
            "git_commit": current_git_commit(),
            "config": {
                k: v if isinstance(v, (int, float, str, bool, type(None))) else repr(v)
                for k, v in asdict(config).items()
            },
            "digests": {"snapshot": self.snapshot.content_digest()},
            "artifacts": {
                "trace": config.trace_out,
                "metrics": config.metrics_out,
                "profile": config.profile_out,
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- lazily computed analysis artifacts --------------------------------

    @cached_property
    def units(self) -> List[AppUnit]:
        with self.obs.stage("analysis.units"):
            return build_units(self.snapshot)

    @cached_property
    def units_by_key(self) -> Dict[Tuple[str, Optional[str]], AppUnit]:
        return {(u.package, u.signer): u for u in self.units}

    @cached_property
    def library_detection(self) -> LibraryDetection:
        with self.obs.stage("analysis.libraries"):
            return LibraryDetector().fit(self.units, engine=self.engine)

    @cached_property
    def vt_scan(self) -> MalwareScan:
        with self.obs.stage("analysis.vt_scan"):
            return scan_units(
                self.units,
                self.vt_service or VirusTotalService(),
                engine=self.engine,
            )

    @cached_property
    def signature_clones(self) -> SignatureCloneAnalysis:
        with self.obs.stage("analysis.signature_clones"):
            return detect_signature_clones(self.units)

    @cached_property
    def code_clones(self) -> CodeCloneAnalysis:
        with self.obs.stage("analysis.code_clones"):
            detector = CodeCloneDetector(
                candidate_strategy=self.config.clone_strategy
            )
            return detector.detect(
                self.units, self.library_detection, engine=self.engine
            )

    @cached_property
    def fakes(self) -> FakeAppAnalysis:
        with self.obs.stage("analysis.fakes"):
            return detect_fakes(self.units)

    @cached_property
    def overprivilege(self) -> OverprivilegeResult:
        with self.obs.stage("analysis.overprivilege"):
            return analyze_overprivilege(self.units, engine=self.engine)

    @cached_property
    def flagged_by_market(self) -> Dict[str, Set[str]]:
        with self.obs.stage("analysis.flagged"):
            return flagged_packages_by_market(self.snapshot, self.units, self.vt_scan)

    @cached_property
    def removal(self) -> RemovalReport:
        with self.obs.stage("analysis.removal"):
            return removal_report(self.flagged_by_market, self.presence)

    @cached_property
    def all_clone_units(self) -> Set[Tuple[str, Optional[str]]]:
        return set(self.signature_clones.clone_units) | set(
            self.code_clones.clone_units
        )

    def materialize(self) -> "StudyResult":
        """Compute every lazy analysis artifact exactly once.

        Thread-safe: ``cached_property`` offers no cross-thread
        guarantee, so concurrent experiment runners call this first —
        one thread does the work (through the engine's own worker pool),
        everyone after that hits plain attribute reads.
        """
        with self._materialize_lock:
            self.units
            self.units_by_key
            self.library_detection
            self.vt_scan
            self.signature_clones
            self.code_clones
            self.fakes
            self.overprivilege
            self.flagged_by_market
            self.removal
            self.all_clone_units
        return self


class Study:
    """Runs the full two-campaign study."""

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or StudyConfig()
        self.obs = obs if obs is not None else Observability.from_flags(
            trace=self.config.trace_out is not None,
            metrics=self.config.metrics_out is not None,
            profile=self.config.profile or self.config.profile_out is not None,
            monitor=self.config.monitor,
            monitor_interval=self.config.monitor_interval,
            stall_budget=self.config.stall_budget,
        )

    def _gp_seeds(self, stores: Mapping[str, MarketStore], clock: SimClock) -> List[str]:
        """The public seed list (PrivacyGrade substitution): a stable
        ~74% sample of Google Play package names."""
        cutoff = int(self.config.gp_seed_share * 10_000)
        return [
            listing.package
            for listing in stores[GOOGLE_PLAY].iter_live(clock.now)
            if stable_hash32("privacygrade", listing.package) % 10_000 < cutoff
        ]

    def _breaker_policy(self) -> BreakerPolicy:
        from dataclasses import replace

        policy = DEFAULT_BREAKER_POLICY
        if self.config.breaker_threshold is not None:
            policy = replace(policy, failure_threshold=self.config.breaker_threshold)
        return policy

    def _hostility_policy(self, market_id: str) -> Optional[HostilityPolicy]:
        """Resolve one market's hostility behaviors from the config."""
        from dataclasses import replace

        config = self.config
        spec = (config.market_hostility or {}).get(market_id, config.hostility)
        if spec is None:
            return None
        if spec == "profile":
            behaviors = get_profile(market_id).hostility
            policy = (
                HostilityPolicy.for_behaviors(behaviors) if behaviors else None
            )
        else:
            policy = HostilityPolicy.from_spec(spec)
        if policy is not None and config.credential_ttl is not None:
            policy = replace(policy, token_ttl=config.credential_ttl)
        return policy

    def _identity_policy(self) -> Optional[IdentityPolicy]:
        if self.config.identity_pool <= 0:
            return None
        return IdentityPolicy(
            size=self.config.identity_pool,
            rotation=self.config.identity_rotation,
        )

    def run(self) -> StudyResult:
        config = self.config
        obs = self.obs
        rngs = RngFactory(config.seed)
        from repro.store.corpus import CorpusStore

        corpus = CorpusStore.from_config(config)

        with obs.stage("ecosystem"):
            from repro.ecosystem.threats import RepackagingModel

            world = EcosystemGenerator(
                seed=config.seed,
                scale=config.scale,
                min_market_size=config.min_market_size,
                gen_workers=config.gen_workers,
                obs=obs,
                repackaging=RepackagingModel.for_profile(config.clone_families),
            ).generate()
            if corpus is not None and len(world.apps) > corpus.spill_threshold:
                # Past the threshold the app list moves to the segment
                # table; below it the world stays a plain in-memory list
                # (bit-identical to the memory backend).
                world.spill(corpus)
            segments = SegmentCache() if config.segment_cache else None
            stores = build_stores(
                world, segments=segments, segment_cache=config.segment_cache
            )
        clock = SimClock()
        overrides = dict(config.market_fault_plans or {})
        servers = {
            m: MarketServer(
                store,
                clock,
                faults=overrides.get(m, config.fault_plan),
                hostility=self._hostility_policy(m),
            )
            for m, store in stores.items()
        }

        # The socket transport promotes the fleet to a real serving
        # tier: every lane's traffic crosses a local TCP listener while
        # checkpointing keeps using direct object references (the tier
        # lives in-process).  Fresh transports per coordinator — socket
        # state is connection-scoped and not shared across campaigns.
        tier = None
        if config.transport == "socket":
            from repro.serving import ServingTier

            tier = ServingTier(servers).start()

        def lane_transports():
            if tier is None:
                return None
            if config.crawl_engine == "asyncio":
                return tier.async_transports()
            return tier.transports()

        journal = (
            CrawlJournal(config.checkpoint_dir, resume=config.resume)
            if config.checkpoint_dir
            else None
        )
        backfill = (
            ArchiveBackfill(world, segments=segments)
            if config.download_apks
            else None
        )
        coordinators = []
        try:
            coordinator = CrawlCoordinator(
                servers,
                clock,
                gp_seeds=self._gp_seeds(stores, clock),
                backfill=backfill,
                download_apks=config.download_apks,
                workers=config.crawl_workers,
                journal=journal,
                fail_fast=config.fail_fast,
                breaker_policy=self._breaker_policy(),
                obs=obs,
                corpus=corpus,
                identity_policy=self._identity_policy(),
                identity_seed=config.seed,
                transports=lane_transports(),
                engine=config.crawl_engine,
                pipeline=config.crawl_pipeline,
            )
            coordinators.append(coordinator)
            with obs.stage("crawl.first"):
                snapshot = coordinator.crawl(
                    "first", duration_days=config.first_crawl_days
                )

            # Between campaigns: markets clean up flagged apps, developers'
            # lagged listings catch up, and we advance to April 2018.
            apply_removals = apply_store_removals(stores, world, rngs.child("cleanup"))
            updates = apply_catalog_updates(stores, world, rngs.child("evolution"))
            clock.advance_to(max(clock.now, SECOND_CRAWL_DAY))

            result = StudyResult(
                config=config,
                world=world,
                stores=stores,
                servers=servers,
                clock=clock,
                snapshot=snapshot,
                presence={},
                removal_outcome=apply_removals,
                update_outcome=updates,
                obs=obs,
                corpus=corpus,
            )
            if config.download_apks:
                # Second campaign: targeted recheck of every flagged app.
                with obs.stage("crawl.recheck"):
                    result.presence = coordinator.recheck(
                        result.flagged_by_market, duration_days=config.second_crawl_days
                    )
            if config.full_second_crawl:
                # The paper's one-week April 2018 campaign, in full.  APKs
                # are skipped: the longitudinal analysis is metadata-driven.
                second_coordinator = CrawlCoordinator(
                    servers,
                    clock,
                    gp_seeds=self._gp_seeds(stores, clock),
                    backfill=None,
                    download_apks=False,
                    workers=config.crawl_workers,
                    journal=journal,
                    fail_fast=config.fail_fast,
                    breaker_policy=self._breaker_policy(),
                    obs=obs,
                    corpus=corpus,
                    identity_policy=self._identity_policy(),
                    identity_seed=config.seed,
                    transports=lane_transports(),
                    engine=config.crawl_engine,
                    pipeline=config.crawl_pipeline,
                )
                coordinators.append(second_coordinator)
                with obs.stage("crawl.second"):
                    result.second_snapshot = second_coordinator.crawl(
                        "second", duration_days=config.second_crawl_days
                    )
            if journal is not None:
                journal.close()
            return result
        finally:
            for active in coordinators:
                active.close()
            if tier is not None:
                tier.stop()
