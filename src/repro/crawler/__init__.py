"""Market crawler: discovery strategies, parallel search, snapshots."""

from repro.crawler.snapshot import CrawlRecord, Snapshot
from repro.crawler.frontier import Frontier
from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.crawler import CrawlCoordinator, CrawlStats

__all__ = [
    "CrawlRecord",
    "Snapshot",
    "Frontier",
    "ArchiveBackfill",
    "CrawlCoordinator",
    "CrawlStats",
]
