"""The asyncio crawl engine: lanes as coroutines on one shared loop.

:class:`AsyncCrawlEngine` keeps the thread engine's whole contract —
one lane per market, lane clocks, token-bucket pacing, breakers,
checkpoint plumbing, canonical-order merge — and swaps the I/O layer:
every lane's client is an :class:`~repro.net.aclient.AsyncHttpClient`
whose requests run as coroutines on a single background event loop
(:class:`EventLoopThread`).

The coordinator's task bodies stay synchronous (they interleave
requests with parsing, journaling, and snapshot ingestion), so each
lane still gets a thread — but the thread does no socket work; it
blocks on futures while the loop multiplexes *all* lanes' sockets.
Two consequences:

* ``run`` fans tasks out at full width (one waiting thread per lane)
  regardless of ``workers`` — the real concurrency knob for this
  engine is socket-level, not thread-level.
* A lane can hold several requests in flight at once through the
  client's bulk ops (``get_json_many`` / ``get_bytes_many``), which is
  the throughput win the thread engine structurally cannot have: its
  lanes are one-request-in-flight by design.

:class:`BlockingLaneClient` is the sync facade the coordinator sees —
``HttpClient``-shaped methods that submit coroutines to the loop and
wait.  Stats, breaker, credentials, and identities delegate to the
wrapped async client, so telemetry folding and journal export work
unchanged.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar

from repro.crawler.engine import CrawlEngine
from repro.net.aclient import DEFAULT_PIPELINE_DEPTH, AsyncHttpClient
from repro.net.client import ClientStats
from repro.net.http import Response
from repro.net.transport import AsyncInProcessTransport

__all__ = ["AsyncCrawlEngine", "BlockingLaneClient", "EventLoopThread"]

T = TypeVar("T")

#: Wall seconds to wait for the loop thread to come up or down.
_LOOP_TIMEOUT = 10.0


class EventLoopThread:
    """A private asyncio event loop on a daemon thread.

    The engine's lanes all submit their coroutines here; the single
    loop thread is what serializes client bookkeeping (stats, breaker,
    credential single-flight) without locks.
    """

    def __init__(self, name: str = "crawl-aengine"):
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread: Optional[threading.Thread] = threading.Thread(
            target=run, name=name, daemon=True
        )
        self._thread.start()
        started.wait(_LOOP_TIMEOUT)

    @property
    def running(self) -> bool:
        return self._thread is not None

    def submit(self, coro):
        """Schedule a coroutine; returns a concurrent future."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def call(self, coro):
        """Schedule a coroutine and block for its result."""
        return self.submit(coro).result()

    def close(self) -> None:
        """Stop and close the loop; idempotent."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        thread.join(_LOOP_TIMEOUT)
        self._loop.close()


class BlockingLaneClient:
    """Sync facade over an :class:`AsyncHttpClient` on a shared loop.

    Implements the surface the coordinator and the engine's campaign
    bookkeeping actually use — ``request``/``get_json``/``get_bytes``
    plus the pipelined bulk ops — by submitting coroutines to the
    engine's loop thread and waiting.  Everything stateful (``stats``,
    ``breaker``, ``credentials``, ``identities``, ``obs``) delegates to
    the wrapped client so deltas, journaling, and telemetry see one
    source of truth.
    """

    def __init__(
        self,
        aclient: AsyncHttpClient,
        loop_thread: EventLoopThread,
        pipeline: int = 1,
    ):
        self._aclient = aclient
        self._loop_thread = loop_thread
        #: Default in-flight depth for the bulk ops (the engine's
        #: ``pipeline`` knob).
        self.pipeline = max(1, pipeline)

    # -- delegated state ---------------------------------------------------

    @property
    def stats(self) -> ClientStats:
        return self._aclient.stats

    @stats.setter
    def stats(self, value: ClientStats) -> None:
        self._aclient.stats = value

    @property
    def breaker(self):
        return self._aclient.breaker

    @property
    def credentials(self):
        return self._aclient.credentials

    @property
    def identities(self):
        return self._aclient.identities

    @property
    def obs(self):
        return self._aclient.obs

    # -- blocking request surface ------------------------------------------

    def request(
        self, path: str, params: Optional[Mapping[str, Any]] = None
    ) -> Response:
        return self._loop_thread.call(self._aclient.request(path, params))

    def get_json(
        self, path: str, params: Optional[Mapping[str, Any]] = None
    ) -> Any:
        return self._loop_thread.call(self._aclient.get_json(path, params))

    def get_bytes(
        self, path: str, params: Optional[Mapping[str, Any]] = None
    ) -> bytes:
        return self._loop_thread.call(self._aclient.get_bytes(path, params))

    def get_json_many(
        self,
        items: Sequence[Tuple[str, Optional[Mapping[str, Any]]]],
        depth: Optional[int] = None,
    ) -> List[Any]:
        """Pipelined fetch; results (or exceptions) in submission order."""
        return self._loop_thread.call(
            self._aclient.get_json_many(items, depth or self.pipeline)
        )

    def get_bytes_many(
        self,
        items: Sequence[Tuple[str, Optional[Mapping[str, Any]]]],
        depth: Optional[int] = None,
    ) -> List[Any]:
        return self._loop_thread.call(
            self._aclient.get_bytes_many(items, depth or self.pipeline)
        )


class AsyncCrawlEngine(CrawlEngine):
    """The crawl engine over asyncio transports.

    Accepts the thread engine's constructor plus ``pipeline``: the
    in-flight request depth each lane's bulk operations may use.
    Depth 1 reproduces the thread engine's strictly sequential lane
    discipline (and its digests) while still multiplexing all lanes'
    sockets on one loop; deeper pipelines trade server-ordinal
    determinism for throughput, so the coordinator only enables them
    on polite, unjournaled traffic.

    Sync transports (a server's ``handle``, any ``Request -> Response``
    callable) are wrapped in
    :class:`~repro.net.transport.AsyncInProcessTransport`; objects with
    an async ``send`` (e.g. :meth:`ServingTier.async_transports`
    pools) are used as-is.
    """

    def __init__(self, *args, pipeline: int = 1, **kwargs):
        if pipeline < 1:
            raise ValueError(f"pipeline must be positive, got {pipeline}")
        self.pipeline = pipeline
        self._loop_thread = EventLoopThread()
        try:
            super().__init__(*args, **kwargs)
        except BaseException:
            self._loop_thread.close()
            raise

    # -- CrawlEngine hooks -------------------------------------------------

    def _lane_transport(self, market_id: str, server) -> object:
        transport = self._transports.get(market_id)
        if transport is None:
            return AsyncInProcessTransport(server.handle)
        if hasattr(transport, "send"):
            return transport
        return AsyncInProcessTransport(transport)

    def _client_factory(self) -> Callable[..., BlockingLaneClient]:
        loop_thread = self._loop_thread
        pipeline = self.pipeline

        def factory(transport, clock, **kwargs) -> BlockingLaneClient:
            return BlockingLaneClient(
                AsyncHttpClient(transport, clock, **kwargs),
                loop_thread,
                pipeline=pipeline,
            )

        return factory

    # -- scheduling --------------------------------------------------------

    def run(self, tasks: Mapping[str, Callable[[], T]]) -> Dict[str, T]:
        """Run one task batch with every lane live at once.

        Lane threads only wait on loop futures, so width is the task
        count, not ``workers`` — capping threads here would idle
        sockets for no memory win.
        """
        if len(tasks) <= 1:
            return {market_id: task() for market_id, task in tasks.items()}
        results: Dict[str, T] = {}
        with ThreadPoolExecutor(
            max_workers=len(tasks), thread_name_prefix="crawl-lane"
        ) as pool:
            futures = {m: pool.submit(task) for m, task in tasks.items()}
            for market_id, future in futures.items():
                results[market_id] = future.result()
        return results

    def close(self) -> None:
        """Close pooled connections, then stop the loop; idempotent."""
        transports, self._transports = self._transports, {}
        if not self._loop_thread.running:
            return
        for transport in transports.values():
            aclose = getattr(transport, "aclose", None)
            if aclose is not None:
                self._loop_thread.call(aclose())
        self._loop_thread.close()
