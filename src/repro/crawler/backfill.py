"""Offline APK archive backfill (the AndroZoo substitution).

Google Play's rate limiting stopped the paper's APK collection at
287,110 files; they recovered 1,553,382 of the missing APKs from
AndroZoo using (package name, version name) as the join key.

:class:`ArchiveBackfill` plays AndroZoo's role: an offline archive
indexed by the same key, covering a configurable share of the world's
Google Play APKs.  Coverage membership is decided by a stable hash of
the package so that repeated lookups agree.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

from repro.util.rng import stable_hash32

if TYPE_CHECKING:  # pragma: no cover
    from repro.ecosystem.world import World

__all__ = ["ArchiveBackfill", "DEFAULT_ARCHIVE_COVERAGE"]

#: AndroZoo held APKs for ~89% of the Google Play apps the paper's crawl
#: could not download (1,553,382 / 1,744,836).
DEFAULT_ARCHIVE_COVERAGE = 0.89

#: Archive-blob LRU bound.  Lookups are one-shot per (package, version)
#: during a campaign, so the cache only needs to absorb retry bursts —
#: holding every blob ever built defeats the out-of-core corpus.
DEFAULT_ARCHIVE_CACHE = 256


class ArchiveBackfill:
    """An offline (package, version_name) -> APK archive."""

    def __init__(
        self,
        world: "World",
        market_id: str = "google_play",
        coverage: float = DEFAULT_ARCHIVE_COVERAGE,
        segments=None,
    ):
        if not 0 <= coverage <= 1:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        self._world = world
        self._market_id = market_id
        self._coverage = coverage
        self._segments = segments  # shared SegmentCache, or None
        self._cache: "OrderedDict[Tuple[str, str], Optional[bytes]]" = OrderedDict()
        self._cache_size = DEFAULT_ARCHIVE_CACHE
        # The archive is shared by every market's download lane; the
        # lock keeps cache fills and hit/miss counters exact under the
        # parallel crawl engine.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _covered(self, package: str, version_name: str) -> bool:
        bucket = stable_hash32("androzoo", package, version_name) % 10_000
        return bucket < int(self._coverage * 10_000)

    def lookup(self, package: str, version_name: str) -> Optional[bytes]:
        """Fetch an APK from the archive, or None if not archived."""
        key = (package, version_name)
        with self._lock:
            if key in self._cache:
                blob = self._cache[key]
                self._cache.move_to_end(key)
            else:
                blob = self._build(package, version_name)
                self._cache[key] = blob
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
            # Counters tally lookup outcomes, so eviction never skews
            # them — a rebuilt blob is still a hit.
            if blob is None:
                self.misses += 1
            else:
                self.hits += 1
        return blob

    def _build(self, package: str, version_name: str) -> Optional[bytes]:
        if not self._covered(package, version_name):
            return None
        from repro.ecosystem.apps import build_apk
        from repro.markets.profiles import get_profile

        profile = get_profile(self._market_id)
        for app in self._world.find_by_package(package):
            placement = app.placements.get(self._market_id)
            if placement is None:
                continue
            version = app.versions[placement.version_index]
            if version.version_name != version_name:
                continue
            return build_apk(
                app,
                placement.version_index,
                profile,
                self._world.catalog,
                segments=self._segments,
            )
        return None
