"""Crawl coordination.

``CrawlCoordinator`` reproduces the paper's campaign structure:

* per-market discovery with the appropriate strategy (Section 3),
* the **parallel search**: the moment a new package surfaces anywhere,
  it is searched (by package name and by app name) in every other
  market so cross-market observations are near-simultaneous,
* APK downloading with rate-limit handling, and offline-archive
  backfill for Google Play's quota-blocked APKs (AndroZoo substitute),
* a targeted *recheck* used by the second campaign to test whether
  flagged apps are still hosted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.apk.archive import ApkParseError, parse_apk
from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.snapshot import (
    APK_FROM_ARCHIVE,
    APK_FROM_MARKET,
    CrawlRecord,
    Snapshot,
)
from repro.crawler.strategies import strategy_for
from repro.crawler.workers import WorkerPool
from repro.markets.server import MarketServer
from repro.net.client import HttpClient
from repro.net.http import HttpError, NotFoundError, RateLimitedError
from repro.util.simtime import SimClock

__all__ = ["CrawlCoordinator", "CrawlStats"]


@dataclass
class CrawlStats:
    """Counters for one campaign."""

    records: int = 0
    searches: int = 0
    apk_downloaded: int = 0
    apk_backfilled: int = 0
    apk_missing: int = 0
    apk_parse_errors: int = 0
    rate_limited_markets: Set[str] = field(default_factory=set)


class CrawlCoordinator:
    """Runs crawl campaigns against a set of market servers."""

    def __init__(
        self,
        servers: Mapping[str, MarketServer],
        clock: SimClock,
        gp_seeds: Iterable[str] = (),
        backfill: Optional[ArchiveBackfill] = None,
        download_apks: bool = True,
        search_by_name: bool = True,
        worker_pool: Optional[WorkerPool] = None,
    ):
        self._servers = dict(servers)
        self._clock = clock
        self._gp_seeds = list(gp_seeds)
        self._backfill = backfill
        self._download_apks = download_apks
        self._search_by_name = search_by_name
        self._worker_pool = worker_pool or WorkerPool()
        self._clients: Dict[str, HttpClient] = {
            market_id: HttpClient(server.handle, clock, max_rate_limit_waits=0)
            for market_id, server in self._servers.items()
        }

    def client(self, market_id: str) -> HttpClient:
        return self._clients[market_id]

    # ------------------------------------------------------------------
    # campaign
    # ------------------------------------------------------------------

    def crawl(self, label: str, duration_days: Optional[float] = 15.0) -> Snapshot:
        """Run one full campaign and return its snapshot.

        ``duration_days=None`` derives the campaign's simulated duration
        from the number of requests issued, under the worker-pool model
        (the paper's 50-server fleet); a float pins it explicitly (the
        paper's campaign dates).
        """
        snapshot = Snapshot(label)
        stats = CrawlStats()
        pending: Deque[Tuple[str, str]] = deque()  # (package, app_name)
        searched: Set[str] = set()

        def ingest(market_id: str, meta: Mapping[str, object]) -> None:
            record = CrawlRecord.from_metadata(market_id, meta, self._clock.now)
            if not snapshot.add(record):
                return
            stats.records += 1
            if record.package not in searched:
                searched.add(record.package)
                pending.append((record.package, record.app_name))

        for market_id, server in self._servers.items():
            if not server.web_available:
                continue
            strategy = strategy_for(server.store.profile.crawl_strategy, self._gp_seeds)
            for meta in strategy.discover(self._clients[market_id]):
                ingest(market_id, meta)
                self._drain_parallel_search(pending, ingest, stats)
        self._drain_parallel_search(pending, ingest, stats)

        if self._download_apks:
            self._collect_apks(snapshot, stats)

        snapshot.stats = stats  # type: ignore[attr-defined]
        if duration_days is None:
            total_requests = sum(
                client.stats.requests for client in self._clients.values()
            )
            duration_days = self._worker_pool.duration_days(total_requests)
        self._clock.advance(duration_days)
        return snapshot

    def _drain_parallel_search(self, pending, ingest, stats: CrawlStats) -> None:
        """Immediately search each newly-seen app in all other markets."""
        while pending:
            package, app_name = pending.popleft()
            queries = [package]
            if self._search_by_name:
                queries.append(app_name)
            for market_id, server in self._servers.items():
                if not server.web_available:
                    continue
                client = self._clients[market_id]
                for query in queries:
                    stats.searches += 1
                    try:
                        results = client.get_json("/search", {"q": query})
                    except HttpError:
                        continue
                    for meta in results:
                        ingest(market_id, meta)

    # ------------------------------------------------------------------
    # APKs
    # ------------------------------------------------------------------

    def _collect_apks(self, snapshot: Snapshot, stats: CrawlStats) -> None:
        for record in snapshot:
            blob: Optional[bytes] = None
            source: Optional[str] = None
            client = self._clients[record.market_id]
            try:
                blob = client.get_bytes("/download", {"package": record.package})
                source = APK_FROM_MARKET
            except RateLimitedError:
                stats.rate_limited_markets.add(record.market_id)
            except (NotFoundError, HttpError):
                pass
            if blob is None and self._backfill is not None:
                blob = self._backfill.lookup(record.package, record.version_name)
                if blob is not None:
                    source = APK_FROM_ARCHIVE
            if blob is None:
                stats.apk_missing += 1
                continue
            try:
                record.apk = parse_apk(blob)
            except ApkParseError:
                stats.apk_parse_errors += 1
                continue
            record.apk_source = source
            if source == APK_FROM_MARKET:
                stats.apk_downloaded += 1
            else:
                stats.apk_backfilled += 1

    # ------------------------------------------------------------------
    # targeted recheck (second campaign helper)
    # ------------------------------------------------------------------

    def recheck(
        self, targets: Mapping[str, Iterable[str]], duration_days: float = 7.0
    ) -> Dict[str, Dict[str, bool]]:
        """For each market, test which packages are still listed.

        Markets whose web interface has gone dark (HiApk, OPPO at the
        second crawl) are reported as absent from the result entirely, so
        callers can exclude them — as the paper excludes both from its
        Table 6 analysis.
        """
        presence: Dict[str, Dict[str, bool]] = {}
        for market_id, packages in targets.items():
            server = self._servers.get(market_id)
            if server is None or not server.web_available:
                continue
            client = self._clients[market_id]
            market_presence: Dict[str, bool] = {}
            for package in packages:
                try:
                    client.get_json("/app", {"package": package})
                    market_presence[package] = True
                except HttpError:
                    market_presence[package] = False
            presence[market_id] = market_presence
        self._clock.advance(duration_days)
        return presence
