"""Crawl coordination.

``CrawlCoordinator`` reproduces the paper's campaign structure on top
of the parallel crawl engine (:mod:`repro.crawler.engine`):

* per-market discovery with the appropriate strategy (Section 3), one
  engine lane per market,
* the **parallel search**: each round, every package that surfaced
  anywhere since the last round is searched (by package name and by app
  name) in every market, so cross-market observations are
  near-simultaneous,
* batched APK downloading with rate-limit handling, and offline-archive
  backfill for Google Play's quota-blocked APKs (AndroZoo substitute),
* a targeted *recheck* used by the second campaign to test whether
  flagged apps are still hosted.

Every phase fans out one task per market and merges results in
canonical market order, so the snapshot is identical at any worker
count — the fleet changes wall-clock time, never the dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.apk.archive import ApkParseError, parse_apk
from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.engine import CrawlEngine
from repro.crawler.snapshot import (
    APK_FROM_ARCHIVE,
    APK_FROM_MARKET,
    CrawlRecord,
    Snapshot,
)
from repro.crawler.strategies import strategy_for
from repro.crawler.telemetry import CrawlTelemetry
from repro.crawler.workers import WorkerPool
from repro.markets.server import MarketServer
from repro.net.client import HttpClient
from repro.net.http import HttpError, NotFoundError, RateLimitedError
from repro.net.ratelimit import PerMarketRateLimiter
from repro.util.simtime import SimClock

__all__ = ["CrawlCoordinator", "CrawlStats"]

Metadata = Mapping[str, object]

#: Download outcomes a lane reports back to the merge step (besides the
#: snapshot's own APK_FROM_MARKET / APK_FROM_ARCHIVE source tags).
_DL_FAILED = "failed"
_DL_PARSE_ERROR = "parse_error"


@dataclass
class CrawlStats:
    """Counters for one campaign."""

    records: int = 0
    searches: int = 0
    apk_downloaded: int = 0
    apk_backfilled: int = 0
    apk_missing: int = 0
    apk_parse_errors: int = 0
    rate_limited_markets: Set[str] = field(default_factory=set)
    telemetry: Optional[CrawlTelemetry] = field(default=None, compare=False, repr=False)


class CrawlCoordinator:
    """Runs crawl campaigns against a set of market servers."""

    def __init__(
        self,
        servers: Mapping[str, MarketServer],
        clock: SimClock,
        gp_seeds: Iterable[str] = (),
        backfill: Optional[ArchiveBackfill] = None,
        download_apks: bool = True,
        search_by_name: bool = True,
        worker_pool: Optional[WorkerPool] = None,
        workers: int = 1,
        rate_limiter: Optional[PerMarketRateLimiter] = None,
    ):
        self._servers = dict(servers)
        self._clock = clock
        self._gp_seeds = list(gp_seeds)
        self._backfill = backfill
        self._download_apks = download_apks
        self._search_by_name = search_by_name
        self._worker_pool = worker_pool or WorkerPool()
        self._engine = CrawlEngine(
            self._servers, clock, workers=workers, rate_limiter=rate_limiter
        )

    def client(self, market_id: str) -> HttpClient:
        return self._engine.client(market_id)

    @property
    def engine(self) -> CrawlEngine:
        return self._engine

    # ------------------------------------------------------------------
    # campaign
    # ------------------------------------------------------------------

    def crawl(self, label: str, duration_days: Optional[float] = 15.0) -> Snapshot:
        """Run one full campaign and return its snapshot.

        ``duration_days=None`` derives the campaign's simulated duration
        from the number of requests issued, under the worker-pool model
        (the paper's 50-server fleet); a float pins it explicitly (the
        paper's campaign dates).
        """
        started = time.perf_counter()
        telemetry = self._engine.begin_campaign(label)
        snapshot = Snapshot(label)
        stats = CrawlStats(telemetry=telemetry)
        pending: List[Tuple[str, str]] = []  # (package, app_name)
        searched: Set[str] = set()
        crawl_day = self._clock.now

        def ingest(market_id: str, meta: Metadata) -> None:
            record = CrawlRecord.from_metadata(market_id, meta, crawl_day)
            if not snapshot.add(record):
                return
            stats.records += 1
            telemetry.market(market_id).records += 1
            if record.package not in searched:
                searched.add(record.package)
                pending.append((record.package, record.app_name))

        active = [m for m, s in self._servers.items() if s.web_available]

        # Phase 1: per-market discovery, merged in canonical order.
        discovered = self._engine.run(
            {m: self._discovery_task(m) for m in active}
        )
        for market_id in active:
            for meta in discovered[market_id]:
                ingest(market_id, meta)

        # Phase 2: cross-market search, round by round until the
        # frontier drains (each round searches everything new at once).
        while pending:
            batch, pending = pending, []
            telemetry.search_rounds += 1
            telemetry.observe_queue_depth(len(batch))
            queries = self._batch_queries(batch)
            results = self._engine.run(
                {m: self._search_task(m, queries) for m in active}
            )
            stats.searches += len(queries) * len(active)
            offset = 0
            for _package, _app_name in batch:
                width = 2 if self._search_by_name else 1
                for market_id in active:
                    for j in range(width):
                        for meta in results[market_id][offset + j]:
                            ingest(market_id, meta)
                offset += width

        # Phase 3: batched APK downloads, one lane per market.
        if self._download_apks:
            self._collect_apks(snapshot, stats, telemetry)

        snapshot.stats = stats  # type: ignore[attr-defined]
        self._engine.end_campaign(telemetry)
        telemetry.wall_seconds = time.perf_counter() - started
        if duration_days is None:
            duration_days = max(
                self._worker_pool.duration_days(self._engine.total_requests),
                self._engine.max_lane_backoff,
            )
        self._clock.advance(duration_days)
        return snapshot

    # -- phase tasks (each runs inside one market's lane) -----------------

    def _discovery_task(self, market_id: str):
        server = self._servers[market_id]
        strategy = strategy_for(server.store.profile.crawl_strategy, self._gp_seeds)
        client = self._engine.client(market_id)

        def run() -> List[Metadata]:
            return list(strategy.discover(client))

        return run

    def _batch_queries(self, batch: Sequence[Tuple[str, str]]) -> List[str]:
        queries: List[str] = []
        for package, app_name in batch:
            queries.append(package)
            if self._search_by_name:
                queries.append(app_name)
        return queries

    def _search_task(self, market_id: str, queries: Sequence[str]):
        client = self._engine.client(market_id)

        def run() -> List[List[Metadata]]:
            hits: List[List[Metadata]] = []
            for query in queries:
                try:
                    hits.append(client.get_json("/search", {"q": query}))
                except HttpError:
                    hits.append([])
            return hits

        return run

    # ------------------------------------------------------------------
    # APKs
    # ------------------------------------------------------------------

    def _collect_apks(
        self, snapshot: Snapshot, stats: CrawlStats, telemetry: CrawlTelemetry
    ) -> None:
        sharded = {
            market_id: records
            for market_id in self._engine.market_ids
            if (records := snapshot.in_market(market_id))
        }
        outcomes = self._engine.run(
            {m: self._download_task(m, records) for m, records in sharded.items()}
        )
        for market_id in sharded:
            market = telemetry.market(market_id)
            lane_outcomes, lane_rate_limited = outcomes[market_id]
            if lane_rate_limited:
                stats.rate_limited_markets.add(market_id)
            for outcome in lane_outcomes:
                if outcome == APK_FROM_MARKET:
                    stats.apk_downloaded += 1
                    market.apk_downloaded += 1
                elif outcome == APK_FROM_ARCHIVE:
                    stats.apk_backfilled += 1
                    market.apk_backfilled += 1
                elif outcome == _DL_PARSE_ERROR:
                    stats.apk_parse_errors += 1
                else:
                    stats.apk_missing += 1
                    market.apk_missing += 1

    def _download_task(self, market_id: str, records: Sequence[CrawlRecord]):
        client = self._engine.client(market_id)
        backfill = self._backfill

        def run() -> Tuple[List[str], bool]:
            outcomes: List[str] = []
            rate_limited = False
            for record in records:
                blob: Optional[bytes] = None
                source: Optional[str] = None
                try:
                    blob = client.get_bytes("/download", {"package": record.package})
                    source = APK_FROM_MARKET
                except RateLimitedError:
                    rate_limited = True
                except (NotFoundError, HttpError):
                    pass
                if blob is None and backfill is not None:
                    blob = backfill.lookup(record.package, record.version_name)
                    if blob is not None:
                        source = APK_FROM_ARCHIVE
                if blob is None:
                    outcomes.append(_DL_FAILED)
                    continue
                try:
                    record.apk = parse_apk(blob)
                except ApkParseError:
                    outcomes.append(_DL_PARSE_ERROR)
                    continue
                record.apk_source = source
                outcomes.append(source)
            return outcomes, rate_limited

        return run

    # ------------------------------------------------------------------
    # targeted recheck (second campaign helper)
    # ------------------------------------------------------------------

    def recheck(
        self, targets: Mapping[str, Iterable[str]], duration_days: float = 7.0
    ) -> Dict[str, Dict[str, bool]]:
        """For each market, test which packages are still listed.

        Markets whose web interface has gone dark (HiApk, OPPO at the
        second crawl) are reported as absent from the result entirely, so
        callers can exclude them — as the paper excludes both from its
        Table 6 analysis.
        """
        reachable = {
            market_id: list(packages)
            for market_id, packages in targets.items()
            if (server := self._servers.get(market_id)) is not None
            and server.web_available
        }
        presence = self._engine.run(
            {m: self._recheck_task(m, packages) for m, packages in reachable.items()}
        )
        self._clock.advance(duration_days)
        return presence

    def _recheck_task(self, market_id: str, packages: Sequence[str]):
        client = self._engine.client(market_id)

        def run() -> Dict[str, bool]:
            market_presence: Dict[str, bool] = {}
            for package in packages:
                try:
                    client.get_json("/app", {"package": package})
                    market_presence[package] = True
                except HttpError:
                    market_presence[package] = False
            return market_presence

        return run
