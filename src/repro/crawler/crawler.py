"""Crawl coordination.

``CrawlCoordinator`` reproduces the paper's campaign structure on top
of the parallel crawl engine (:mod:`repro.crawler.engine`):

* per-market discovery with the appropriate strategy (Section 3), one
  engine lane per market,
* the **parallel search**: each round, every package that surfaced
  anywhere since the last round is searched (by package name and by app
  name) in every market, so cross-market observations are
  near-simultaneous,
* batched APK downloading with rate-limit handling, and offline-archive
  backfill for Google Play's quota-blocked APKs (AndroZoo substitute),
* a targeted *recheck* used by the second campaign to test whether
  flagged apps are still hosted.

Every phase fans out one task per market and merges results in
canonical market order, so the snapshot is identical at any worker
count — the fleet changes wall-clock time, never the dataset.

Two robustness layers ride on top of that structure:

* **Checkpoint/resume** (:mod:`repro.crawler.journal`): with a
  ``CrawlJournal`` attached, every completed unit of work is appended
  to a per-lane write-ahead log together with the deterministic state
  it left behind; a restarted campaign replays the journal instead of
  re-crawling and produces a bit-identical snapshot.
* **Graceful degradation** (:mod:`repro.net.breaker`): when a market's
  circuit breaker exhausts its trip budget the lane raises
  :class:`~repro.net.breaker.MarketQuarantinedError`.  In the default
  *degrade* mode the coordinator marks the market degraded, parks the
  abandoned work in the snapshot's dead-letter list, and finishes the
  campaign with every other market intact; ``fail_fast=True`` lets the
  error abort the campaign instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.apk.archive import ApkParseError, parse_apk
from repro.crawler.backfill import ArchiveBackfill
from repro.crawler.engine import CrawlEngine
from repro.crawler.journal import CampaignJournal, CrawlJournal, LaneJournal
from repro.crawler.snapshot import (
    APK_FROM_ARCHIVE,
    APK_FROM_MARKET,
    HEALTH_DEGRADED,
    CrawlRecord,
    DeadLetter,
    MarketHealth,
    Snapshot,
)
from repro.crawler.strategies import strategy_for
from repro.crawler.telemetry import CrawlTelemetry
from repro.crawler.workers import WorkerPool
from repro.markets.server import MarketServer
from repro.net.breaker import (
    DEFAULT_BREAKER_POLICY,
    BreakerPolicy,
    MarketQuarantinedError,
)
from repro.net.client import HttpClient
from repro.net.http import ForbiddenError, HttpError, NotFoundError, RateLimitedError
from repro.net.identity import IdentityPolicy
from repro.net.ratelimit import PerMarketRateLimiter
from repro.obs import NULL_OBS, Observability
from repro.util.rng import stable_hash64
from repro.util.simtime import SimClock

__all__ = [
    "CrawlCoordinator",
    "CrawlStats",
    "REASON_QUARANTINED",
    "REASON_BANNED",
    "REASON_RATE_LIMITED",
    "REASON_RETRY_EXHAUSTED",
]

Metadata = Mapping[str, object]

#: Download outcomes a lane reports back to the merge step (besides the
#: snapshot's own APK_FROM_MARKET / APK_FROM_ARCHIVE source tags).
_DL_FAILED = "failed"
_DL_PARSE_ERROR = "parse_error"
_DL_QUARANTINED = "quarantined"

#: Dead-letter reason for work abandoned after breaker quarantine.
REASON_QUARANTINED = "market quarantined"

#: Dead-letter reason for work lost to an anti-bot ban the identity
#: pool could not dodge (rotation and waiting both exhausted).
REASON_BANNED = "banned"

#: Dead-letter reason for work the server shed by rate-limit policy.
REASON_RATE_LIMITED = "rate limited"

#: Dead-letter reason for work lost to persistent transport failures
#: (5xx / timeout / garbled payloads past the retry budget).
REASON_RETRY_EXHAUSTED = "retry exhausted"

#: Sentinel: the download task has no prefetched value for a record and
#: must fetch it live (distinguishes "not prefetched" from "prefetched
#: None/exception").
_UNFETCHED = object()


@dataclass
class CrawlStats:
    """Counters for one campaign."""

    records: int = 0
    searches: int = 0
    apk_downloaded: int = 0
    apk_backfilled: int = 0
    apk_missing: int = 0
    apk_parse_errors: int = 0
    rate_limited_markets: Set[str] = field(default_factory=set)
    degraded_markets: Set[str] = field(default_factory=set)
    telemetry: Optional[CrawlTelemetry] = field(default=None, compare=False, repr=False)


class CrawlCoordinator:
    """Runs crawl campaigns against a set of market servers."""

    def __init__(
        self,
        servers: Mapping[str, MarketServer],
        clock: SimClock,
        gp_seeds: Iterable[str] = (),
        backfill: Optional[ArchiveBackfill] = None,
        download_apks: bool = True,
        search_by_name: bool = True,
        worker_pool: Optional[WorkerPool] = None,
        workers: int = 1,
        rate_limiter: Optional[PerMarketRateLimiter] = None,
        journal: Optional[CrawlJournal] = None,
        fail_fast: bool = False,
        breaker_policy: Optional[BreakerPolicy] = DEFAULT_BREAKER_POLICY,
        obs: Observability = NULL_OBS,
        corpus=None,
        identity_policy: Optional[IdentityPolicy] = None,
        identity_seed: int = 0,
        transports: Optional[Mapping[str, object]] = None,
        engine: str = "thread",
        pipeline: int = 1,
    ):
        """``transports`` routes lanes through substitute transports
        (e.g. a :class:`~repro.serving.ServingTier`'s sockets) instead
        of the servers' in-process ``handle``.  ``engine`` picks the
        scheduling substrate: ``"thread"`` (one request in flight per
        lane) or ``"asyncio"`` (all lanes multiplexed on one event
        loop).  ``pipeline`` is the per-lane in-flight depth the
        asyncio engine's bulk fetches may use; depth > 1 reorders the
        request stream each server observes, so it requires the
        asyncio engine and is incompatible with checkpoint journaling
        (a mid-batch kill could leak server-side ordinals past the
        journal's high-water mark)."""
        if engine not in ("thread", "asyncio"):
            raise ValueError(f"unknown crawl engine: {engine!r}")
        if pipeline < 1:
            raise ValueError(f"pipeline must be positive, got {pipeline}")
        if pipeline > 1 and engine != "asyncio":
            raise ValueError("pipeline > 1 requires the asyncio engine")
        if pipeline > 1 and journal is not None:
            raise ValueError("pipeline > 1 is incompatible with journaling")
        self._servers = dict(servers)
        self._clock = clock
        self._gp_seeds = list(gp_seeds)
        self._backfill = backfill
        self._download_apks = download_apks
        self._search_by_name = search_by_name
        self._worker_pool = worker_pool or WorkerPool()
        self._journal = journal
        self._fail_fast = fail_fast
        self._obs = obs
        self._corpus = corpus
        self._pipeline = pipeline
        engine_cls = CrawlEngine
        engine_kwargs: Dict[str, object] = {}
        if engine == "asyncio":
            from repro.crawler.aengine import AsyncCrawlEngine

            engine_cls = AsyncCrawlEngine
            engine_kwargs["pipeline"] = pipeline
        self._engine = engine_cls(
            self._servers,
            clock,
            workers=workers,
            rate_limiter=rate_limiter,
            breaker_policy=breaker_policy,
            obs=obs,
            identity_policy=identity_policy,
            identity_seed=identity_seed,
            transports=transports,
            **engine_kwargs,
        )

    def client(self, market_id: str) -> HttpClient:
        return self._engine.client(market_id)

    @property
    def engine(self) -> CrawlEngine:
        return self._engine

    def close(self) -> None:
        """Release the engine's transports/loop; idempotent."""
        self._engine.close()

    # -- checkpoint plumbing ----------------------------------------------

    def _checkpoint(self, market_id: str) -> dict:
        """The (server, lane) state one journal entry snapshots.

        Called from the lane's own thread right after a unit of work
        completes; both sides are lane-owned so no locking is needed.
        """
        return {
            "server": self._servers[market_id].export_state(),
            "lane": self._engine.lane_state(market_id),
        }

    def _restore_checkpoint(self, market_id: str, state: dict) -> None:
        self._servers[market_id].restore_state(state["server"])
        self._engine.restore_lane_state(market_id, state["lane"])

    # ------------------------------------------------------------------
    # campaign
    # ------------------------------------------------------------------

    def crawl(self, label: str, duration_days: Optional[float] = 15.0) -> Snapshot:
        """Run one full campaign and return its snapshot.

        ``duration_days=None`` derives the campaign's simulated duration
        from the number of requests issued, under the worker-pool model
        (the paper's 50-server fleet); a float pins it explicitly (the
        paper's campaign dates).

        With tracing enabled the campaign is one trace (id = the
        campaign label): a root ``crawl.campaign`` span over per-market
        discovery/search/APK spans, which in turn parent the HTTP
        client's per-request spans.
        """
        if self._obs.tracer is not None:
            self._obs.tracer.set_trace(label)
        with self._obs.span(
            "crawl.campaign", clock=self._clock, root=True, label=label
        ) as campaign_span:
            snapshot = self._run_campaign(label, duration_days, campaign_span)
        return snapshot

    def _run_campaign(
        self, label: str, duration_days: Optional[float], campaign_span
    ) -> Snapshot:
        started = time.perf_counter()
        journal = self._journal.campaign(label) if self._journal is not None else None
        if journal is not None:
            # Journaled lanes rewind to their campaign-start state first,
            # so begin_campaign() baselines from the same point the
            # original run did (the servers may since have served a
            # replayed earlier campaign's worth of live traffic — or
            # none of it).
            for market_id in self._engine.market_ids:
                begin = journal.lane(market_id).begin_state()
                if begin is not None:
                    self._restore_checkpoint(market_id, begin)
        telemetry = self._engine.begin_campaign(label)
        if journal is not None:
            for market_id in self._engine.market_ids:
                lane = journal.lane(market_id)
                if lane.begin_state() is None:
                    lane.record_begin(self._checkpoint(market_id))
                else:
                    # Fast-forward to wherever the dead run stopped: the
                    # journaled entries will replay without touching the
                    # server, and the first live request continues from
                    # this state.
                    self._restore_checkpoint(market_id, lane.last_state())
        monitor = self._obs.monitor
        if monitor is not None:
            monitor.begin(label, self._engine, telemetry, self._clock)
        snapshot = Snapshot(label, store=self._corpus)
        stats = CrawlStats(telemetry=telemetry)
        pending: List[Tuple[str, str]] = []  # (package, app_name)
        searched: Set[str] = set()
        dead_letters: List[DeadLetter] = []
        crawl_day = self._clock.now

        def ingest(market_id: str, meta: Metadata) -> None:
            record = CrawlRecord.from_metadata(market_id, meta, crawl_day)
            if not snapshot.add(record):
                return
            stats.records += 1
            telemetry.market(market_id).records += 1
            if record.package not in searched:
                searched.add(record.package)
                pending.append((record.package, record.app_name))

        def mark_degraded(market_id: str) -> None:
            stats.degraded_markets.add(market_id)

        active = [m for m, s in self._servers.items() if s.web_available]

        # Phase 1: per-market discovery, merged in canonical order.
        discovered = self._engine.run(
            {m: self._discovery_task(m, journal) for m in active}
        )
        for market_id in active:
            doc = discovered[market_id]
            for meta in doc["metas"]:
                ingest(market_id, meta)
            if doc["quarantined"]:
                mark_degraded(market_id)
                dead_letters.append(DeadLetter(
                    market_id, "discovery", "catalog", REASON_QUARANTINED
                ))
        if monitor is not None:
            monitor.tick("discovery")

        # Phase 2: cross-market search, round by round until the
        # frontier drains (each round searches everything new at once).
        # A quarantined market drops out of later rounds: its lane would
        # only fast-fail every query anyway.
        while pending:
            active = [m for m in active if m not in stats.degraded_markets]
            if not active:
                break
            batch, pending = pending, []
            telemetry.search_rounds += 1
            # The depth sample is stamped with the fleet's furthest lane
            # time: the shared clock is frozen mid-campaign, so lane
            # back-off is what moves simulated time forward here.
            telemetry.observe_queue_depth(
                len(batch), at=self._clock.now + self._engine.max_lane_backoff
            )
            queries = self._batch_queries(batch)
            round_no = telemetry.search_rounds
            results = self._engine.run(
                {m: self._search_task(m, queries, round_no, journal) for m in active}
            )
            stats.searches += len(queries) * len(active)
            offset = 0
            for _package, _app_name in batch:
                width = 2 if self._search_by_name else 1
                for market_id in active:
                    for j in range(width):
                        for meta in results[market_id]["hits"][offset + j]:
                            ingest(market_id, meta)
                offset += width
            for market_id in active:
                doc = results[market_id]
                if doc["quarantined"]:
                    mark_degraded(market_id)
                for query, reason in doc["dead"]:
                    dead_letters.append(
                        DeadLetter(market_id, "search", query, reason)
                    )
            if monitor is not None:
                monitor.tick("search")

        # Phase 3: batched APK downloads, one lane per market.
        if self._download_apks:
            self._collect_apks(snapshot, stats, telemetry, journal, dead_letters)
            if monitor is not None:
                monitor.tick("apk")

        # Health: every market gets a verdict, even the clean ones.
        for market_id in self._servers:
            health = MarketHealth(
                market_id, completed=snapshot.market_size(market_id)
            )
            if market_id in stats.degraded_markets:
                health.status = HEALTH_DEGRADED
                telemetry.market(market_id).health = HEALTH_DEGRADED
            snapshot.health[market_id] = health
        for letter in dead_letters:
            snapshot.dead_letters.append(letter)
            health = snapshot.health[letter.market_id]
            if letter.reason == REASON_QUARANTINED:
                health.quarantined += 1
            else:
                health.degraded += 1
            telemetry.record_dead_letter(letter.market_id, letter.reason)

        snapshot.stats = stats  # type: ignore[attr-defined]
        self._engine.end_campaign(telemetry)
        if monitor is not None:
            monitor.finish()
        telemetry.wall_seconds = time.perf_counter() - started
        campaign_span["records"] = stats.records
        campaign_span["searches"] = stats.searches
        campaign_span["search_rounds"] = telemetry.search_rounds
        campaign_span["degraded_markets"] = sorted(stats.degraded_markets)
        if duration_days is None:
            duration_days = max(
                self._worker_pool.duration_days(self._engine.total_requests),
                self._engine.max_lane_backoff,
            )
        self._clock.advance(duration_days)
        return snapshot

    # -- phase tasks (each runs inside one market's lane) -----------------

    def _discovery_task(self, market_id: str, journal: Optional[CampaignJournal]):
        server = self._servers[market_id]
        strategy_name = server.store.profile.crawl_strategy
        gate = getattr(server, "hostility", None)
        if gate is not None and gate.policy.package_list_only:
            # The market rejects catalog enumeration outright; the only
            # discovery surface left is its bare package-name list.
            strategy_name = "package_list"
        strategy = strategy_for(strategy_name, self._gp_seeds)
        client = self._engine.client(market_id)
        lane_clock = self._engine.lane(market_id).clock
        lane = journal.lane(market_id) if journal is not None else None

        def run() -> dict:
            with self._obs.span(
                "crawl.discovery", market=market_id, clock=lane_clock
            ) as span:
                cached = lane.replay("discovery", market_id) if lane is not None else None
                if cached is not None:
                    span["replayed"] = True
                    span["records"] = len(cached["metas"])
                    return cached
                metas: List[Metadata] = []
                quarantined = False
                try:
                    for meta in strategy.discover(client):
                        metas.append(meta)
                except MarketQuarantinedError:
                    if self._fail_fast:
                        raise
                    quarantined = True
                result = {"metas": metas, "quarantined": quarantined}
                if lane is not None:
                    lane.record(
                        "discovery", market_id, result, self._checkpoint(market_id)
                    )
                span["records"] = len(metas)
                span["quarantined"] = quarantined
                return result

        return run

    def _batch_queries(self, batch: Sequence[Tuple[str, str]]) -> List[str]:
        queries: List[str] = []
        for package, app_name in batch:
            queries.append(package)
            if self._search_by_name:
                queries.append(app_name)
        return queries

    def _search_task(
        self,
        market_id: str,
        queries: Sequence[str],
        round_no: int,
        journal: Optional[CampaignJournal],
    ):
        client = self._engine.client(market_id)
        lane_clock = self._engine.lane(market_id).clock
        lane = journal.lane(market_id) if journal is not None else None
        # The key fingerprints the query batch so replaying a journal
        # against a diverged run (different seed/config) fails loudly.
        key = f"round-{round_no}:{stable_hash64('search-batch', tuple(queries)):016x}"

        def run() -> dict:
            with self._obs.span(
                "crawl.search",
                market=market_id,
                clock=lane_clock,
                round=round_no,
                queries=len(queries),
            ) as span:
                cached = lane.replay("search", key) if lane is not None else None
                if cached is not None:
                    span["replayed"] = True
                    return cached
                if (
                    self._pipeline > 1
                    and lane is None
                    and hasattr(client, "get_json_many")
                ):
                    result = self._bulk_search(client, queries)
                    span["quarantined"] = result["quarantined"]
                    return result
                hits: List[List[Metadata]] = []
                dead: List[List[str]] = []
                quarantined = False
                for query in queries:
                    if quarantined:
                        # Keep offsets aligned for the merge step; the lost
                        # queries are accounted as dead letters.
                        hits.append([])
                        dead.append([query, REASON_QUARANTINED])
                        continue
                    try:
                        hits.append(client.get_json("/search", {"q": query}))
                    except MarketQuarantinedError:
                        if self._fail_fast:
                            raise
                        quarantined = True
                        hits.append([])
                        dead.append([query, REASON_QUARANTINED])
                    except ForbiddenError as exc:
                        hits.append([])
                        if exc.retry_after is not None:
                            # Anti-bot ban that rotation/waiting could
                            # not clear; a policy 403 is a definitive
                            # answer (like 404), not lost work.
                            dead.append([query, REASON_BANNED])
                    except RateLimitedError:
                        hits.append([])
                        dead.append([query, REASON_RATE_LIMITED])
                    except HttpError:
                        hits.append([])
                        dead.append([query, REASON_RETRY_EXHAUSTED])
                result = {"hits": hits, "quarantined": quarantined, "dead": dead}
                if lane is not None:
                    lane.record("search", key, result, self._checkpoint(market_id))
                span["quarantined"] = quarantined
                return result

        return run

    def _bulk_search(self, client, queries: Sequence[str]) -> dict:
        """Pipelined search batch: fetch concurrently, classify per item.

        Mirrors the sequential loop's exception classification exactly —
        the bulk call hands back results *or exceptions* in submission
        order, so each query lands in the same ``hits``/``dead`` slot it
        would have sequentially.  The one semantic difference is
        quarantine: concurrent in-flight queries cannot be "skipped
        after" a quarantine the way a sequential loop skips them, so
        each fast-failed query is classified on its own answer.
        """
        values = client.get_json_many(
            [("/search", {"q": query}) for query in queries]
        )
        hits: List[List[Metadata]] = []
        dead: List[List[str]] = []
        quarantined = False
        for query, value in zip(queries, values):
            if isinstance(value, MarketQuarantinedError):
                if self._fail_fast:
                    raise value
                quarantined = True
                hits.append([])
                dead.append([query, REASON_QUARANTINED])
            elif isinstance(value, ForbiddenError):
                hits.append([])
                if value.retry_after is not None:
                    dead.append([query, REASON_BANNED])
            elif isinstance(value, RateLimitedError):
                hits.append([])
                dead.append([query, REASON_RATE_LIMITED])
            elif isinstance(value, HttpError):
                hits.append([])
                dead.append([query, REASON_RETRY_EXHAUSTED])
            elif isinstance(value, BaseException):
                raise value  # not crawl weather: propagate
            else:
                hits.append(value)
        return {"hits": hits, "quarantined": quarantined, "dead": dead}

    # ------------------------------------------------------------------
    # APKs
    # ------------------------------------------------------------------

    def _collect_apks(
        self,
        snapshot: Snapshot,
        stats: CrawlStats,
        telemetry: CrawlTelemetry,
        journal: Optional[CampaignJournal],
        dead_letters: List[DeadLetter],
    ) -> None:
        sharded = {
            market_id: records
            for market_id in self._engine.market_ids
            if (records := snapshot.in_market(market_id))
        }
        outcomes = self._engine.run(
            {m: self._download_task(m, records, journal, snapshot)
             for m, records in sharded.items()}
        )
        for market_id, records in sharded.items():
            market = telemetry.market(market_id)
            doc = outcomes[market_id]
            if doc["rate_limited"]:
                stats.rate_limited_markets.add(market_id)
            if doc["quarantined"]:
                stats.degraded_markets.add(market_id)
            reasons = doc.get("reasons") or [None] * len(records)
            for record, outcome, reason in zip(records, doc["outcomes"], reasons):
                if outcome == APK_FROM_MARKET:
                    stats.apk_downloaded += 1
                    market.apk_downloaded += 1
                elif outcome == APK_FROM_ARCHIVE:
                    stats.apk_backfilled += 1
                    market.apk_backfilled += 1
                elif outcome == _DL_PARSE_ERROR:
                    stats.apk_parse_errors += 1
                else:
                    stats.apk_missing += 1
                    market.apk_missing += 1
                    if outcome == _DL_QUARANTINED:
                        dead_letters.append(DeadLetter(
                            market_id, "download", record.package,
                            REASON_QUARANTINED,
                        ))
                    elif reason is not None:
                        dead_letters.append(DeadLetter(
                            market_id, "download", record.package, reason
                        ))

    def _download_task(
        self,
        market_id: str,
        records: Sequence[CrawlRecord],
        journal: Optional[CampaignJournal],
        snapshot: Snapshot,
    ):
        client = self._engine.client(market_id)
        backfill = self._backfill
        lane_clock = self._engine.lane(market_id).clock
        lane = journal.lane(market_id) if journal is not None else None
        store = journal.apks if journal is not None else None
        # Pipelined prefetch is withheld from quota-limited markets
        # (Google Play): the download quota is consumed in server
        # arrival order, and concurrent in-flight requests would make
        # *which* package hits the exhausted quota nondeterministic.
        use_bulk = (
            self._pipeline > 1
            and lane is None
            and hasattr(client, "get_bytes_many")
            and not getattr(self._servers[market_id], "quota_limited", False)
        )

        def fetch(
            record: CrawlRecord, quarantined: bool, prefetched: object = _UNFETCHED
        ) -> Tuple[dict, object, bool]:
            """One live (market, package) fetch -> (doc, parsed, quarantined)."""
            blob: Optional[bytes] = None
            source: Optional[str] = None
            rate_limited = False
            reason: Optional[str] = None
            if not quarantined:
                try:
                    if prefetched is _UNFETCHED:
                        blob = client.get_bytes(
                            "/download", {"package": record.package}
                        )
                    elif isinstance(prefetched, BaseException):
                        raise prefetched  # classify exactly like a live raise
                    else:
                        blob = prefetched
                    source = APK_FROM_MARKET
                except RateLimitedError:
                    # Quota shedding (Google Play): the backfill archive
                    # is the designed fallback, so this is not a dead
                    # letter on its own — apk_missing accounts it.
                    rate_limited = True
                except MarketQuarantinedError:
                    if self._fail_fast:
                        raise
                    quarantined = True
                except ForbiddenError as exc:
                    if exc.retry_after is not None:
                        reason = REASON_BANNED
                except NotFoundError:
                    pass  # definitive: the market no longer hosts it
                except HttpError:
                    reason = REASON_RETRY_EXHAUSTED
            if blob is None and backfill is not None:
                blob = backfill.lookup(record.package, record.version_name)
                if blob is not None:
                    source = APK_FROM_ARCHIVE
                    reason = None
            if blob is None:
                outcome = _DL_QUARANTINED if quarantined else _DL_FAILED
                return (
                    {"outcome": outcome, "md5": None, "source": None,
                     "rate_limited": rate_limited, "reason": reason},
                    None,
                    quarantined,
                )
            try:
                parsed = parse_apk(blob)
            except ApkParseError:
                return (
                    {"outcome": _DL_PARSE_ERROR, "md5": None, "source": None,
                     "rate_limited": rate_limited, "reason": None},
                    None,
                    quarantined,
                )
            md5 = store.put(parsed) if store is not None else parsed.md5
            return (
                {"outcome": source, "md5": md5, "source": source,
                 "rate_limited": rate_limited, "reason": None},
                parsed,
                quarantined,
            )

        def run() -> dict:
            with self._obs.span(
                "crawl.apk_batch",
                market=market_id,
                clock=lane_clock,
                packages=len(records),
            ) as batch_span:
                outcomes: List[str] = []
                reasons: List[Optional[str]] = []
                rate_limited = False
                quarantined = False
                prefetched: Optional[List[object]] = None
                if use_bulk and records:
                    prefetched = client.get_bytes_many(
                        [("/download", {"package": r.package}) for r in records]
                    )
                    batch_span["pipelined"] = True
                for index, record in enumerate(records):
                    with self._obs.span(
                        "crawl.apk",
                        market=market_id,
                        clock=lane_clock,
                        package=record.package,
                    ) as span:
                        parsed = None
                        doc = (
                            lane.replay("apk", record.package)
                            if lane is not None
                            else None
                        )
                        if doc is None:
                            doc, parsed, quarantined = fetch(
                                record,
                                quarantined,
                                prefetched[index]
                                if prefetched is not None
                                else _UNFETCHED,
                            )
                            if lane is not None:
                                # The APK doc is in the content store before
                                # this line lands, so a torn entry never
                                # dangles.
                                lane.record(
                                    "apk",
                                    record.package,
                                    doc,
                                    self._checkpoint(market_id),
                                )
                        else:
                            span["replayed"] = True
                            quarantined = (
                                quarantined or doc["outcome"] == _DL_QUARANTINED
                            )
                        if doc["md5"] is not None:
                            if parsed is None:
                                parsed = store.get(doc["md5"])  # replayed
                            snapshot.attach_apk(record, parsed, doc["source"])
                            parsed = None  # released once attached
                        span["outcome"] = doc["outcome"]
                        span["source"] = doc["source"]
                        outcomes.append(doc["outcome"])
                        reasons.append(doc.get("reason"))
                        rate_limited = rate_limited or doc["rate_limited"]
                batch_span["quarantined"] = quarantined
                return {
                    "outcomes": outcomes,
                    "reasons": reasons,
                    "rate_limited": rate_limited,
                    "quarantined": quarantined,
                }

        return run

    # ------------------------------------------------------------------
    # targeted recheck (second campaign helper)
    # ------------------------------------------------------------------

    def recheck(
        self, targets: Mapping[str, Iterable[str]], duration_days: float = 7.0
    ) -> Dict[str, Dict[str, bool]]:
        """For each market, test which packages are still listed.

        Markets whose web interface has gone dark (HiApk, OPPO at the
        second crawl) are reported as absent from the result entirely, so
        callers can exclude them — as the paper excludes both from its
        Table 6 analysis.  A market still under breaker quarantine gets
        the same treatment: from the crawler's seat it *is* dark.
        """
        reachable = {
            market_id: list(packages)
            for market_id, packages in targets.items()
            if (server := self._servers.get(market_id)) is not None
            and server.web_available
        }
        checked = self._engine.run(
            {m: self._recheck_task(m, packages) for m, packages in reachable.items()}
        )
        self._clock.advance(duration_days)
        return {
            market_id: presence
            for market_id, presence in checked.items()
            if presence is not None
        }

    def _recheck_task(self, market_id: str, packages: Sequence[str]):
        client = self._engine.client(market_id)
        lane_clock = self._engine.lane(market_id).clock

        def run() -> Optional[Dict[str, bool]]:
            with self._obs.span(
                "crawl.recheck",
                market=market_id,
                clock=lane_clock,
                packages=len(packages),
            ) as span:
                market_presence: Dict[str, bool] = {}
                for package in packages:
                    try:
                        client.get_json("/app", {"package": package})
                        market_presence[package] = True
                    except MarketQuarantinedError:
                        if self._fail_fast:
                            raise
                        span["quarantined"] = True
                        return None  # quarantined: treat the market as dark
                    except HttpError:
                        market_presence[package] = False
                span["still_listed"] = sum(market_presence.values())
                return market_presence

        return run
