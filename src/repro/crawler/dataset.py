"""Snapshot persistence.

The paper released its dataset to the research community; this module
plays that role for the simulated study: a crawl snapshot round-trips
through a gzipped JSON-lines file, including the parsed-APK content the
analyses consume (manifest, code packages, signature, META-INF entries,
MD5).  Loading reconstructs an equivalent :class:`Snapshot` without
re-running the crawl.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Union

from repro.apk.archive import ParsedApk
from repro.apk.models import ChannelFile, CodePackage, Manifest
from repro.crawler.snapshot import CrawlRecord, Snapshot

__all__ = ["save_snapshot", "load_snapshot", "DATASET_FORMAT_VERSION"]

DATASET_FORMAT_VERSION = 1


class DatasetFormatError(Exception):
    """Raised for unreadable or incompatible dataset files."""


def _apk_to_doc(apk: ParsedApk) -> dict:
    return {
        "manifest": {
            "package": apk.manifest.package,
            "version_code": apk.manifest.version_code,
            "version_name": apk.manifest.version_name,
            "min_sdk": apk.manifest.min_sdk,
            "target_sdk": apk.manifest.target_sdk,
            "permissions": list(apk.manifest.permissions),
        },
        "packages": [
            {
                "name": pkg.name,
                "features": sorted(pkg.features.items()),
                "blocks": list(pkg.blocks),
            }
            for pkg in apk.packages
        ],
        "signer": apk.signer_fingerprint,
        "signer_name": apk.signer_name,
        "meta_inf": [[e.name, e.content] for e in apk.meta_inf],
        "obfuscated_by": apk.obfuscated_by,
        "md5": apk.md5,
        "size_bytes": apk.size_bytes,
    }


def _apk_from_doc(doc: dict) -> ParsedApk:
    mdoc = doc["manifest"]
    return ParsedApk(
        manifest=Manifest(
            package=mdoc["package"],
            version_code=int(mdoc["version_code"]),
            version_name=mdoc["version_name"],
            min_sdk=int(mdoc["min_sdk"]),
            target_sdk=int(mdoc["target_sdk"]),
            permissions=tuple(mdoc["permissions"]),
        ),
        packages=tuple(
            CodePackage(
                name=p["name"],
                features={int(f): int(c) for f, c in p["features"]},
                blocks=tuple(int(b) for b in p["blocks"]),
            )
            for p in doc["packages"]
        ),
        signer_fingerprint=doc["signer"],
        signer_name=doc["signer_name"],
        meta_inf=tuple(ChannelFile(n, c) for n, c in doc["meta_inf"]),
        obfuscated_by=doc.get("obfuscated_by"),
        md5=doc["md5"],
        size_bytes=int(doc["size_bytes"]),
    )


def _record_to_doc(record: CrawlRecord) -> dict:
    return {
        "market": record.market_id,
        "package": record.package,
        "name": record.app_name,
        "version_name": record.version_name,
        "version_code": record.version_code,
        "category": record.category,
        "downloads": record.downloads,
        "install_range": list(record.install_range) if record.install_range else None,
        "rating": record.rating,
        "updated_day": record.updated_day,
        "developer": record.developer_name,
        "crawl_day": record.crawl_day,
        "apk_source": record.apk_source,
        "apk": _apk_to_doc(record.apk) if record.apk is not None else None,
    }


def _record_from_doc(doc: dict) -> CrawlRecord:
    install_range = doc.get("install_range")
    return CrawlRecord(
        market_id=doc["market"],
        package=doc["package"],
        app_name=doc["name"],
        version_name=doc["version_name"],
        version_code=int(doc["version_code"]),
        category=doc["category"],
        downloads=doc.get("downloads"),
        install_range=tuple(install_range) if install_range else None,
        rating=float(doc["rating"]),
        updated_day=int(doc["updated_day"]),
        developer_name=doc["developer"],
        crawl_day=float(doc["crawl_day"]),
        apk=_apk_from_doc(doc["apk"]) if doc.get("apk") else None,
        apk_source=doc.get("apk_source"),
    )


def save_snapshot(snapshot: Snapshot, path: Union[str, Path]) -> int:
    """Write a snapshot to a gzipped JSON-lines file; returns #records."""
    path = Path(path)
    count = 0
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        header = {
            "format": "repro-snapshot",
            "version": DATASET_FORMAT_VERSION,
            "label": snapshot.label,
        }
        handle.write(json.dumps(header) + "\n")
        for record in snapshot:
            handle.write(json.dumps(_record_to_doc(record),
                                    separators=(",", ":")) + "\n")
            count += 1
    return count


def load_snapshot(path: Union[str, Path]) -> Snapshot:
    """Read a snapshot saved by :func:`save_snapshot`."""
    path = Path(path)
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line:
                raise DatasetFormatError(f"{path}: empty file")
            header = json.loads(header_line)
            if header.get("format") != "repro-snapshot":
                raise DatasetFormatError(f"{path}: not a repro snapshot")
            if header.get("version") != DATASET_FORMAT_VERSION:
                raise DatasetFormatError(
                    f"{path}: unsupported version {header.get('version')}"
                )
            snapshot = Snapshot(header.get("label", "loaded"))
            for line in handle:
                snapshot.add(_record_from_doc(json.loads(line)))
            return snapshot
    except (OSError, ValueError, KeyError) as exc:
        raise DatasetFormatError(f"{path}: {exc}") from exc
