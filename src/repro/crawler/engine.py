"""The parallel crawl engine: market lanes over a thread pool.

The paper's campaign ran on a 50-server fleet issuing requests to all
17 markets concurrently (Section 3).  This module supplies that
concurrency while keeping every run bit-reproducible:

* **One lane per market.**  Each market gets its own
  :class:`~repro.net.client.HttpClient`, its own :class:`LaneClock`,
  and (optionally) its own token-bucket pacer.  Within a lane requests
  are strictly sequential, so the request-ordinal sequence a server
  observes — and therefore its deterministic fault injection — is
  identical at any worker count.
* **Lanes never touch shared state.**  Client back-off advances only
  the lane clock; the shared campaign clock stays frozen until the
  coordinator accounts the campaign duration.  A stalled, 429-happy
  market burns its own lane time and cannot stall the fleet.
* **Barrier scheduling.**  :meth:`CrawlEngine.run` fans a batch of
  per-market tasks out over a :class:`~concurrent.futures.ThreadPoolExecutor`
  and joins them; the coordinator then merges results in canonical
  market order, which is what makes parallel output identical to the
  serial path.

Threads only pay off because a "request" models network I/O: with
:class:`~repro.markets.server.MarketServer` latency injection enabled
(or against a real socket transport) lanes overlap their waits, which
is where the benchmark speedup comes from.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, TypeVar

from repro.crawler.telemetry import CrawlTelemetry
from repro.net.breaker import DEFAULT_BREAKER_POLICY, BreakerPolicy, CircuitBreaker
from repro.net.client import ClientStats, HttpClient
from repro.net.credentials import CredentialManager
from repro.net.identity import IdentityPolicy, IdentityPool
from repro.net.ratelimit import PerMarketRateLimiter
from repro.net.retry import RetryPolicy
from repro.obs import NULL_OBS, Observability, breaker_listener
from repro.util.simtime import SimClock

__all__ = [
    "LaneClock",
    "MarketLane",
    "CrawlEngine",
    "DEFAULT_RATE_LIMIT_WAITS",
    "RATE_LIMIT_WAIT_CAP",
]

T = TypeVar("T")

#: Consecutive 429s a lane rides out per request before giving up.
DEFAULT_RATE_LIMIT_WAITS = 4

#: Longest ``retry_after`` hint (simulated days) a lane honors.  Burst
#: 429s hint minutes and are waited out; Google Play's download quota
#: hints 30 days and is surfaced immediately so the coordinator can
#: fall back to the offline archive.
RATE_LIMIT_WAIT_CAP = 0.5


class LaneClock:
    """One market lane's view of campaign time.

    ``now`` is the shared campaign clock plus a lane-local offset; all
    of the lane's sleeps (back-off, pacing) land in the offset.  Lanes
    therefore wait concurrently — as fleet workers do — instead of
    serializing their waits through the shared clock, and the shared
    clock never moves mid-campaign, which keeps record timestamps and
    market availability stable no matter how requests interleave.
    """

    def __init__(self, base: SimClock):
        self._base = base
        self.offset = 0.0

    @property
    def now(self) -> float:
        return self._base.now + self.offset

    def advance(self, duration: float) -> float:
        if duration < 0:
            raise ValueError(f"cannot advance by a negative duration: {duration}")
        self.offset += duration
        return self.now


class MarketLane:
    """One market's client, clock, and campaign-scoped counters."""

    def __init__(
        self,
        market_id: str,
        transport,
        base_clock: SimClock,
        retry_policy: Optional[RetryPolicy],
        rate_limiter: Optional[PerMarketRateLimiter],
        max_rate_limit_waits: int,
        max_rate_limit_wait: Optional[float],
        breaker_policy: Optional[BreakerPolicy] = None,
        obs: Observability = NULL_OBS,
        credentials: Optional[CredentialManager] = None,
        identities: Optional[IdentityPool] = None,
        client_factory=None,
    ):
        """``transport`` is whatever the lane's client pushes requests
        through: the server's bare ``handle`` callable (in-process), a
        :class:`~repro.net.transport.SocketTransport`, or — under the
        asyncio engine — an async transport the ``client_factory``
        knows how to drive.  ``client_factory`` defaults to
        :class:`~repro.net.client.HttpClient` and receives exactly its
        constructor signature."""
        self.market_id = market_id
        self.clock = LaneClock(base_clock)
        pacer = rate_limiter.bind(market_id, self.clock) if rate_limiter else None
        self.breaker = (
            CircuitBreaker(
                market_id,
                self.clock,
                breaker_policy,
                on_transition=breaker_listener(obs, market_id, self.clock),
            )
            if breaker_policy is not None
            else None
        )
        self.credentials = credentials
        self.identities = identities
        factory = client_factory if client_factory is not None else HttpClient
        self.client = factory(
            transport,
            self.clock,
            retry_policy=retry_policy,
            max_rate_limit_waits=max_rate_limit_waits,
            max_rate_limit_wait=max_rate_limit_wait,
            pacer=pacer,
            jitter_key=market_id,
            breaker=self.breaker,
            credentials=credentials,
            identities=identities,
            obs=obs.lane(market_id, self.clock),
        )
        self._stats_baseline: ClientStats = self.client.stats.copy()
        self._offset_baseline = 0.0
        self._paced_baseline = 0.0
        self._trips_baseline = 0

    def begin_campaign(self, rate_limiter: Optional[PerMarketRateLimiter]) -> None:
        self._stats_baseline = self.client.stats.copy()
        self._offset_baseline = self.clock.offset
        if rate_limiter is not None:
            self._paced_baseline = rate_limiter.sim_days_waited(self.market_id)
        if self.breaker is not None:
            # A new campaign starts with a clean bill of health: markets
            # that died last campaign get re-probed, not written off.
            self.breaker.reset()
            self._trips_baseline = 0

    def campaign_delta(self) -> ClientStats:
        return self.client.stats.delta(self._stats_baseline)

    def campaign_backoff(self) -> float:
        return self.clock.offset - self._offset_baseline

    def campaign_paced(self, rate_limiter: Optional[PerMarketRateLimiter]) -> float:
        if rate_limiter is None:
            return 0.0
        return rate_limiter.sim_days_waited(self.market_id) - self._paced_baseline

    def campaign_trips(self) -> int:
        if self.breaker is None:
            return 0
        return self.breaker.trips - self._trips_baseline

    # -- checkpoint plumbing ----------------------------------------------

    def export_state(self, rate_limiter: Optional[PerMarketRateLimiter]) -> dict:
        """The lane-side state one journal entry snapshots."""
        state: dict = {
            "stats": self.client.stats.export_state(),
            "offset": self.clock.offset,
        }
        if self.breaker is not None:
            state["breaker"] = self.breaker.export_state()
        if rate_limiter is not None:
            bucket = rate_limiter.export_state(self.market_id)
            if bucket is not None:
                state["pacer"] = bucket
        if self.credentials is not None:
            state["auth"] = self.credentials.export_state()
        if self.identities is not None:
            state["identities"] = self.identities.export_state()
        return state

    def restore_state(
        self, state: dict, rate_limiter: Optional[PerMarketRateLimiter]
    ) -> None:
        self.client.stats = ClientStats.from_state(state["stats"])
        self.clock.offset = float(state["offset"])
        if self.breaker is not None and "breaker" in state:
            self.breaker.restore_state(state["breaker"])
        if rate_limiter is not None and "pacer" in state:
            rate_limiter.restore_state(self.market_id, state["pacer"])
        if self.credentials is not None and "auth" in state:
            self.credentials.restore_state(state["auth"])
        if self.identities is not None and "identities" in state:
            self.identities.restore_state(state["identities"])


class CrawlEngine:
    """Schedules per-market tasks over a shared worker pool.

    ``workers`` bounds real concurrency; results are identical at any
    value because work is sharded by market and merged in canonical
    order by the caller.
    """

    def __init__(
        self,
        servers: Mapping[str, object],
        clock: SimClock,
        workers: int = 1,
        rate_limiter: Optional[PerMarketRateLimiter] = None,
        retry_policy: Optional[RetryPolicy] = None,
        max_rate_limit_waits: int = DEFAULT_RATE_LIMIT_WAITS,
        max_rate_limit_wait: Optional[float] = RATE_LIMIT_WAIT_CAP,
        breaker_policy: Optional[BreakerPolicy] = DEFAULT_BREAKER_POLICY,
        obs: Observability = NULL_OBS,
        identity_policy: Optional[IdentityPolicy] = None,
        identity_seed: int = 0,
        transports: Optional[Mapping[str, object]] = None,
    ):
        """``identity_policy`` equips every lane with an
        :class:`~repro.net.identity.IdentityPool` (identities derived
        from ``(identity_seed, market_id, slot)`` substreams — never
        from worker ids, preserving the determinism contract).  Lanes
        whose server demands authentication additionally get a
        :class:`~repro.net.credentials.CredentialManager`.

        ``transports`` substitutes a lane's transport for the server's
        in-process ``handle`` (e.g. :meth:`ServingTier.transports`);
        markets absent from the mapping keep the in-process fast path.
        The engine owns the transports it is handed and closes them in
        :meth:`close`."""
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._clock = clock
        self._rate_limiter = rate_limiter
        self.obs = obs
        self._transports: Dict[str, object] = dict(transports or {})
        self._lanes: Dict[str, MarketLane] = {}
        for market_id, server in servers.items():
            gate = getattr(server, "hostility", None)
            needs_auth = gate is not None and gate.policy.auth
            self._lanes[market_id] = MarketLane(
                market_id,
                self._lane_transport(market_id, server),
                clock,
                retry_policy,
                rate_limiter,
                max_rate_limit_waits,
                max_rate_limit_wait,
                breaker_policy,
                obs,
                credentials=CredentialManager(market_id) if needs_auth else None,
                identities=(
                    IdentityPool(market_id, identity_policy, seed=identity_seed)
                    if identity_policy is not None
                    else None
                ),
                client_factory=self._client_factory(),
            )

    def _lane_transport(self, market_id: str, server) -> object:
        """The transport one lane's client drives (subclass hook)."""
        transport = self._transports.get(market_id)
        return transport if transport is not None else server.handle

    def _client_factory(self):
        """Per-lane client factory; ``None`` means plain ``HttpClient``."""
        return None

    def close(self) -> None:
        """Release transport resources (sockets); idempotent."""
        transports, self._transports = self._transports, {}
        for transport in transports.values():
            close = getattr(transport, "close", None)
            if close is not None:
                close()

    # -- lanes -------------------------------------------------------------

    def lane(self, market_id: str) -> MarketLane:
        return self._lanes[market_id]

    def client(self, market_id: str) -> HttpClient:
        return self._lanes[market_id].client

    @property
    def market_ids(self) -> List[str]:
        """Canonical lane order: the server-map insertion order."""
        return list(self._lanes)

    @property
    def total_requests(self) -> int:
        return sum(lane.client.stats.requests for lane in self._lanes.values())

    @property
    def max_lane_backoff(self) -> float:
        """The slowest lane's accumulated sleep (simulated days)."""
        return max((lane.clock.offset for lane in self._lanes.values()), default=0.0)

    # -- campaign bookkeeping ---------------------------------------------

    def begin_campaign(self, label: str) -> CrawlTelemetry:
        """Start a telemetry window covering one campaign's traffic.

        The telemetry is a view over the run's metrics registry (when
        one is recording), so the operator table and the metrics export
        read the same counters.
        """
        for lane in self._lanes.values():
            lane.begin_campaign(self._rate_limiter)
        if self.obs.tracer is not None:
            self.obs.tracer.set_trace(label)
        return CrawlTelemetry(
            label=label, workers=self.workers, registry=self.obs.metrics
        )

    def end_campaign(self, telemetry: CrawlTelemetry) -> None:
        """Fold each lane's campaign counters into the telemetry."""
        for market_id, lane in self._lanes.items():
            market = telemetry.market(market_id)
            market.fold_client(lane.campaign_delta())
            market.sim_days_paced += lane.campaign_paced(self._rate_limiter)
            market.breaker_trips += lane.campaign_trips()
            if self._rate_limiter is not None:
                market.rate_budget = self._rate_limiter.params_for(market_id)[0]

    # -- checkpoint plumbing ----------------------------------------------

    def lane_state(self, market_id: str) -> dict:
        """Export one lane's client/breaker/pacer state for the journal."""
        return self._lanes[market_id].export_state(self._rate_limiter)

    def restore_lane_state(self, market_id: str, state: dict) -> None:
        self._lanes[market_id].restore_state(state, self._rate_limiter)

    # -- scheduling --------------------------------------------------------

    def run(self, tasks: Mapping[str, Callable[[], T]]) -> Dict[str, T]:
        """Run one per-market task batch; barrier-join before returning.

        With one worker (or one task) everything runs inline on the
        calling thread — the serial path is literally the parallel path
        at width 1, not separate code.
        """
        if self.workers <= 1 or len(tasks) <= 1:
            return {market_id: task() for market_id, task in tasks.items()}
        results: Dict[str, T] = {}
        width = min(self.workers, len(tasks))
        with ThreadPoolExecutor(max_workers=width, thread_name_prefix="crawl-lane") as pool:
            futures = {market_id: pool.submit(task) for market_id, task in tasks.items()}
            for market_id, future in futures.items():
                results[market_id] = future.result()
        return results
