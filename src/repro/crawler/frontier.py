"""BFS crawl frontier with de-duplication."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Set

__all__ = ["Frontier"]


class Frontier:
    """A FIFO frontier of work items that never re-admits a seen item."""

    def __init__(self, seeds: Iterable[str] = ()):
        self._queue: Deque[str] = deque()
        self._seen: Set[str] = set()
        self.push_many(seeds)

    def push(self, item: str) -> bool:
        """Enqueue ``item`` unless it was ever enqueued before."""
        if item in self._seen:
            return False
        self._seen.add(item)
        self._queue.append(item)
        return True

    def push_many(self, items: Iterable[str]) -> int:
        return sum(1 for item in items if self.push(item))

    def pop(self) -> Optional[str]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def pop_many(self) -> "list[str]":
        """Drain the current queue in FIFO order (one discovery batch)."""
        batch = list(self._queue)
        self._queue.clear()
        return batch

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def seen_count(self) -> int:
        return len(self._seen)

    def has_seen(self, item: str) -> bool:
        return item in self._seen
