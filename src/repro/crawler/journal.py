"""Checkpoint/resume journaling for crawl campaigns.

A campaign that dies at hour 30 of a multi-day crawl should not start
over.  This module is the write-ahead log that makes a campaign
restartable: each market lane appends one JSONL entry per completed
unit of work (discovery sweep, search round, per-package APK fetch) to
its own append-only file, together with a snapshot of the
deterministic state the unit left behind (server request ordinal and
fault-injector streak, download quota, client counters, lane-clock
offset, breaker and pacer state).

A resumed campaign replays the journal instead of re-issuing requests:
journaled work is applied verbatim, the last entry's state snapshot is
restored into the server and lane, and the first *live* request picks
up exactly where the dead run stopped — so the finished snapshot is
bit-identical to an uninterrupted run (the kill-and-resume tests assert
digest equality at arbitrary cut points).

Layout under the checkpoint root::

    <root>/apks/<md5>.json             content-addressed parsed APKs
    <root>/<campaign>/<market>.jsonl   one WAL per market lane

APK payloads are stored once by content digest and referenced from
journal entries by MD5, so a lane entry stays small and replay
re-hydrates :class:`~repro.apk.archive.ParsedApk` objects from the
offline store.

Entries are JSON lines ``{"kind", "key", "result", "state"}``.  The
first entry of each lane is ``begin`` — the state at campaign start,
which matters when a later campaign reuses servers a replayed earlier
campaign never touched.  A torn final line (the process died mid-write)
is discarded on load; replay that *diverges* from the journal (the
cursor entry's kind/key does not match the work the coordinator is
about to do) raises :class:`JournalError` rather than silently mixing
two different campaigns.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.apk.archive import ParsedApk

__all__ = ["CrawlJournal", "CampaignJournal", "LaneJournal", "ApkStore", "JournalError"]

JOURNAL_FORMAT_VERSION = 1

KIND_BEGIN = "begin"


class JournalError(Exception):
    """Raised for corrupt journals or replay/journal divergence."""


def _sanitize(name: str) -> str:
    """A label/market id as a safe file-system component."""
    return "".join(c if (c.isalnum() or c in "-_.") else "_" for c in name) or "_"


class ApkStore:
    """Content-addressed store of parsed APKs, shared by all lanes.

    ``put`` is idempotent (same digest, same content) and crash-safe:
    the doc is written to a unique temp file and atomically renamed, so
    a journal entry never references a half-written APK as long as the
    caller stores the APK *before* appending the entry.
    """

    def __init__(self, root: Union[str, Path]):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._cache: Dict[str, ParsedApk] = {}

    def _path(self, md5: str) -> Path:
        return self._root / f"{_sanitize(md5)}.json"

    def put(self, apk: ParsedApk) -> str:
        """Store one APK; returns its MD5 (the reference key)."""
        from repro.crawler.dataset import _apk_to_doc

        md5 = apk.md5
        path = self._path(md5)
        if md5 not in self._cache and not path.exists():
            tmp = path.with_name(f"{path.name}.{os.getpid()}.{id(apk):x}.tmp")
            tmp.write_text(
                json.dumps(_apk_to_doc(apk), separators=(",", ":")), encoding="utf-8"
            )
            os.replace(tmp, path)
        self._cache[md5] = apk
        return md5

    def get(self, md5: str) -> ParsedApk:
        """Load one APK by digest (cached)."""
        from repro.crawler.dataset import _apk_from_doc

        apk = self._cache.get(md5)
        if apk is not None:
            return apk
        path = self._path(md5)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            apk = _apk_from_doc(doc)
        except (OSError, ValueError, KeyError) as exc:
            raise JournalError(f"APK store entry {md5} unreadable: {exc}") from exc
        self._cache[md5] = apk
        return apk


class LaneJournal:
    """One market lane's WAL within one campaign.

    Only the lane's own thread touches its journal, so no locking is
    needed — the same ownership rule the lane clock and client stats
    already follow.
    """

    def __init__(self, path: Path, market_id: str):
        self._path = path
        self.market_id = market_id
        self._entries: List[dict] = []
        self._cursor = 0
        self._handle = None
        if path.exists():
            self._entries = self._load(path)

    @staticmethod
    def _load(path: Path) -> List[dict]:
        entries: List[dict] = []
        with path.open("r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except ValueError as exc:
                if lineno == len(lines) - 1:
                    # Torn final line: the process died mid-append.  The
                    # WAL contract is that everything *before* it is
                    # complete, so resume simply loses the last unit.
                    break
                raise JournalError(f"{path}:{lineno + 1}: corrupt entry") from exc
        return entries

    # -- reading (replay) --------------------------------------------------

    @property
    def entries(self) -> int:
        return len(self._entries)

    def begin_state(self) -> Optional[dict]:
        """The campaign-start state, if this lane was journaled before."""
        if self._entries and self._entries[0].get("kind") == KIND_BEGIN:
            return self._entries[0]["state"]
        return None

    def last_state(self) -> Optional[dict]:
        """State after the most recent journaled unit of work."""
        if not self._entries:
            return None
        return self._entries[-1]["state"]

    def replay(self, kind: str, key: str) -> Optional[dict]:
        """The journaled result for the next unit of work, or None.

        None means the journal is exhausted: the unit must run live (and
        be recorded).  A cursor entry that does not match ``(kind, key)``
        means the caller's work stream diverged from the journaled
        campaign — a different config, seed, or label — and replaying it
        would corrupt the snapshot.
        """
        if self._cursor == 0 and self.begin_state() is not None:
            self._cursor = 1  # the begin entry is consumed by restore
        if self._cursor >= len(self._entries):
            return None
        entry = self._entries[self._cursor]
        if entry.get("kind") != kind or entry.get("key") != key:
            raise JournalError(
                f"{self._path}: journal diverged at entry {self._cursor}: "
                f"expected ({kind!r}, {key!r}), "
                f"found ({entry.get('kind')!r}, {entry.get('key')!r})"
            )
        self._cursor += 1
        return entry["result"]

    # -- writing (live) ----------------------------------------------------

    def _append(self, entry: dict) -> None:
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._handle.flush()

    def record_begin(self, state: dict) -> None:
        if self._entries:
            raise JournalError(f"{self._path}: begin after {len(self._entries)} entries")
        entry = {"kind": KIND_BEGIN, "key": self.market_id, "state": state}
        self._append(entry)
        self._entries.append(entry)
        self._cursor = 1

    def record(self, kind: str, key: str, result: dict, state: dict) -> None:
        """Journal one completed unit of work and its post-state."""
        if self._cursor < len(self._entries):
            raise JournalError(
                f"{self._path}: append while {len(self._entries) - self._cursor} "
                "journaled entries remain unreplayed"
            )
        entry = {"kind": kind, "key": key, "result": result, "state": state}
        self._append(entry)
        self._entries.append(entry)
        self._cursor += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CampaignJournal:
    """All lane journals of one labeled campaign."""

    def __init__(self, root: Path, label: str, apks: ApkStore, resume: bool):
        self.label = label
        self.apks = apks
        self._dir = root / _sanitize(label)
        if not resume and self._dir.exists():
            # A fresh (non-resume) run must not replay a stale journal.
            for stale in self._dir.glob("*.jsonl"):
                stale.unlink()
        self._dir.mkdir(parents=True, exist_ok=True)
        self._lanes: Dict[str, LaneJournal] = {}

    def lane(self, market_id: str) -> LaneJournal:
        lane = self._lanes.get(market_id)
        if lane is None:
            path = self._dir / f"{_sanitize(market_id)}.jsonl"
            lane = self._lanes[market_id] = LaneJournal(path, market_id)
        return lane

    def close(self) -> None:
        for lane in self._lanes.values():
            lane.close()


class CrawlJournal:
    """One checkpoint directory: a shared APK store + per-campaign WALs.

    ``resume=False`` (the default) starts every campaign clean, deleting
    any stale lane journals under the same label; ``resume=True`` replays
    whatever the directory already holds.  The APK store is kept either
    way — it is content-addressed, so stale entries are harmless.
    """

    def __init__(self, root: Union[str, Path], resume: bool = False):
        self.root = Path(root)
        self.resume = resume
        self.root.mkdir(parents=True, exist_ok=True)
        self._meta_path = self.root / "journal.json"
        self._check_version()
        self.apks = ApkStore(self.root / "apks")
        self._campaigns: Dict[str, CampaignJournal] = {}

    def _check_version(self) -> None:
        if self._meta_path.exists():
            try:
                meta = json.loads(self._meta_path.read_text(encoding="utf-8"))
            except ValueError as exc:
                raise JournalError(f"{self._meta_path}: corrupt metadata") from exc
            if meta.get("version") != JOURNAL_FORMAT_VERSION:
                raise JournalError(
                    f"{self._meta_path}: unsupported journal version "
                    f"{meta.get('version')}"
                )
        else:
            self._meta_path.write_text(
                json.dumps({"format": "repro-crawl-journal",
                            "version": JOURNAL_FORMAT_VERSION}),
                encoding="utf-8",
            )

    def campaign(self, label: str) -> CampaignJournal:
        campaign = self._campaigns.get(label)
        if campaign is None:
            campaign = self._campaigns[label] = CampaignJournal(
                self.root, label, self.apks, self.resume
            )
        return campaign

    def close(self) -> None:
        for campaign in self._campaigns.values():
            campaign.close()
