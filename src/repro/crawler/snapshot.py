"""Crawl snapshots.

A :class:`Snapshot` is the dataset one crawl campaign produces: one
:class:`CrawlRecord` per (market, package) with the market-reported
metadata and, when the APK could be downloaded (or backfilled from the
offline archive), the parsed APK.  All analyses in
:mod:`repro.analysis` consume snapshots, never the ground-truth world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.apk.archive import ParsedApk

__all__ = ["CrawlRecord", "Snapshot", "MarketHealth", "DeadLetter", "HEALTH_OK", "HEALTH_DEGRADED"]

APK_FROM_MARKET = "market"
APK_FROM_ARCHIVE = "archive"

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"


@dataclass
class DeadLetter:
    """One work item a lane abandoned instead of aborting the campaign.

    ``kind`` names the phase ("discovery", "search", "download",
    "recheck"); ``key`` identifies the item (a query, a package);
    ``reason`` records why it was given up.
    """

    market_id: str
    kind: str
    key: str
    reason: str

    def to_doc(self) -> List[str]:
        return [self.market_id, self.kind, self.key, self.reason]

    @classmethod
    def from_doc(cls, doc) -> "DeadLetter":
        return cls(*(str(part) for part in doc))


@dataclass
class MarketHealth:
    """One market's campaign outcome under partial failure.

    ``completed`` counts records successfully ingested; ``degraded``
    counts work items lost to terminal failures while the market was
    still being tried; ``quarantined`` counts items skipped outright
    after the circuit breaker wrote the market off.  ``status`` is
    ``"ok"`` unless the breaker quarantined the market mid-campaign.
    """

    market_id: str
    status: str = HEALTH_OK
    completed: int = 0
    degraded: int = 0
    quarantined: int = 0

    @property
    def ok(self) -> bool:
        return self.status == HEALTH_OK

    def to_doc(self) -> Dict[str, object]:
        return {
            "market": self.market_id,
            "status": self.status,
            "completed": self.completed,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, object]) -> "MarketHealth":
        return cls(
            market_id=str(doc["market"]),
            status=str(doc["status"]),
            completed=int(doc["completed"]),  # type: ignore[arg-type]
            degraded=int(doc["degraded"]),  # type: ignore[arg-type]
            quarantined=int(doc["quarantined"]),  # type: ignore[arg-type]
        )


@dataclass
class CrawlRecord:
    """One (market, package) observation."""

    market_id: str
    package: str
    app_name: str
    version_name: str
    version_code: int
    category: str
    downloads: Optional[int]
    install_range: Optional[Tuple[int, int]]
    rating: float
    updated_day: int
    developer_name: str
    crawl_day: float
    apk: Optional[ParsedApk] = None
    apk_source: Optional[str] = None  # "market" | "archive" | None

    @classmethod
    def from_metadata(
        cls, market_id: str, meta: Mapping[str, object], crawl_day: float
    ) -> "CrawlRecord":
        """Build a record from a market endpoint's JSON payload."""
        install_range = meta.get("install_range")
        return cls(
            market_id=market_id,
            package=str(meta["package"]),
            app_name=str(meta["name"]),
            version_name=str(meta["version_name"]),
            version_code=int(meta["version_code"]),  # type: ignore[arg-type]
            category=str(meta["category"]),
            downloads=(None if meta.get("downloads") is None
                       else int(meta["downloads"])),  # type: ignore[arg-type]
            install_range=(None if install_range is None
                           else (int(install_range[0]), int(install_range[1]))),
            rating=float(meta["rating"]),  # type: ignore[arg-type]
            updated_day=int(meta["updated_day"]),  # type: ignore[arg-type]
            developer_name=str(meta["developer"]),
            crawl_day=crawl_day,
        )

    @property
    def has_apk(self) -> bool:
        return self.apk is not None

    @property
    def signer(self) -> Optional[str]:
        return self.apk.signer_fingerprint if self.apk is not None else None

    @property
    def md5(self) -> Optional[str]:
        return self.apk.md5 if self.apk is not None else None


class Snapshot:
    """The dataset of one crawl campaign."""

    def __init__(self, label: str):
        self.label = label
        self._records: Dict[Tuple[str, str], CrawlRecord] = {}
        self._by_market: Dict[str, List[CrawlRecord]] = {}
        self._by_package: Dict[str, List[CrawlRecord]] = {}
        #: Per-market campaign health, filled by the coordinator; empty
        #: for snapshots produced outside a campaign (tests, loaders).
        self.health: Dict[str, MarketHealth] = {}
        #: Work items abandoned under partial failure (never populated
        #: on a clean campaign).
        self.dead_letters: List[DeadLetter] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CrawlRecord]:
        return iter(self._records.values())

    def add(self, record: CrawlRecord) -> bool:
        """Insert a record; returns False if (market, package) already seen."""
        key = (record.market_id, record.package)
        if key in self._records:
            return False
        self._records[key] = record
        self._by_market.setdefault(record.market_id, []).append(record)
        self._by_package.setdefault(record.package, []).append(record)
        return True

    def get(self, market_id: str, package: str) -> Optional[CrawlRecord]:
        return self._records.get((market_id, package))

    def in_market(self, market_id: str) -> List[CrawlRecord]:
        return list(self._by_market.get(market_id, ()))

    def market_size(self, market_id: str) -> int:
        return len(self._by_market.get(market_id, ()))

    def markets(self) -> List[str]:
        return sorted(self._by_market)

    def for_package(self, package: str) -> List[CrawlRecord]:
        return list(self._by_package.get(package, ()))

    def packages(self) -> List[str]:
        return sorted(self._by_package)

    def markets_of(self, package: str) -> List[str]:
        return sorted(r.market_id for r in self._by_package.get(package, ()))

    def with_apk(self) -> Iterator[CrawlRecord]:
        return (r for r in self if r.has_apk)

    def degraded_markets(self) -> List[str]:
        """Markets the campaign completed without (breaker-quarantined)."""
        return sorted(m for m, h in self.health.items() if not h.ok)

    def market_health(self, market_id: str) -> MarketHealth:
        health = self.health.get(market_id)
        if health is None:
            return MarketHealth(market_id, completed=self.market_size(market_id))
        return health

    def sorted_records(self) -> List[CrawlRecord]:
        """Records in canonical (market_id, package) order."""
        return [self._records[key] for key in sorted(self._records)]

    def content_digest(self) -> int:
        """A stable digest of the full snapshot content.

        Covers every metadata field plus APK identity and provenance,
        over records in canonical order — two crawls produced the same
        dataset iff their digests match, which is how the determinism
        tests compare a parallel crawl against the serial path.
        """
        from repro.util.rng import stable_hash64

        rows = tuple(
            (
                r.market_id,
                r.package,
                r.app_name,
                r.version_name,
                r.version_code,
                r.category,
                r.downloads,
                r.install_range,
                r.rating,
                r.updated_day,
                r.developer_name,
                r.crawl_day,
                r.md5,
                r.signer,
                r.apk_source,
            )
            for r in self.sorted_records()
        )
        return stable_hash64("snapshot-content", self.label, rows)

    def apk_coverage(self, market_id: str) -> float:
        """Share of a market's records with a parsed APK."""
        records = self._by_market.get(market_id, ())
        if not records:
            return 0.0
        return sum(1 for r in records if r.has_apk) / len(records)
