"""Crawl snapshots.

A :class:`Snapshot` is the dataset one crawl campaign produces: one
:class:`CrawlRecord` per (market, package) with the market-reported
metadata and, when the APK could be downloaded (or backfilled from the
offline archive), the parsed APK.  All analyses in
:mod:`repro.analysis` consume snapshots, never the ground-truth world.

Snapshots have two backends behind one API.  The default keeps every
record in memory, exactly as before.  Handing the constructor a
:class:`~repro.store.corpus.CorpusStore` arms the out-of-core path:
once the record count crosses the store's spill threshold, records move
into a per-campaign SQLite segment table (APK documents into the blob
vault, records holding :class:`~repro.store.blobs.LazyApk` proxies) and
every accessor re-serves them through batched streaming cursors.
``content_digest()`` is backend-invariant: the streaming fold below
reproduces :func:`~repro.util.rng.stable_hash64` over the canonical row
tuple byte for byte without ever materializing it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.apk.archive import ParsedApk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.corpus import CorpusStore

__all__ = ["CrawlRecord", "Snapshot", "MarketHealth", "DeadLetter", "HEALTH_OK", "HEALTH_DEGRADED"]

APK_FROM_MARKET = "market"
APK_FROM_ARCHIVE = "archive"

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"


@dataclass
class DeadLetter:
    """One work item a lane abandoned instead of aborting the campaign.

    ``kind`` names the phase ("discovery", "search", "download",
    "recheck"); ``key`` identifies the item (a query, a package);
    ``reason`` records why it was given up.
    """

    market_id: str
    kind: str
    key: str
    reason: str

    def to_doc(self) -> List[str]:
        return [self.market_id, self.kind, self.key, self.reason]

    @classmethod
    def from_doc(cls, doc) -> "DeadLetter":
        return cls(*(str(part) for part in doc))


@dataclass
class MarketHealth:
    """One market's campaign outcome under partial failure.

    ``completed`` counts records successfully ingested; ``degraded``
    counts work items lost to terminal failures while the market was
    still being tried; ``quarantined`` counts items skipped outright
    after the circuit breaker wrote the market off.  ``status`` is
    ``"ok"`` unless the breaker quarantined the market mid-campaign.
    """

    market_id: str
    status: str = HEALTH_OK
    completed: int = 0
    degraded: int = 0
    quarantined: int = 0

    @property
    def ok(self) -> bool:
        return self.status == HEALTH_OK

    def to_doc(self) -> Dict[str, object]:
        return {
            "market": self.market_id,
            "status": self.status,
            "completed": self.completed,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, object]) -> "MarketHealth":
        return cls(
            market_id=str(doc["market"]),
            status=str(doc["status"]),
            completed=int(doc["completed"]),  # type: ignore[arg-type]
            degraded=int(doc["degraded"]),  # type: ignore[arg-type]
            quarantined=int(doc["quarantined"]),  # type: ignore[arg-type]
        )


@dataclass
class CrawlRecord:
    """One (market, package) observation."""

    market_id: str
    package: str
    app_name: str
    version_name: str
    version_code: int
    category: str
    downloads: Optional[int]
    install_range: Optional[Tuple[int, int]]
    rating: float
    updated_day: int
    developer_name: str
    crawl_day: float
    apk: Optional[ParsedApk] = None
    apk_source: Optional[str] = None  # "market" | "archive" | None

    @classmethod
    def from_metadata(
        cls, market_id: str, meta: Mapping[str, object], crawl_day: float
    ) -> "CrawlRecord":
        """Build a record from a market endpoint's JSON payload."""
        install_range = meta.get("install_range")
        return cls(
            market_id=market_id,
            package=str(meta["package"]),
            app_name=str(meta["name"]),
            version_name=str(meta["version_name"]),
            version_code=int(meta["version_code"]),  # type: ignore[arg-type]
            category=str(meta["category"]),
            downloads=(None if meta.get("downloads") is None
                       else int(meta["downloads"])),  # type: ignore[arg-type]
            install_range=(None if install_range is None
                           else (int(install_range[0]), int(install_range[1]))),
            rating=float(meta["rating"]),  # type: ignore[arg-type]
            updated_day=int(meta["updated_day"]),  # type: ignore[arg-type]
            developer_name=str(meta["developer"]),
            crawl_day=crawl_day,
        )

    @property
    def has_apk(self) -> bool:
        return self.apk is not None

    @property
    def signer(self) -> Optional[str]:
        return self.apk.signer_fingerprint if self.apk is not None else None

    @property
    def md5(self) -> Optional[str]:
        return self.apk.md5 if self.apk is not None else None


def _digest_row(r: "CrawlRecord") -> Tuple:
    """The canonical per-record tuple the content digest folds over."""
    return (
        r.market_id,
        r.package,
        r.app_name,
        r.version_name,
        r.version_code,
        r.category,
        r.downloads,
        r.install_range,
        r.rating,
        r.updated_day,
        r.developer_name,
        r.crawl_day,
        r.md5,
        r.signer,
        r.apk_source,
    )


def streaming_snapshot_digest(label: str, rows: Iterable[Tuple]) -> int:
    """Fold rows into the exact :func:`stable_hash64` snapshot digest.

    ``stable_hash64("snapshot-content", label, tuple(rows))`` hashes the
    ``repr`` of the full row tuple — which would materialize every
    record.  This reproduces the same byte stream incrementally: the
    tuple repr is ``(row0, row1, ...)`` with a trailing comma for the
    single-element case, so the digest is bit-identical to the legacy
    value at any corpus size (asserted by the store contract tests).
    """
    h = hashlib.blake2b(digest_size=8)
    prefix = "\x1f".join((repr("snapshot-content"), repr(label), "("))
    h.update(prefix.encode("utf-8"))
    count = 0
    for row in rows:
        if count:
            h.update(b", ")
        h.update(repr(row).encode("utf-8"))
        count += 1
    h.update(b",)" if count == 1 else b")")
    return int.from_bytes(h.digest(), "big")


class Snapshot:
    """The dataset of one crawl campaign.

    ``store=None`` (the default) keeps every record in memory.  With a
    :class:`~repro.store.corpus.CorpusStore`, the snapshot spills to the
    store's per-campaign segment table once the record count crosses the
    store's ``spill_threshold`` — below it, behavior and memory layout
    are identical to the memory backend.
    """

    def __init__(self, label: str, store: Optional["CorpusStore"] = None):
        self.label = label
        self._store = store
        self._family = None  # segment table once spilled
        self._keys: Set[Tuple[str, str]] = set()
        self._market_ids: Set[str] = set()
        self._records: Dict[Tuple[str, str], CrawlRecord] = {}
        self._by_market: Dict[str, List[CrawlRecord]] = {}
        self._by_package: Dict[str, List[CrawlRecord]] = {}
        #: Per-market campaign health, filled by the coordinator; empty
        #: for snapshots produced outside a campaign (tests, loaders).
        self.health: Dict[str, MarketHealth] = {}
        #: Work items abandoned under partial failure (never populated
        #: on a clean campaign).
        self.dead_letters: List[DeadLetter] = []

    @property
    def spilled(self) -> bool:
        """True once records live in the segment table, not in dicts."""
        return self._family is not None

    def __len__(self) -> int:
        if self.spilled:
            return len(self._keys)
        return len(self._records)

    def __iter__(self) -> Iterator[CrawlRecord]:
        if self.spilled:
            return (self._record_from_row(row) for row in self._family.scan())
        return iter(self._records.values())

    # -- out-of-core plumbing ----------------------------------------------

    def _row_of(self, record: CrawlRecord) -> Tuple:
        """One segment-table row: key columns + APK-free JSON payload."""
        from repro.crawler.dataset import _record_to_doc

        apk = record.apk
        if apk is not None and not isinstance(apk, ParsedApk):
            # Already a LazyApk: the doc is in the vault.
            md5, signer = apk.md5, apk.signer_fingerprint
            vc_hint = apk.version_code_hint
        elif apk is not None:
            self._store.vault.put(apk)
            md5, signer = apk.md5, apk.signer_fingerprint
            vc_hint = apk.manifest.version_code
        else:
            md5 = signer = vc_hint = None
        doc = _record_to_doc(record)
        doc["apk"] = None
        doc["apk_source"] = None  # provenance rides on the column
        payload = json.dumps(doc, separators=(",", ":"))
        return (
            record.market_id,
            record.package,
            md5,
            signer,
            vc_hint,
            record.apk_source,
            payload,
        )

    def _record_from_row(self, row: Tuple) -> CrawlRecord:
        from repro.crawler.dataset import _record_from_doc
        from repro.store.blobs import LazyApk

        market_id, package, md5, signer, vc_hint, apk_source, payload = row
        record = _record_from_doc(json.loads(payload))
        if md5 is not None:
            record.apk = LazyApk(self._store.vault, md5, signer, vc_hint)
            record.apk_source = apk_source
        return record

    def _spill(self) -> None:
        """Move the in-memory records into the store's segment table."""
        family = self._store.crawl_family(self.label)
        for record in self._records.values():  # insertion order = rowid
            family.append(*self._row_of(record))
        family.flush()
        self._family = family
        self._keys = set(self._records)
        self._market_ids = set(self._by_market)
        self._records.clear()
        self._by_market.clear()
        self._by_package.clear()

    # -- ingest ------------------------------------------------------------

    def add(self, record: CrawlRecord) -> bool:
        """Insert a record; returns False if (market, package) already seen."""
        key = (record.market_id, record.package)
        if self.spilled:
            if key in self._keys:
                return False
            self._keys.add(key)
            self._market_ids.add(record.market_id)
            self._family.append(*self._row_of(record))
            return True
        if key in self._records:
            return False
        self._records[key] = record
        self._by_market.setdefault(record.market_id, []).append(record)
        self._by_package.setdefault(record.package, []).append(record)
        if (
            self._store is not None
            and len(self._records) > self._store.spill_threshold
        ):
            self._spill()
        return True

    def attach_apk(
        self, record: CrawlRecord, apk: ParsedApk, source: Optional[str]
    ) -> None:
        """Attach a downloaded APK to a record, writing through the store.

        The memory backend mutates the record in place (today's
        behavior).  The spilled backend puts the APK document in the
        blob vault, updates the record's segment-table row, and leaves a
        :class:`LazyApk` on the caller's record object — the parsed APK
        is released as soon as the caller drops it, so the download
        phase never accumulates the corpus in RAM.
        """
        if not self.spilled:
            record.apk = apk
            record.apk_source = source
            return
        lazy = self._store.vault.lazy(apk)
        self._family.update(
            {
                "md5": lazy.md5,
                "signer": lazy.signer_fingerprint,
                "vc_hint": lazy.version_code_hint,
                "apk_source": source,
            },
            {"market_id": record.market_id, "package": record.package},
        )
        record.apk = lazy
        record.apk_source = source

    # -- lookups -----------------------------------------------------------

    def get(self, market_id: str, package: str) -> Optional[CrawlRecord]:
        if self.spilled:
            if (market_id, package) not in self._keys:
                return None
            row = self._family.get(market_id=market_id, package=package)
            return self._record_from_row(row) if row is not None else None
        return self._records.get((market_id, package))

    def in_market(self, market_id: str) -> List[CrawlRecord]:
        if self.spilled:
            return [
                self._record_from_row(row)
                for row in self._family.scan(market_id=market_id)
            ]
        return list(self._by_market.get(market_id, ()))

    def market_size(self, market_id: str) -> int:
        if self.spilled:
            return self._family.count(market_id=market_id)
        return len(self._by_market.get(market_id, ()))

    def markets(self) -> List[str]:
        if self.spilled:
            return sorted(self._market_ids)
        return sorted(self._by_market)

    def for_package(self, package: str) -> List[CrawlRecord]:
        if self.spilled:
            return [
                self._record_from_row(row)
                for row in self._family.scan(package=package)
            ]
        return list(self._by_package.get(package, ()))

    def packages(self) -> List[str]:
        if self.spilled:
            return sorted({package for _, package in self._keys})
        return sorted(self._by_package)

    def markets_of(self, package: str) -> List[str]:
        if self.spilled:
            return sorted(
                market for market, pkg in self._keys if pkg == package
            )
        return sorted(r.market_id for r in self._by_package.get(package, ()))

    def with_apk(self) -> Iterator[CrawlRecord]:
        return (r for r in self if r.has_apk)

    def degraded_markets(self) -> List[str]:
        """Markets the campaign completed without (breaker-quarantined)."""
        return sorted(m for m, h in self.health.items() if not h.ok)

    def market_health(self, market_id: str) -> MarketHealth:
        health = self.health.get(market_id)
        if health is None:
            return MarketHealth(market_id, completed=self.market_size(market_id))
        return health

    # -- streaming cursors -------------------------------------------------

    def iter_sorted(self, batch_size: Optional[int] = None) -> Iterator[CrawlRecord]:
        """Stream records in canonical (market_id, package) order.

        The spilled backend pages an ordered cursor (one batch resident);
        SQLite's BINARY collation over UTF-8 equals Python's str order,
        so both backends yield the identical sequence.
        """
        if self.spilled:
            return (
                self._record_from_row(row)
                for row in self._family.scan(
                    batch_size=batch_size, order_by=["market_id", "package"]
                )
            )
        return iter([self._records[key] for key in sorted(self._records)])

    def iter_package_groups(
        self, batch_size: Optional[int] = None
    ) -> Iterator[Tuple[str, List[CrawlRecord]]]:
        """Stream ``(package, records)`` groups in package order.

        Records within a group come in ingest order on both backends;
        unit building sorts them canonically anyway.  Only one package's
        records are resident at a time, which is what lets unit
        construction stream.
        """
        if not self.spilled:
            for package in sorted(self._by_package):
                yield package, list(self._by_package[package])
            return
        current: Optional[str] = None
        bucket: List[CrawlRecord] = []
        for row in self._family.scan(batch_size=batch_size, order_by=["package"]):
            record = self._record_from_row(row)
            if record.package != current:
                if bucket:
                    yield current, bucket
                current, bucket = record.package, []
            bucket.append(record)
        if bucket:
            yield current, bucket

    def sorted_records(self) -> List[CrawlRecord]:
        """Records in canonical (market_id, package) order."""
        return list(self.iter_sorted())

    def content_digest(self) -> int:
        """A stable digest of the full snapshot content.

        Covers every metadata field plus APK identity and provenance,
        over records in canonical order — two crawls produced the same
        dataset iff their digests match, which is how the determinism
        tests compare a parallel crawl against the serial path, and how
        the store contract tests compare backends.  Computed as a
        streaming fold (see :func:`streaming_snapshot_digest`) so the
        spilled backend never materializes the row tuple.
        """
        return streaming_snapshot_digest(
            self.label, (_digest_row(r) for r in self.iter_sorted())
        )

    def apk_coverage(self, market_id: str) -> float:
        """Share of a market's records with a parsed APK."""
        if self.spilled:
            total = with_apk = 0
            for row in self._family.scan(market_id=market_id):
                total += 1
                with_apk += row[2] is not None  # md5 column
            return with_apk / total if total else 0.0
        records = self._by_market.get(market_id, ())
        if not records:
            return 0.0
        return sum(1 for r in records if r.has_apk) / len(records)
