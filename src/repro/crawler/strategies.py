"""Per-market discovery strategies.

Section 3: "We follow different strategies to crawl each market."

* :class:`BfsRelatedStrategy` — Google Play: start from a public seed
  list (PrivacyGrade's 1.5M package names in the paper) and BFS through
  "related apps" recommendations and same-developer listings.
* :class:`IntegerIndexStrategy` — Baidu: the catalog is an incrementally
  numbered index (``shouji.baidu.com/software/INTEGER.html``).
* :class:`CategoryPagesStrategy` — everything else: enumerate category
  listing pages.
* :class:`PackageListStrategy` — package-list-only hostile markets:
  page the bare ``/packages`` name list, then fetch each listing via
  ``/app`` (the market refuses every other enumeration surface).

A strategy yields metadata dictionaries; the coordinator ingests them,
downloads APKs, and runs the cross-market parallel search.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Optional

from repro.crawler.frontier import Frontier
from repro.net.client import HttpClient
from repro.net.http import HttpError, NotFoundError

__all__ = [
    "DiscoveryStrategy",
    "BfsRelatedStrategy",
    "IntegerIndexStrategy",
    "CategoryPagesStrategy",
    "PackageListStrategy",
    "strategy_for",
]

Metadata = Mapping[str, object]


class DiscoveryStrategy:
    """Interface: enumerate a market's catalog via its web endpoints."""

    def discover(self, client: HttpClient) -> Iterator[Metadata]:
        raise NotImplementedError


class BfsRelatedStrategy(DiscoveryStrategy):
    """Google Play style BFS from a seed package list."""

    def __init__(self, seeds: Iterable[str], max_apps: Optional[int] = None):
        self._seeds = list(seeds)
        self._max_apps = max_apps

    def discover(self, client: HttpClient) -> Iterator[Metadata]:
        frontier = Frontier(self._seeds)
        yielded = 0
        while frontier:
            package = frontier.pop()
            if package is None:
                break
            try:
                meta = client.get_json("/app", {"package": package})
            except NotFoundError:
                continue
            except HttpError:
                continue
            yield meta
            yielded += 1
            if self._max_apps is not None and yielded >= self._max_apps:
                return
            for neighbor in self._expand(client, package, str(meta["developer"])):
                if frontier.push(str(neighbor["package"])):
                    # Neighbor metadata came along for free; surface it so
                    # the coordinator does not need a second /app call.
                    yield neighbor
                    yielded += 1
                    if self._max_apps is not None and yielded >= self._max_apps:
                        return

    @staticmethod
    def _expand(client: HttpClient, package: str, developer: str) -> List[Metadata]:
        neighbors: List[Metadata] = []
        try:
            neighbors.extend(client.get_json("/related", {"package": package}))
        except HttpError:
            pass
        try:
            neighbors.extend(client.get_json("/developer", {"name": developer}))
        except HttpError:
            pass
        return neighbors


class IntegerIndexStrategy(DiscoveryStrategy):
    """Baidu style: walk the incremental integer index until it ends.

    Besides the index running out (``max_consecutive_missing`` 404s in a
    row), the walk also stops after ``max_consecutive_failures``
    back-to-back transport failures: a fully dark market answers every
    slot with an error, and without the guard the walk would step
    through an unbounded index forever.  (With the circuit breaker
    enabled, :class:`~repro.net.breaker.MarketQuarantinedError` — which
    is deliberately *not* an ``HttpError`` — usually escapes first; the
    guard is the backstop for breaker-less clients.)
    """

    def __init__(
        self,
        max_consecutive_missing: int = 50,
        max_consecutive_failures: int = 200,
    ):
        self._max_consecutive_missing = max_consecutive_missing
        self._max_consecutive_failures = max_consecutive_failures

    def discover(self, client: HttpClient) -> Iterator[Metadata]:
        index = 0
        missing_streak = 0
        failure_streak = 0
        while missing_streak < self._max_consecutive_missing:
            try:
                meta = client.get_json("/index", {"i": index})
            except NotFoundError:
                missing_streak += 1
                failure_streak = 0
                index += 1
                continue
            except HttpError:
                failure_streak += 1
                if failure_streak >= self._max_consecutive_failures:
                    return  # the market is not answering anyone
                index += 1
                continue
            missing_streak = 0
            failure_streak = 0
            index += 1
            if meta is not None:  # None: slot exists but app was removed
                yield meta


class CategoryPagesStrategy(DiscoveryStrategy):
    """Generic Chinese market: walk every category's listing pages."""

    def discover(self, client: HttpClient) -> Iterator[Metadata]:
        try:
            categories = client.get_json("/categories")
        except HttpError:
            return
        for category in categories:
            page = 0
            while True:
                try:
                    listings = client.get_json(
                        "/category", {"name": category, "page": page}
                    )
                except HttpError:
                    break
                if not listings:
                    break
                for meta in listings:
                    yield meta
                page += 1


class PackageListStrategy(DiscoveryStrategy):
    """Hostile package-list-only market: seed from the bare name list.

    The market rejects ``/categories``/``/category``/``/index``
    enumeration with policy 403s, offering only a paged ``/packages``
    name list; every name is then resolved through ``/app``.  The page
    walk is strictly sequential per lane, so discovery order — and
    with it the lane's request ordinals — stays deterministic.
    """

    def __init__(self, max_pages: Optional[int] = None):
        self._max_pages = max_pages

    def discover(self, client: HttpClient) -> Iterator[Metadata]:
        frontier = Frontier()
        page = 0
        while self._max_pages is None or page < self._max_pages:
            try:
                chunk = client.get_json("/packages", {"page": page})
            except HttpError:
                break
            frontier.push_many(str(p) for p in chunk["packages"])
            for package in frontier.pop_many():
                try:
                    meta = client.get_json("/app", {"package": package})
                except HttpError:
                    continue
                if meta is not None:
                    yield meta
            if chunk["next"] is None:
                break
            page = int(chunk["next"])


def strategy_for(
    crawl_strategy: str,
    gp_seeds: Optional[Iterable[str]] = None,
) -> DiscoveryStrategy:
    """Instantiate the strategy named by a market profile."""
    if crawl_strategy == "bfs_related":
        return BfsRelatedStrategy(gp_seeds or ())
    if crawl_strategy == "int_index":
        return IntegerIndexStrategy()
    if crawl_strategy == "category_pages":
        return CategoryPagesStrategy()
    if crawl_strategy == "package_list":
        return PackageListStrategy()
    raise ValueError(f"unknown crawl strategy {crawl_strategy!r}")
