"""Crawl telemetry.

The paper's fleet was operated with per-market dashboards (which market
is rate limiting, which is flaky, how deep the search backlog runs);
:class:`CrawlTelemetry` is that layer for one campaign.  The crawl
engine owns one instance per campaign and each market lane reports only
to its own :class:`MarketTelemetry`, so recording is lock-free under
the lane-per-market threading model.

``stats_report()`` renders the operator's table: per-market requests,
retries, fault counters, simulated back-off, queue depths, and record
yield.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.client import ClientStats

__all__ = ["MarketTelemetry", "CrawlTelemetry"]


@dataclass
class MarketTelemetry:
    """One market lane's counters for one campaign."""

    market_id: str
    requests: int = 0
    retries: int = 0
    rate_limited: int = 0
    timeouts: int = 0
    malformed: int = 0
    failures: int = 0
    rate_limit_aborts: int = 0
    breaker_fast_fails: int = 0
    breaker_trips: int = 0
    sim_days_backoff: float = 0.0
    sim_days_paced: float = 0.0
    records: int = 0
    searches: int = 0
    search_failures: int = 0
    apk_downloaded: int = 0
    apk_backfilled: int = 0
    apk_missing: int = 0
    dead_letters: int = 0
    #: "ok", or "degraded" once the breaker quarantined the market.
    health: str = "ok"

    def fold_client(self, delta: ClientStats) -> None:
        """Fold one campaign's client-counter movement into the lane."""
        self.requests += delta.requests
        self.retries += delta.retries
        self.rate_limited += delta.rate_limited
        self.timeouts += delta.timeouts
        self.malformed += delta.malformed
        self.failures += delta.failures
        self.rate_limit_aborts += delta.rate_limit_aborts
        self.breaker_fast_fails += delta.breaker_fast_fails
        self.sim_days_backoff += delta.sim_days_slept


@dataclass
class CrawlTelemetry:
    """Per-market counters plus fleet-wide queue/scheduling gauges."""

    label: str = ""
    workers: int = 1
    search_rounds: int = 0
    queue_peak: int = 0
    wall_seconds: float = 0.0
    markets: Dict[str, MarketTelemetry] = field(default_factory=dict)

    def market(self, market_id: str) -> MarketTelemetry:
        lane = self.markets.get(market_id)
        if lane is None:
            lane = self.markets[market_id] = MarketTelemetry(market_id)
        return lane

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_peak:
            self.queue_peak = depth

    # -- aggregates --------------------------------------------------------

    @property
    def total_requests(self) -> int:
        return sum(m.requests for m in self.markets.values())

    @property
    def total_retries(self) -> int:
        return sum(m.retries for m in self.markets.values())

    @property
    def total_records(self) -> int:
        return sum(m.records for m in self.markets.values())

    @property
    def total_faults_absorbed(self) -> int:
        return sum(
            m.retries + m.rate_limited + m.timeouts + m.malformed
            for m in self.markets.values()
        )

    @property
    def total_failures(self) -> int:
        """Abandoned requests fleet-wide (work lost, not turbulence)."""
        return sum(m.failures for m in self.markets.values())

    @property
    def total_breaker_trips(self) -> int:
        return sum(m.breaker_trips for m in self.markets.values())

    @property
    def total_dead_letters(self) -> int:
        return sum(m.dead_letters for m in self.markets.values())

    def degraded_markets(self) -> List[str]:
        return sorted(m.market_id for m in self.markets.values() if m.health != "ok")

    def stats_report(self, top: Optional[int] = None) -> str:
        """Render the per-market operator table."""
        header = (
            f"{'market':<14}{'requests':>10}{'retries':>9}{'429s':>7}"
            f"{'timeouts':>10}{'garbled':>9}{'failed':>8}{'trips':>7}"
            f"{'backoff(d)':>12}{'paced(d)':>10}{'records':>9}  {'health':<9}"
        )
        lines: List[str] = [
            f"crawl telemetry [{self.label}] — workers={self.workers}, "
            f"search rounds={self.search_rounds}, queue peak={self.queue_peak}",
            header,
            "-" * len(header),
        ]
        lanes = sorted(self.markets.values(), key=lambda m: (-m.requests, m.market_id))
        if top is not None:
            lanes = lanes[:top]
        for lane in lanes:
            lines.append(
                f"{lane.market_id:<14}{lane.requests:>10}{lane.retries:>9}"
                f"{lane.rate_limited:>7}{lane.timeouts:>10}{lane.malformed:>9}"
                f"{lane.failures:>8}{lane.breaker_trips:>7}"
                f"{lane.sim_days_backoff:>12.4f}{lane.sim_days_paced:>10.4f}"
                f"{lane.records:>9}  {lane.health:<9}"
            )
        lines.append("-" * len(header))
        degraded = self.degraded_markets()
        lines.append(
            f"{'total':<14}{self.total_requests:>10}{self.total_retries:>9}"
            f"{sum(m.rate_limited for m in self.markets.values()):>7}"
            f"{sum(m.timeouts for m in self.markets.values()):>10}"
            f"{sum(m.malformed for m in self.markets.values()):>9}"
            f"{self.total_failures:>8}{self.total_breaker_trips:>7}"
            f"{sum(m.sim_days_backoff for m in self.markets.values()):>12.4f}"
            f"{sum(m.sim_days_paced for m in self.markets.values()):>10.4f}"
            f"{self.total_records:>9}  "
            f"{('degraded:' + str(len(degraded))) if degraded else 'ok':<9}"
        )
        if degraded:
            lines.append(
                "degraded markets (breaker quarantine): " + ", ".join(degraded)
            )
        if self.total_dead_letters:
            lines.append(f"dead letters: {self.total_dead_letters}")
        return "\n".join(lines)
