"""Crawl telemetry.

The paper's fleet was operated with per-market dashboards (which market
is rate limiting, which is flaky, how deep the search backlog runs);
:class:`CrawlTelemetry` is that layer for one campaign.  The crawl
engine owns one instance per campaign and each market lane reports only
to its own :class:`MarketTelemetry`, so recording is lock-free under
the lane-per-market threading model.

Since the observability layer landed, telemetry is a **view over the
metrics registry** (:mod:`repro.obs.metrics`): every counter a lane
records lives in a registry series labeled ``{campaign, market}``, and
the attribute (``lane.requests``) is a property over that series.  The
operator table rendered by ``stats_report()`` and the ``--metrics-out``
export therefore read the *same storage* and can never disagree — and
``run-report`` re-renders the table from an exported artifact by
re-hydrating a registry and attaching this same view to it
(:meth:`CrawlTelemetry.from_registry`).

``stats_report()`` renders the operator's table: per-market requests,
retries, fault counters, definitive 404s, simulated back-off, queue
depths, record yield, and the campaign's wall-clock throughput.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Dict, Iterable, List, Optional

from repro.net.client import ClientStats
from repro.obs.metrics import MetricsRegistry

__all__ = ["MarketTelemetry", "CrawlTelemetry", "DEAD_LETTER_REASON_METRIC"]

#: Whole-number ClientStats counters, in declaration order.  Derived
#: from the dataclass so a counter added to ClientStats automatically
#: gets a lane property, a metric series, and a fold — the table and
#: the Prometheus export can never disagree because one of them was
#: hand-listed and the other was not.
_CLIENT_INT_FIELDS = tuple(
    f.name for f in dataclass_fields(ClientStats) if f.name != "sim_days_slept"
)

#: Lane counters whose values are whole numbers -> metric series name.
#: Client counters first (uniformly ``crawl_{field}_total``), then the
#: crawl-level counters the coordinator records directly.
_INT_COUNTERS = {
    **{field: f"crawl_{field}_total" for field in _CLIENT_INT_FIELDS},
    "breaker_trips": "crawl_breaker_trips_total",
    "records": "crawl_records_total",
    "searches": "crawl_searches_total",
    "search_failures": "crawl_search_failures_total",
    "apk_downloaded": "crawl_apk_downloaded_total",
    "apk_backfilled": "crawl_apk_backfilled_total",
    "apk_missing": "crawl_apk_missing_total",
    "dead_letters": "crawl_dead_letters_total",
}

#: Lane counters measured in simulated days (fractional).
_FLOAT_COUNTERS = {
    "sim_days_backoff": "crawl_backoff_sim_days_total",
    "sim_days_paced": "crawl_paced_sim_days_total",
}

LANE_METRICS = {**_INT_COUNTERS, **_FLOAT_COUNTERS}

#: Gauge marking a market the breaker quarantined (0 ok / 1 degraded).
DEGRADED_METRIC = "crawl_market_degraded"

#: Gauge holding a market's token-bucket budget (requests per simulated
#: day; 0 = unlimited).  Set by the engine at campaign end so the
#: operator table can render each lane's *effective* request rate
#: against the rate it was allowed — limiter saturation at a glance.
RATE_BUDGET_METRIC = "crawl_rate_budget"

#: Dead-letter counter broken down by cause.  Labeled ``{campaign,
#: market, reason}``, so the export answers *why* work was lost (ban
#: vs. retry exhaustion vs. breaker quarantine), not just how much.
DEAD_LETTER_REASON_METRIC = "crawl_dead_letter_reason_total"


class MarketTelemetry:
    """One market lane's counters for one campaign.

    Every counter attribute (``requests``, ``retries``, ...) is a
    property over a registry series labeled with this market and its
    campaign; plain ``lane.requests += n`` recording keeps working.
    """

    __slots__ = ("market_id", "_series", "_degraded", "_rate_budget")

    def __init__(
        self,
        market_id: str,
        registry: Optional[MetricsRegistry] = None,
        campaign: str = "",
    ):
        self.market_id = market_id
        registry = registry if registry is not None else MetricsRegistry()
        self._series = {
            field: registry.counter(metric, campaign=campaign, market=market_id)
            for field, metric in LANE_METRICS.items()
        }
        self._degraded = registry.gauge(
            DEGRADED_METRIC, campaign=campaign, market=market_id
        )
        self._rate_budget = registry.gauge(
            RATE_BUDGET_METRIC, campaign=campaign, market=market_id
        )

    @property
    def health(self) -> str:
        """``"ok"``, or ``"degraded"`` once the breaker quarantined it."""
        return "degraded" if self._degraded.value else "ok"

    @health.setter
    def health(self, value: str) -> None:
        self._degraded.set(0.0 if value == "ok" else 1.0)

    @property
    def rate_budget(self) -> float:
        """Token-bucket budget (req/sim-day); 0 when unlimited."""
        return self._rate_budget.value

    @rate_budget.setter
    def rate_budget(self, value: float) -> None:
        self._rate_budget.set(float(value))

    def fold_client(self, delta: ClientStats) -> None:
        """Fold one campaign's client-counter movement into the lane.

        Field-driven, like the property table: every integer counter
        ``ClientStats`` declares is folded, so a new counter cannot be
        silently dropped between the client and the export.
        """
        for field in _CLIENT_INT_FIELDS:
            setattr(self, field, getattr(self, field) + getattr(delta, field))
        self.sim_days_backoff += delta.sim_days_slept


def _lane_property(field: str, as_int: bool) -> property:
    def fget(self: MarketTelemetry):
        value = self._series[field].value
        return int(value) if as_int else value

    def fset(self: MarketTelemetry, value) -> None:
        self._series[field].value = float(value)

    return property(fget, fset)


for _field in _INT_COUNTERS:
    setattr(MarketTelemetry, _field, _lane_property(_field, as_int=True))
for _field in _FLOAT_COUNTERS:
    setattr(MarketTelemetry, _field, _lane_property(_field, as_int=False))
del _field


class CrawlTelemetry:
    """Per-market counters plus fleet-wide queue/scheduling gauges."""

    def __init__(
        self,
        label: str = "",
        workers: int = 1,
        search_rounds: int = 0,
        queue_peak: int = 0,
        wall_seconds: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._bind(label, registry if registry is not None else MetricsRegistry())
        self.workers = workers
        self.search_rounds = search_rounds
        self.queue_peak = queue_peak
        self.wall_seconds = wall_seconds

    def _bind(self, label: str, registry: MetricsRegistry) -> None:
        self.label = label
        self.registry = registry
        self.markets: Dict[str, MarketTelemetry] = {}
        self._workers = registry.gauge("crawl_workers", campaign=label)
        self._search_rounds = registry.counter(
            "crawl_search_rounds_total", campaign=label
        )
        self._queue_peak = registry.gauge("crawl_queue_peak", campaign=label)
        self._queue_depth = registry.gauge("crawl_queue_depth", campaign=label)
        self._wall = registry.gauge("crawl_wall_seconds", campaign=label)

    @classmethod
    def from_registry(
        cls, label: str, registry: MetricsRegistry, markets: Iterable[str] = ()
    ) -> "CrawlTelemetry":
        """Attach a read view to an existing (e.g. re-hydrated) registry.

        Unlike the constructor this writes nothing: the gauges and
        counters keep whatever the registry already holds, which is how
        ``run-report`` re-renders an exported campaign byte-for-byte.
        """
        telemetry = object.__new__(cls)
        telemetry._bind(label, registry)
        for market_id in markets:
            telemetry.market(market_id)
        return telemetry

    # -- gauge-backed attributes ------------------------------------------

    @property
    def workers(self) -> int:
        return int(self._workers.value)

    @workers.setter
    def workers(self, value: int) -> None:
        self._workers.set(float(value))

    @property
    def search_rounds(self) -> int:
        return int(self._search_rounds.value)

    @search_rounds.setter
    def search_rounds(self, value: int) -> None:
        self._search_rounds.value = float(value)

    @property
    def queue_peak(self) -> int:
        return int(self._queue_peak.value)

    @queue_peak.setter
    def queue_peak(self, value: int) -> None:
        self._queue_peak.set(float(value))

    @property
    def wall_seconds(self) -> float:
        return self._wall.value

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        self._wall.set(float(value))

    # -- recording ---------------------------------------------------------

    def market(self, market_id: str) -> MarketTelemetry:
        lane = self.markets.get(market_id)
        if lane is None:
            lane = self.markets[market_id] = MarketTelemetry(
                market_id, self.registry, campaign=self.label
            )
        return lane

    def observe_queue_depth(self, depth: int, at: Optional[float] = None) -> None:
        """Record a frontier depth; ``at`` (sim day) keeps a time series."""
        self._queue_depth.set(float(depth), at=at)
        if depth > self.queue_peak:
            self.queue_peak = depth

    def record_dead_letter(self, market_id: str, reason: str) -> None:
        """Account one piece of abandoned work, labeled with its cause."""
        self.market(market_id).dead_letters += 1
        self.registry.counter(
            DEAD_LETTER_REASON_METRIC,
            campaign=self.label,
            market=market_id,
            reason=reason,
        ).inc()

    def dead_letter_reasons(self) -> Dict[str, int]:
        """Campaign dead letters grouped by reason label.

        Scans existing series rather than calling ``counter()`` (which
        would *create* zero-valued series for reasons never seen), so
        re-hydrated registries render identically to live ones.
        """
        reasons: Dict[str, int] = {}
        for series in self.registry.series():
            if series.name != DEAD_LETTER_REASON_METRIC:
                continue
            labels = dict(series.labels)
            if labels.get("campaign") != self.label:
                continue
            reason = labels.get("reason", "")
            reasons[reason] = reasons.get(reason, 0) + int(series.value)
        return reasons

    # -- aggregates --------------------------------------------------------

    @property
    def total_requests(self) -> int:
        return sum(m.requests for m in self.markets.values())

    @property
    def total_retries(self) -> int:
        return sum(m.retries for m in self.markets.values())

    @property
    def total_records(self) -> int:
        return sum(m.records for m in self.markets.values())

    @property
    def total_not_found(self) -> int:
        return sum(m.not_found for m in self.markets.values())

    @property
    def total_faults_absorbed(self) -> int:
        return sum(
            m.retries + m.rate_limited + m.timeouts + m.malformed
            for m in self.markets.values()
        )

    @property
    def total_failures(self) -> int:
        """Abandoned requests fleet-wide (work lost, not turbulence)."""
        return sum(m.failures for m in self.markets.values())

    @property
    def total_breaker_trips(self) -> int:
        return sum(m.breaker_trips for m in self.markets.values())

    @property
    def total_dead_letters(self) -> int:
        return sum(m.dead_letters for m in self.markets.values())

    @property
    def total_logins(self) -> int:
        return sum(m.logins for m in self.markets.values())

    @property
    def total_token_refreshes(self) -> int:
        return sum(m.token_refreshes for m in self.markets.values())

    @property
    def total_bans_hit(self) -> int:
        return sum(m.bans_hit for m in self.markets.values())

    @property
    def total_identity_rotations(self) -> int:
        return sum(m.identity_rotations for m in self.markets.values())

    @property
    def requests_per_second(self) -> float:
        """Wall-clock throughput (0 when wall time was never recorded)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_requests / self.wall_seconds

    def degraded_markets(self) -> List[str]:
        return sorted(m.market_id for m in self.markets.values() if m.health != "ok")

    def stats_report(self, top: Optional[int] = None) -> str:
        """Render the per-market operator table."""
        header = (
            f"{'market':<14}{'requests':>10}{'retries':>9}{'429s':>7}"
            f"{'404s':>7}{'timeouts':>10}{'garbled':>9}{'failed':>8}{'trips':>7}"
            f"{'backoff(d)':>12}{'paced(d)':>10}{'records':>9}  {'health':<9}"
        )
        title = (
            f"crawl telemetry [{self.label}] — workers={self.workers}, "
            f"search rounds={self.search_rounds}, queue peak={self.queue_peak}"
        )
        if self.wall_seconds > 0:
            title += (
                f", wall={self.wall_seconds:.2f}s "
                f"({self.requests_per_second:,.0f} req/s)"
            )
        lines: List[str] = [title, header, "-" * len(header)]
        lanes = sorted(self.markets.values(), key=lambda m: (-m.requests, m.market_id))
        if top is not None:
            lanes = lanes[:top]
        for lane in lanes:
            lines.append(
                f"{lane.market_id:<14}{lane.requests:>10}{lane.retries:>9}"
                f"{lane.rate_limited:>7}{lane.not_found:>7}{lane.timeouts:>10}"
                f"{lane.malformed:>9}"
                f"{lane.failures:>8}{lane.breaker_trips:>7}"
                f"{lane.sim_days_backoff:>12.4f}{lane.sim_days_paced:>10.4f}"
                f"{lane.records:>9}  {lane.health:<9}"
            )
        lines.append("-" * len(header))
        degraded = self.degraded_markets()
        lines.append(
            f"{'total':<14}{self.total_requests:>10}{self.total_retries:>9}"
            f"{sum(m.rate_limited for m in self.markets.values()):>7}"
            f"{self.total_not_found:>7}"
            f"{sum(m.timeouts for m in self.markets.values()):>10}"
            f"{sum(m.malformed for m in self.markets.values()):>9}"
            f"{self.total_failures:>8}{self.total_breaker_trips:>7}"
            f"{sum(m.sim_days_backoff for m in self.markets.values()):>12.4f}"
            f"{sum(m.sim_days_paced for m in self.markets.values()):>10.4f}"
            f"{self.total_records:>9}  "
            f"{('degraded:' + str(len(degraded))) if degraded else 'ok':<9}"
        )
        if degraded:
            lines.append(
                "degraded markets (breaker quarantine): " + ", ".join(degraded)
            )
        hostility = (
            self.total_logins
            or self.total_token_refreshes
            or self.total_bans_hit
            or self.total_identity_rotations
        )
        if hostility:
            lines.append(
                f"hostility: logins={self.total_logins} "
                f"(refreshes={self.total_token_refreshes}), "
                f"bans hit={self.total_bans_hit}, "
                f"identity rotations={self.total_identity_rotations}"
            )
        if self.total_dead_letters:
            line = f"dead letters: {self.total_dead_letters}"
            reasons = self.dead_letter_reasons()
            if reasons:
                breakdown = ", ".join(
                    f"{reason}={count}" for reason, count in sorted(reasons.items())
                )
                line += f" ({breakdown})"
            lines.append(line)
        budgeted = sorted(
            (m for m in self.markets.values() if m.rate_budget > 0),
            key=lambda m: m.market_id,
        )
        if budgeted:
            # Effective rate = requests over the lane's elapsed sim time
            # (back-off includes pacing sleeps), against the bucket's
            # budget.  A lane pinned near 100% is limiter-saturated: the
            # bucket, not the market, is its throughput ceiling.
            parts = []
            for lane in budgeted:
                elapsed = lane.sim_days_backoff
                if elapsed > 0:
                    effective = lane.requests / elapsed
                    parts.append(
                        f"{lane.market_id} {effective:.1f}/{lane.rate_budget:g} "
                        f"req/d ({effective / lane.rate_budget:.0%})"
                    )
                else:
                    parts.append(
                        f"{lane.market_id} burst ({lane.requests} req, no waits)"
                    )
            lines.append("limiter: " + ", ".join(parts))
        return "\n".join(lines)
