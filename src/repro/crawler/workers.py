"""Crawl worker-pool model.

The paper ran its campaign on 50 Aliyun ECS servers for roughly 15 days
(Section 3).  :class:`WorkerPool` converts a request volume into a
simulated campaign duration under that fleet model, so studies can
either pin the paper's dates or let duration follow corpus size.

At full scale the pipeline issues on the order of 4x10^8 requests
(metadata, parallel searches, APK downloads); 50 workers over 15 days
therefore sustain ~5x10^5 requests per worker-day (~6 req/s), which is
the default throughput here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "WorkerPool",
    "DEFAULT_WORKERS",
    "DEFAULT_REQUESTS_PER_WORKER_DAY",
    "resolve_thread_workers",
]

DEFAULT_WORKERS = 50
DEFAULT_REQUESTS_PER_WORKER_DAY = 500_000.0


def resolve_thread_workers(workers: int = 0) -> int:
    """Resolve a crawl-engine thread count.

    ``workers > 0`` is taken as-is; ``0`` means "as wide as the host
    allows", capped at the 17-market lane count beyond which extra
    threads cannot help (work is sharded by market).
    """
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers:
        return workers
    return max(1, min(17, os.cpu_count() or 1))


@dataclass(frozen=True)
class WorkerPool:
    """A fleet of crawl workers with a sustained request throughput."""

    workers: int = DEFAULT_WORKERS
    requests_per_worker_day: float = DEFAULT_REQUESTS_PER_WORKER_DAY
    minimum_days: float = 0.25  # campaign overhead: setup, retries, QA

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.requests_per_worker_day <= 0:
            raise ValueError("requests_per_worker_day must be positive")

    @property
    def daily_capacity(self) -> float:
        return self.workers * self.requests_per_worker_day

    def duration_days(self, total_requests: int) -> float:
        """Simulated days needed to issue ``total_requests``."""
        if total_requests < 0:
            raise ValueError("total_requests must be non-negative")
        return max(self.minimum_days, total_requests / self.daily_capacity)
