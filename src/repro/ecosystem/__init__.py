"""Synthetic app-ecosystem generator.

Produces a ground-truth world — developers, apps, third-party library
adoption, per-market publication plans, and injected misbehavior (fake
apps, clones, malware, over-privilege) — calibrated to the paper's
published statistics.  The world is then served through
:mod:`repro.markets` and measured through :mod:`repro.analysis`; the
analysis never touches the ground truth kept here.
"""

from repro.ecosystem.libraries import (
    Library,
    LibraryCatalog,
    default_catalog,
)
from repro.ecosystem.threats import (
    MALWARE_FAMILIES,
    ThreatFeed,
    ThreatProfile,
)
from repro.ecosystem.developers import Developer
from repro.ecosystem.apps import AppBlueprint, AppVersion, Placement
from repro.ecosystem.world import World
from repro.ecosystem.generator import EcosystemGenerator

__all__ = [
    "Library",
    "LibraryCatalog",
    "default_catalog",
    "MALWARE_FAMILIES",
    "ThreatFeed",
    "ThreatProfile",
    "Developer",
    "AppBlueprint",
    "AppVersion",
    "Placement",
    "World",
    "EcosystemGenerator",
]
