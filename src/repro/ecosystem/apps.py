"""App blueprints, own-code generation, and APK building.

An :class:`AppBlueprint` is the ground-truth description of one app: who
wrote it, what its code looks like, which libraries it embeds, which
permissions it uses versus requests, its version history, its per-market
placements, and (optionally) its threat profile or clone/fake
provenance.  :func:`build_apk` turns a blueprint into the binary archive
a market serves for a given version and channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.android.permissions import PermissionSpec
from repro.apk.models import API_FEATURE_RANGE, Apk, ChannelFile, CodePackage, Manifest
from repro.apk.obfuscation import JiaguObfuscator
from repro.apk.archive import SegmentCache, serialize_apk
from repro.ecosystem.developers import Developer
from repro.ecosystem.libraries import LibraryCatalog
from repro.ecosystem.threats import ThreatProfile, payload_code
from repro.markets.profiles import MarketProfile
from repro.util.rng import stable_hash64
from repro.util.simtime import day_to_date

__all__ = [
    "AppVersion",
    "Placement",
    "OwnCode",
    "AppBlueprint",
    "generate_own_code",
    "perturb_own_code",
    "template_spam_code",
    "build_apk",
]

PROVENANCE_LEGIT = "legit"
PROVENANCE_FAKE = "fake"
PROVENANCE_SB_CLONE = "sb_clone"
PROVENANCE_CB_CLONE = "cb_clone"
PROVENANCE_TEMPLATE_SPAM = "template_spam"


@dataclass(frozen=True)
class AppVersion:
    """One released version of an app."""

    version_code: int
    version_name: str
    release_day: int


@dataclass
class Placement:
    """How one market lists this app."""

    market_id: str
    version_index: int  # index into the blueprint's versions at 1st crawl
    category_label: str  # market-reported category (may be NULL-ish)
    downloads: Optional[int]  # market-reported installs (None: not reported)
    rating: Optional[float]  # market-reported rating (None: unrated)
    listed_day: int
    removed_at: Optional[float] = None  # simulated day of removal, if any

    def live_at(self, day: float) -> bool:
        return self.removed_at is None or day < self.removed_at


@dataclass(frozen=True)
class OwnCode:
    """The app's first-party code: package name, features, blocks."""

    main_package: str
    features: Dict[int, int]
    blocks: Tuple[int, ...]

    def as_code_package(self) -> CodePackage:
        # Memoized on the frozen instance: the same own code is packaged
        # for every (market, version) blob of the app.
        try:
            return self._code_package
        except AttributeError:
            pkg = CodePackage(
                name=self.main_package, features=dict(self.features), blocks=self.blocks
            )
            object.__setattr__(self, "_code_package", pkg)
            return pkg


@dataclass
class AppBlueprint:
    """Ground truth for one app across all markets."""

    app_id: int
    package: str
    display_name: str
    category: str  # canonical taxonomy
    developer: Developer
    scope: str  # "global" | "china" | "mixed"
    popularity: float  # global percentile in [0, 1)
    quality: float  # drives ratings, in [0, 1]
    min_sdk: int
    target_sdk: int
    release_day: int
    versions: Tuple[AppVersion, ...]
    own_code: OwnCode
    libraries: Tuple[Tuple[str, int], ...]  # (lib package, version index)
    permissions_requested: Tuple[str, ...]
    placements: Dict[str, Placement] = field(default_factory=dict)
    threat: Optional[ThreatProfile] = None
    provenance: str = PROVENANCE_LEGIT
    related_app_id: Optional[int] = None  # fake target / clone source
    #: Repackaging-chain position: 0 = not a repack, 1 = direct clone,
    #: 2 = clone of a clone, ...  ``related_app_id`` points one link up
    #: the chain, so full provenance (A -> B -> C) is walkable.
    clone_depth: int = 0
    template_id: Optional[int] = None  # shared code template, if any

    @property
    def latest_version_index(self) -> int:
        return len(self.versions) - 1

    @property
    def last_update_day(self) -> int:
        return self.versions[-1].release_day

    @property
    def markets(self) -> Tuple[str, ...]:
        return tuple(sorted(self.placements))

    def version_at(self, index: int) -> AppVersion:
        return self.versions[index]


def generate_own_code(
    rng: np.random.Generator,
    spec: PermissionSpec,
    package: str,
    permissions_used: Tuple[str, ...],
    template_seed: Optional[int] = None,
) -> OwnCode:
    """Generate first-party code for an app.

    When ``template_seed`` is given, the bulk of the code comes from the
    shared template (knock-off studios stamping out near-identical apps);
    otherwise features are app-unique.  Either way the code calls a
    couple of guarded APIs per used permission, which is what the
    over-privilege analysis statically recovers.
    """
    api_lo, api_hi = API_FEATURE_RANGE
    unguarded_hi = api_lo + (api_hi - api_lo) // 2

    seed = template_seed if template_seed is not None else int(rng.integers(0, 2**62))
    code_rng = np.random.default_rng(stable_hash64("owncode", seed) % 2**63)

    # Own code carries enough call volume that a small injected payload
    # (or a couple of cosmetic edits) keeps a clone within WuKong's 0.05
    # normalized-Manhattan distance of its source.
    size = int(code_rng.integers(16, 34))
    ids = code_rng.choice(np.arange(api_lo, unguarded_hi), size=size, replace=False)
    features: Dict[int, int] = {int(f): int(code_rng.integers(4, 20)) for f in ids}
    blocks = [
        int(stable_hash64("ownblock", seed, i) & 0xFFFFFFFF)
        for i in range(int(code_rng.integers(22, 42)))
    ]

    # Permission-guarded calls are app-specific even under a template
    # (each knock-off wires its own feature set).
    for perm in permissions_used:
        for _ in range(int(rng.integers(1, 3))):
            features[spec.sample_feature(perm, rng)] = int(rng.integers(1, 4))

    return OwnCode(
        main_package=_main_package_of(package),
        features=features,
        blocks=tuple(blocks),
    )


def perturb_own_code(
    rng: np.random.Generator,
    source: OwnCode,
    new_package: Optional[str] = None,
    block_keep_ratio: float = 0.92,
    feature_edits: int = 2,
) -> OwnCode:
    """Derive repackaged code from ``source``.

    Used for clones: the result keeps almost all code segments and
    features (WuKong-level similarity) with a few cosmetic edits.
    """
    features = dict(source.features)
    api_lo, api_hi = API_FEATURE_RANGE
    unguarded_hi = api_lo + (api_hi - api_lo) // 2
    for _ in range(feature_edits):
        features[int(rng.integers(api_lo, unguarded_hi))] = int(rng.integers(1, 4))

    n_keep = max(1, int(round(len(source.blocks) * block_keep_ratio)))
    kept = list(source.blocks[:n_keep])
    for i in range(len(source.blocks) - n_keep):
        kept.append(int(rng.integers(0, 2**32)))

    main = _main_package_of(new_package) if new_package else source.main_package
    return OwnCode(main_package=main, features=features, blocks=tuple(kept))


def template_spam_code(
    rng: np.random.Generator,
    package: str,
    pool: Tuple[int, ...],
    sample_ratio: float,
) -> OwnCode:
    """Own code for one app-factory ("studio") boilerplate app.

    Each spam app carries a random ``sample_ratio`` subset of its
    studio's shared block pool plus a short unique tail, so any two
    studio-mates share a moderate slab of code — far below the
    clone-reporting overlap threshold, but enough shared rare-ish
    blocks to flood posting-list-based candidate blocking.  Features
    are app-unique, so no two spam apps ever share a package feature
    digest (the library detector must not absorb the pool).
    """
    api_lo, api_hi = API_FEATURE_RANGE
    unguarded_hi = api_lo + (api_hi - api_lo) // 2
    size = int(rng.integers(16, 34))
    ids = rng.choice(np.arange(api_lo, unguarded_hi), size=size, replace=False)
    features: Dict[int, int] = {int(f): int(rng.integers(4, 20)) for f in ids}
    take = max(2, int(round(sample_ratio * len(pool))))
    picked = rng.choice(len(pool), size=min(take, len(pool)), replace=False)
    blocks = [pool[int(i)] for i in np.sort(picked)]
    # A short unique tail: enough to vary prefix contents, small enough
    # that pool blocks still reach every unit's blocking prefix.
    blocks.extend(
        int(rng.integers(0, 2**32)) for _ in range(int(rng.integers(0, 4)))
    )
    return OwnCode(
        main_package=_main_package_of(package),
        features=features,
        blocks=tuple(blocks),
    )


def _main_package_of(app_package: str) -> str:
    """The app's own top-level code package name."""
    return app_package


def build_apk(
    blueprint: AppBlueprint,
    version_index: int,
    market: MarketProfile,
    catalog: LibraryCatalog,
    segments: Optional[SegmentCache] = None,
) -> bytes:
    """Build the binary APK a market serves for this app version.

    Per Section 5.3, the same (package, version, developer) differs
    across markets only by its META-INF channel file — unless the market
    forces repackaging (360's Jiagubao requirement), in which case the
    whole archive is packed.

    ``segments`` shares encoded dex fragments across the app's
    market×version fan-out; blob bytes are unaffected.  Obfuscating
    markets skip the cache: Jiagu rewrites package names per app, so
    their segments never recur.
    """
    version = blueprint.versions[version_index]
    manifest = Manifest(
        package=blueprint.package,
        version_code=version.version_code,
        version_name=version.version_name,
        min_sdk=blueprint.min_sdk,
        target_sdk=blueprint.target_sdk,
        permissions=blueprint.permissions_requested,
    )
    packages = [blueprint.own_code.as_code_package()]
    for lib_package, lib_version in blueprint.libraries:
        packages.append(catalog.version_code(lib_package, lib_version).as_code_package())
    if blueprint.threat is not None:
        packages.append(payload_code(blueprint.threat.family, blueprint.threat.variant))

    meta_inf = [
        ChannelFile("META-INF/MANIFEST.MF", f"built:{day_to_date(version.release_day)}")
    ]
    if market.channel_file is not None:
        meta_inf.append(ChannelFile(market.channel_file, market.market_id))

    apk = Apk(
        manifest=manifest,
        packages=tuple(packages),
        signer_fingerprint=blueprint.developer.fingerprint,
        signer_name=blueprint.developer.name_for_market(market.market_id),
        meta_inf=tuple(meta_inf),
    )
    if market.requires_obfuscation:
        apk = JiaguObfuscator().obfuscate(apk)
        return serialize_apk(apk)
    return serialize_apk(apk, segments)
