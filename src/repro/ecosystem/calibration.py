"""Cross-cutting calibration constants.

Per-market targets live in :mod:`repro.markets.profiles`; this module
holds the ecosystem-wide behavioral parameters of Sections 4–7 that are
not per-market: publishing scope shares, release-date and API-level
distributions, version-history shapes, over-privilege distributions, and
the paper's named Table 5 apps which we seed verbatim for fidelity.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.util.simtime import FIRST_CRAWL_DAY, date_to_day

__all__ = [
    "SINGLE_STORE_GP_SHARE",
    "MIXED_GP_TO_CN_SHARE",
    "sample_cn_market_count",
    "sample_release_day",
    "sample_min_sdk",
    "sample_version_count",
    "sample_overprivilege_count",
    "OVERPRIV_PERMISSION_WEIGHTS",
    "REPACKAGED_MALWARE_SHARE",
    "CELEBRITY_MALWARE",
    "CelebrityApp",
]

#: Section 5.2: 77% of Google Play apps are single-store.
SINGLE_STORE_GP_SHARE = 0.77

#: Section 5.2: 20–30% of Chinese-market apps are also in Google Play;
#: we use the midpoint when deciding whether a Chinese app cross-lists.
MIXED_GP_TO_CN_SHARE = 0.25

#: Section 6.4: 38.3% of malware samples are repackaged (cloned) apps.
REPACKAGED_MALWARE_SHARE = 0.383


def sample_cn_market_count(popularity: float, rng: np.random.Generator) -> int:
    """How many Chinese markets an app publishes to, given popularity.

    Popular apps cross-list widely (Section 5.2: over 80% of each
    market's top-1% apps are shared across all Chinese markets); the long
    tail stays in one or two stores.
    """
    if popularity >= 0.995:
        return int(rng.integers(10, 17))
    if popularity >= 0.99:
        return int(rng.integers(6, 13))
    if popularity >= 0.90:
        return int(rng.integers(3, 9))
    if popularity >= 0.50:
        weights = (0.32, 0.26, 0.18, 0.12, 0.07, 0.05)
    else:
        weights = (0.58, 0.22, 0.11, 0.05, 0.03, 0.01)
    return int(rng.choice(np.arange(1, len(weights) + 1), p=weights))


# ---------------------------------------------------------------------------
# Release dates (Figure 4) and minimum API levels (Figure 3)
# ---------------------------------------------------------------------------

# Year weights for the *last update* date.  Chinese markets: ~90% of apps
# released/updated before 2017 and only ~5% within the final six months;
# Google Play: 66% before 2017 and >23% within six months of the crawl.
_CN_YEAR_WEIGHTS: Sequence[Tuple[int, float]] = (
    (2011, 0.04), (2012, 0.08), (2013, 0.14), (2014, 0.22),
    (2015, 0.24), (2016, 0.18), (2017, 0.10),
)
_GP_YEAR_WEIGHTS: Sequence[Tuple[int, float]] = (
    (2011, 0.01), (2012, 0.03), (2013, 0.06), (2014, 0.12),
    (2015, 0.18), (2016, 0.26), (2017, 0.34),
)
#: Within 2017, the share of updates falling in the last six months
#: before the crawl (2017-02-15 .. 2017-08-15).
_CN_2017_RECENT_SHARE = 0.5
_GP_2017_RECENT_SHARE = 0.7


def sample_release_day(scope: str, rng: np.random.Generator) -> int:
    """Sample a last-update day (days since epoch) for the given scope."""
    weights = _GP_YEAR_WEIGHTS if scope == "global" else _CN_YEAR_WEIGHTS
    years = [y for y, _ in weights]
    probs = np.asarray([w for _, w in weights])
    probs = probs / probs.sum()
    year = int(rng.choice(years, p=probs))
    if year < 2017:
        start = date_to_day(datetime.date(year, 1, 1))
        end = date_to_day(datetime.date(year, 12, 31))
        return int(rng.integers(start, end + 1))
    recent_share = _GP_2017_RECENT_SHARE if scope == "global" else _CN_2017_RECENT_SHARE
    boundary = FIRST_CRAWL_DAY - 182
    if rng.random() < recent_share:
        return int(rng.integers(boundary, FIRST_CRAWL_DAY))
    start = date_to_day(datetime.date(2017, 1, 1))
    return int(rng.integers(start, boundary))


# Min-SDK distributions by developer scope.  Chinese developers declare
# low minimum API levels regardless of release year — their user base
# keeps old devices, and low min-SDK maximizes reach — which is what
# drives Figure 3's 63%-vs-22% "below API 9" split; levels 7-9 are the
# overall mode.  A mild recency adjustment nudges post-2016 releases up.
_MIN_SDK_BY_SCOPE: Dict[str, Sequence[Tuple[int, float]]] = {
    "china": ((4, 0.09), (7, 0.31), (8, 0.33), (9, 0.11), (10, 0.04),
              (14, 0.05), (15, 0.03), (16, 0.02), (19, 0.01), (21, 0.01)),
    "mixed": ((4, 0.04), (7, 0.18), (8, 0.22), (9, 0.15), (10, 0.08),
              (14, 0.11), (15, 0.08), (16, 0.07), (19, 0.04), (21, 0.03)),
    "global": ((4, 0.02), (7, 0.08), (8, 0.12), (9, 0.15), (10, 0.08),
               (14, 0.15), (15, 0.12), (16, 0.12), (19, 0.10), (21, 0.06)),
}


def sample_min_sdk(
    release_day: int, rng: np.random.Generator, scope: str = "china"
) -> int:
    """Sample a minimum SDK level for an app of the given scope."""
    from repro.util.simtime import day_to_date

    options = _MIN_SDK_BY_SCOPE[scope]
    levels = [lvl for lvl, _ in options]
    probs = np.asarray([w for _, w in options])
    level = int(rng.choice(levels, p=probs / probs.sum()))
    # Recent global releases rarely keep Gingerbread support.
    if (
        scope != "china"
        and day_to_date(release_day).year >= 2016
        and level < 9
        and rng.random() < 0.5
    ):
        level = int(rng.choice([9, 14, 15, 16]))
    return level


def sample_version_count(popularity: float, rng: np.random.Generator) -> int:
    """Number of released versions; popular apps iterate more.

    Shapes Figure 8(a): ~14% of cross-store packages expose multiple
    simultaneous versions, up to 14 in extreme cases.
    """
    if popularity >= 0.99:
        return int(rng.integers(6, 15))
    if popularity >= 0.90:
        return int(rng.integers(3, 9))
    if popularity >= 0.50:
        return int(rng.integers(1, 5))
    return int(rng.integers(1, 3))


# ---------------------------------------------------------------------------
# Over-privilege (Section 6.3, Figure 11)
# ---------------------------------------------------------------------------

#: P(app attempts to over-request), by scope.  Slightly above the
#: paper's measured shares (65% / 82%) because attempted extras that
#: collide with genuinely-used permissions are dropped, not redrawn.
_OVERPRIV_ANY = {"global": 0.70, "china": 0.92, "mixed": 0.86}

#: Distribution of the number of unused permissions, given >=1 (mode 3).
_OVERPRIV_COUNT_WEIGHTS = (0.13, 0.17, 0.20, 0.15, 0.11, 0.08, 0.06, 0.04, 0.03, 0.03)

#: Sampling weights for *which* permissions are over-requested; the
#: paper's top offenders are READ_PHONE_STATE (52.38%), coarse/fine
#: location (36.28%/33.83%), and CAMERA (19.98%).
#: Weighted high for READ_PHONE_STATE: many embedded SDKs legitimately
#: *use* that permission (excluding it from the unused pool for those
#: apps), so the sampling weight overshoots the paper's measured 52.38%
#: to land on it after that exclusion.
OVERPRIV_PERMISSION_WEIGHTS: Dict[str, float] = {
    "READ_PHONE_STATE": 0.55,
    "ACCESS_COARSE_LOCATION": 0.13,
    "ACCESS_FINE_LOCATION": 0.11,
    "CAMERA": 0.05,
    "READ_EXTERNAL_STORAGE": 0.035,
    "WRITE_EXTERNAL_STORAGE": 0.035,
    "GET_ACCOUNTS": 0.025,
    "READ_CONTACTS": 0.02,
    "RECORD_AUDIO": 0.02,
    "SEND_SMS": 0.015,
    "READ_SMS": 0.015,
    "CALL_PHONE": 0.015,
    "RECEIVE_SMS": 0.01,
    "READ_CALL_LOG": 0.01,
    "READ_CALENDAR": 0.005,
    "WRITE_CALENDAR": 0.005,
}


def sample_overprivilege_count(scope: str, rng: np.random.Generator) -> int:
    """How many unused permissions this app requests on top of used ones."""
    if rng.random() >= _OVERPRIV_ANY[scope]:
        return 0
    counts = np.arange(1, len(_OVERPRIV_COUNT_WEIGHTS) + 1)
    weights = np.asarray(_OVERPRIV_COUNT_WEIGHTS)
    return int(rng.choice(counts, p=weights / weights.sum()))


# ---------------------------------------------------------------------------
# Table 5: the paper's named top-malware apps, seeded verbatim
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CelebrityApp:
    """A named malicious app from the paper's Table 5."""

    package: str
    family: str
    markets: Tuple[str, ...]
    display_name: str


CELEBRITY_MALWARE: Tuple[CelebrityApp, ...] = (
    CelebrityApp("com.trustport.mobilesecurity_eicar_test_file", "eicar",
                 ("wandoujia", "pp25"), "Trustport EICAR Test"),
    CelebrityApp("games.hexalab.home", "mofin", ("liqu",), "Hexa Lab Home"),
    CelebrityApp("com.wb.gc.ljfk.baidu", "ramnit", ("baidu", "hiapk"),
                 "LJFK Game (Baidu)"),
    CelebrityApp("com.ypt.merchant", "ramnit",
                 ("tencent", "wandoujia", "oppo", "pp25", "liqu"),
                 "YPT Merchant mPOS"),
    CelebrityApp("com.wsljtwinmobi", "ramnit", ("tencent", "pp25"), "WSLJ Twin"),
    CelebrityApp("com.wb.gc.ljfk.tx", "ramnit", ("tencent",), "LJFK Game (TX)"),
    CelebrityApp("com.wgljd", "ramnit", ("tencent", "market360"), "WGLJD"),
    CelebrityApp("com.zoner.android.eicar", "eicar",
                 ("google_play", "wandoujia", "pp25"), "Zoner EICAR Test"),
    CelebrityApp("com.zhiyun.cnhyb.activity", "ramnit", ("baidu",), "CNHYB"),
    CelebrityApp("com.fai.shuiligongcheng", "ramnit", ("pp25",),
                 "Shuili Gongcheng"),
)
