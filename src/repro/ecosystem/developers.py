"""Developer identities.

A developer owns a signing key (Section 5.1: every released app must be
signed).  The fingerprint derived from the key is the unforgeable
identity the analyses rely on; display names may vary across markets
(footnote 11 — e.g. a Chinese name in one store and an English one in
another), which :meth:`Developer.name_for_market` models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.apk.signing import SigningKey
from repro.util.rng import stable_hash32

__all__ = ["Developer"]


@dataclass(frozen=True)
class Developer:
    """One app developer (an individual or a company)."""

    dev_id: int
    name: str
    region: str  # "global" | "china"
    alt_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.region not in ("global", "china"):
            raise ValueError(f"bad developer region {self.region!r}")

    @property
    def key(self) -> SigningKey:
        """The developer's signing key (derived deterministically)."""
        return SigningKey(key_id=self.dev_id, owner_name=self.name)

    @property
    def fingerprint(self) -> str:
        return self.key.fingerprint

    def name_for_market(self, market_id: str) -> str:
        """Display name used in one market.

        Most markets see the canonical name; a minority see an alternate
        spelling, chosen stably per market.
        """
        if not self.alt_names:
            return self.name
        choice = stable_hash32("devname", self.dev_id, market_id) % (
            len(self.alt_names) + 3
        )
        if choice < len(self.alt_names):
            return self.alt_names[choice]
        return self.name
