"""World generation.

``EcosystemGenerator`` synthesizes a complete app ecosystem in stages:

1. **Quotas** — per-market catalog sizes proportional to Table 1, scaled.
2. **Base population** — Google-Play-only, mixed, and Chinese-only legit
   apps filling the quotas, with popularity-driven cross-listing
   (Section 5.2's single/multi-store structure).
3. **Developers** — heavy-tailed partition of apps into signing
   identities, scope-pure (Section 5.1's publishing strategies).
4. **Celebrity malware** — the paper's Table 5 apps, seeded verbatim.
5. **Fake apps** (Table 3) — same-name masquerades of popular officials.
6. **Signature-based clones** (Table 3) — same package, different key.
7. **Code-based clones** (Table 3, Figure 10) — repackaged code under a
   new package name.
8. **Threats** (Table 4) — malware payload assignment (38.3% onto
   clones, per Section 6.4) and grayware (aggressive ad SDK) top-up,
   both passing through each market's vetting pipeline.
9. **Finalize** — per-market downloads via rank-mapping onto the
   market's Figure 2 bin row, ratings per Figure 6 patterns, category
   labels (including the NULL-category artifact of Section 4.1).

Misbehavior injection uses *vetting-aware top-up loops*: targets are the
paper's post-vetting rates, and every submission really passes through
:class:`~repro.markets.vetting.VettingPipeline`, so stricter markets
genuinely reject more attempts on the way to the same final rate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.android.permissions import DANGEROUS_PERMISSIONS, NORMAL_PERMISSIONS, platform_spec
from repro.ecosystem.apps import (
    AppBlueprint,
    AppVersion,
    Placement,
    PROVENANCE_CB_CLONE,
    PROVENANCE_FAKE,
    PROVENANCE_LEGIT,
    PROVENANCE_SB_CLONE,
    generate_own_code,
    perturb_own_code,
)
from repro.ecosystem.calibration import (
    CELEBRITY_MALWARE,
    MIXED_GP_TO_CN_SHARE,
    OVERPRIV_PERMISSION_WEIGHTS,
    REPACKAGED_MALWARE_SHARE,
    SINGLE_STORE_GP_SHARE,
    sample_cn_market_count,
    sample_min_sdk,
    sample_overprivilege_count,
    sample_release_day,
    sample_version_count,
)
from repro.ecosystem.developers import Developer
from repro.ecosystem.libraries import LibraryCatalog, default_catalog
from repro.ecosystem.popularity import sample_listing_rating
from repro.ecosystem.threats import CHINESE_FAMILY_WEIGHTS, GP_FAMILY_WEIGHTS, ThreatProfile
from repro.ecosystem.world import VettingRecord, World
from repro.markets.categories import CANONICAL_WEIGHTS, VENDOR_WEIGHTS, taxonomy_for
from repro.markets.profiles import (
    ALL_MARKET_IDS,
    CHINESE_MARKET_IDS,
    GOOGLE_PLAY,
    MarketProfile,
    get_profile,
)
from repro.markets.vetting import Submission, VettingPipeline
from repro.util.rng import RngFactory
from repro.util.simtime import FIRST_CRAWL_DAY
from repro.util import text

__all__ = ["EcosystemGenerator"]

#: P(>=1 engine flags a clean 360-packed app); see JIAGU_HEURISTIC_BREADTH.
_JIAGU_FLAG_SHARE = 0.15

#: P(AV-rank >= 10 | malware payload), used to convert Table 4 rates into
#: injection targets (Binomial(60, breadth>=0.22) clears 10 ~97% of the time).
_MALWARE_DETECTION_RATE = 0.97

#: Developer team-size distribution (mean ~3 apps per developer).
_DEV_SIZES = (1, 2, 3, 4, 5, 6, 8, 12, 20, 40)
_DEV_SIZE_WEIGHTS = (0.45, 0.20, 0.12, 0.07, 0.05, 0.03, 0.03, 0.03, 0.015, 0.005)


class EcosystemGenerator:
    """Generates a :class:`~repro.ecosystem.world.World`."""

    def __init__(
        self,
        seed: int,
        scale: float,
        catalog: Optional[LibraryCatalog] = None,
        min_market_size: int = 40,
    ):
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self._seed = seed
        self._scale = scale
        self._rngs = RngFactory(seed).child("ecosystem")
        self._catalog = catalog or default_catalog()
        self._min_market_size = min_market_size
        self._spec = platform_spec()

        self._world = World(seed=seed, scale=scale, catalog=self._catalog)
        self._package_markets: Dict[str, Set[str]] = {}
        self._market_members: Dict[str, List[int]] = {m: [] for m in ALL_MARKET_IDS}
        self._name_pool: List[str] = []
        self._vetting: Dict[str, VettingPipeline] = {}
        self._next_dev_id = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self) -> World:
        """Run all stages and return the finished world."""
        rng = self._rngs.stream("pipeline")
        self._vetting = {
            m: VettingPipeline(get_profile(m), self._rngs.stream("vetting", m))
            for m in ALL_MARKET_IDS
        }
        quotas = self._market_quotas()
        self._build_name_pool(sum(quotas.values()))
        self._create_base_population(quotas)
        self._assign_developers()
        self._seed_celebrities()
        self._inject_fakes()
        self._inject_sb_clones()
        self._inject_cb_clones()
        self._inject_threats()
        self._finalize_listings()
        del rng
        return self._world

    # ------------------------------------------------------------------
    # stage 1: quotas
    # ------------------------------------------------------------------

    def _market_quotas(self) -> Dict[str, int]:
        quotas = {}
        for market_id in ALL_MARKET_IDS:
            profile = get_profile(market_id)
            quotas[market_id] = max(
                self._min_market_size, int(round(profile.paper_size * self._scale))
            )
        return quotas

    # ------------------------------------------------------------------
    # stage 2: base population
    # ------------------------------------------------------------------

    def _build_name_pool(self, total_quota: int) -> None:
        rng = self._rngs.stream("name-pool")
        pool_size = max(30, total_quota // 60)
        self._name_pool = [
            text.app_display_name(rng, common_fraction=0.0) for _ in range(pool_size)
        ]

    def _sample_display_name(self, rng: np.random.Generator) -> str:
        """Display name; drawn from a shared pool ~22% of the time.

        Shared-pool draws create the same-name clusters of Figure 8(b)
        (22% of apps share a name with at least one other app).
        """
        roll = rng.random()
        if roll < 0.02:
            return text.COMMON_APP_NAMES[int(rng.integers(0, len(text.COMMON_APP_NAMES)))]
        if roll < 0.20:
            idx = int(len(self._name_pool) * rng.power(2.5))
            return self._name_pool[min(idx, len(self._name_pool) - 1)]
        return text.app_display_name(rng, common_fraction=0.0)

    def _create_base_population(self, quotas: Dict[str, int]) -> None:
        rng = self._rngs.stream("base-population")
        gp_quota = quotas[GOOGLE_PLAY]
        n_gp_only = int(round(gp_quota * SINGLE_STORE_GP_SHARE))
        n_mixed = gp_quota - n_gp_only

        for _ in range(n_gp_only):
            self._new_app(rng, scope="global", popularity=float(rng.random()),
                          markets=(GOOGLE_PLAY,))

        cn_remaining = {m: quotas[m] for m in CHINESE_MARKET_IDS}

        for _ in range(n_mixed):
            popularity = float(rng.beta(1.8, 1.1))
            markets = (GOOGLE_PLAY,) + self._pick_cn_markets(
                rng, popularity, cn_remaining, cap=4 if popularity < 0.99 else None
            )
            self._new_app(rng, scope="mixed", popularity=popularity, markets=markets)

        # Chinese-only apps fill the remaining Chinese quotas.
        while any(v > 0 for v in cn_remaining.values()):
            popularity = float(rng.beta(1.0, 1.6))
            markets = self._pick_cn_markets(rng, popularity, cn_remaining)
            if not markets:
                break
            scope = "china"
            if rng.random() < MIXED_GP_TO_CN_SHARE * 0.08:
                # A slice of Chinese developers cross-list to Google Play
                # beyond the mixed population above.
                markets = (GOOGLE_PLAY,) + markets
                scope = "mixed"
            self._new_app(rng, scope=scope, popularity=popularity, markets=markets)

    def _pick_cn_markets(
        self,
        rng: np.random.Generator,
        popularity: float,
        remaining: Dict[str, int],
        cap: Optional[int] = None,
    ) -> Tuple[str, ...]:
        """Choose Chinese markets weighted by remaining quota.

        Single-market apps favor stores with high single-store shares
        (AnZhi, OPPO, 25PP per Section 5.2); multi-market picks follow
        quota so totals land on Table 1's proportions.  ``cap`` bounds
        the spread (used for GP-first developers, who cross-list into a
        handful of Chinese stores at most — Section 5.2's 20-30% overlap).
        """
        open_markets = [m for m in CHINESE_MARKET_IDS if remaining[m] > 0]
        if not open_markets:
            return ()
        k = min(sample_cn_market_count(popularity, rng), len(open_markets))
        if cap is not None:
            k = min(k, cap)
        if k == 1:
            weights = np.asarray(
                [remaining[m] * (0.02 + get_profile(m).single_store_share)
                 for m in open_markets]
            )
        else:
            weights = np.asarray([float(remaining[m]) for m in open_markets])
        weights = weights / weights.sum()
        chosen = rng.choice(len(open_markets), size=k, replace=False, p=weights)
        picked = tuple(open_markets[int(i)] for i in chosen)
        for m in picked:
            remaining[m] -= 1
        return picked

    # ------------------------------------------------------------------
    # app factory
    # ------------------------------------------------------------------

    def _unique_package(self, rng: np.random.Generator) -> str:
        for _ in range(20):
            package = text.package_name(rng)
            if package not in self._package_markets:
                return package
        raise RuntimeError("could not find a unique package name")

    def _sample_category(self, rng: np.random.Generator, markets: Sequence[str]) -> str:
        vendorish = sum(1 for m in markets if get_profile(m).kind == "vendor")
        weights = VENDOR_WEIGHTS if vendorish > len(markets) / 2 else CANONICAL_WEIGHTS
        names = [c for c, w in weights.items() if w > 0]
        probs = np.asarray([weights[c] for c in names])
        return str(rng.choice(names, p=probs / probs.sum()))

    @staticmethod
    def _clone_versions(
        rng: np.random.Generator, victim: AppBlueprint
    ) -> Tuple[AppVersion, ...]:
        """A clone's version history: a prefix of the victim's.

        Repackagers take an existing build and re-sign it, so the clone's
        version numbering never runs ahead of the original's — which is
        also what keeps Figure 9 sound (a clone cannot make the original
        look outdated).
        """
        cut = int(rng.integers(1, len(victim.versions) + 1))
        return victim.versions[:cut]

    def _sample_versions(
        self, rng: np.random.Generator, popularity: float, scope: str
    ) -> Tuple[AppVersion, ...]:
        n = sample_version_count(popularity, rng)
        last_day = sample_release_day(scope, rng)
        days = [last_day]
        for _ in range(n - 1):
            days.append(days[-1] - int(rng.integers(20, 260)))
        days = sorted(max(d, 400) for d in days)
        versions = []
        for i, day in enumerate(days):
            code = (i + 1) * int(rng.integers(1, 4))
            if i > 0:
                code = max(code, versions[-1].version_code + 1)
            versions.append(
                AppVersion(
                    version_code=code,
                    version_name=f"{1 + i // 4}.{i % 4}.{int(rng.integers(0, 10))}",
                    release_day=day,
                )
            )
        return tuple(versions)

    def _sample_permissions(
        self,
        rng: np.random.Generator,
        scope: str,
        lib_perms: Set[str],
        own: Optional[Set[str]] = None,
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Return (own_used, requested) permission tuples.

        ``own`` is given for repackaged apps, whose first-party code (and
        thus its permission footprint) is inherited from the victim — a
        repackager ships the original manifest plus its own additions.
        """
        if own is None:
            n_dangerous = int(rng.integers(1, 5))
            n_normal = int(rng.integers(2, 5))
            own = set(rng.choice(DANGEROUS_PERMISSIONS, size=n_dangerous, replace=False))
            own |= set(rng.choice(NORMAL_PERMISSIONS, size=n_normal, replace=False))
        used = own | lib_perms

        # Developers habitually paste permission boilerplate; each line
        # that happens to cover an API the app really calls is harmless,
        # the rest become the measured over-privilege.  Draws that hit an
        # already-used permission are NOT redrawn — that would merely
        # funnel probability mass into the rarer permissions and invert
        # the paper's READ_PHONE_STATE-first ranking.
        extra_count = sample_overprivilege_count(scope, rng)
        extras: Set[str] = set()
        perms = list(OVERPRIV_PERMISSION_WEIGHTS)
        probs = np.asarray([OVERPRIV_PERMISSION_WEIGHTS[p] for p in perms])
        probs = probs / probs.sum()
        for _ in range(extra_count):
            p = str(rng.choice(perms, p=probs))
            if p not in used:
                extras.add(p)
        requested = tuple(sorted(str(p) for p in used | extras))
        return tuple(sorted(str(p) for p in own)), requested

    def _sample_libraries(
        self, rng: np.random.Generator, scope: str, markets: Sequence[str]
    ) -> Tuple[Tuple[str, int], ...]:
        profiles = [get_profile(m) for m in markets]
        presence = float(np.mean([p.tpl_presence for p in profiles]))
        if rng.random() >= presence:
            return ()
        target_count = float(np.mean([p.tpl_avg_count for p in profiles]))
        region = "global" if scope == "global" else "china"

        def expected(tier: str) -> float:
            if scope == "mixed":
                return 0.5 * (
                    self._catalog.expected_count("global", tier)
                    + self._catalog.expected_count("china", tier)
                )
            return self._catalog.expected_count(region, tier)

        # Named libraries are adopted at their Table 2 usage rates; the
        # anonymous long tail absorbs per-market library-count targets
        # (Figure 5a) so measured top-10 usages stay faithful.
        tail_bias = max(
            0.0, (target_count - expected("named")) / max(expected("tail"), 1e-9)
        )

        chosen: List[Tuple[str, int]] = []
        for lib in self._catalog:
            if scope == "mixed":
                usage = 0.5 * (lib.gp_usage + lib.cn_usage)
            else:
                usage = self._catalog.usage(lib, region)
            # Aggressive ad SDK adoption is never amplified: markets whose
            # apps embed more libraries overall do not proportionally
            # attract more grayware (the Table 4 ">=1" top-up handles
            # per-market grayware calibration).
            p = min(0.97, usage * tail_bias if lib.tail else usage)
            if rng.random() < p:
                version = int(rng.integers(0, lib.n_versions))
                chosen.append((lib.package, version))
        return tuple(chosen)

    def _new_app(
        self,
        rng: np.random.Generator,
        scope: str,
        popularity: float,
        markets: Sequence[str],
        display_name: Optional[str] = None,
        package: Optional[str] = None,
        provenance: str = PROVENANCE_LEGIT,
        related_app_id: Optional[int] = None,
        own_code=None,
        libraries: Optional[Tuple[Tuple[str, int], ...]] = None,
        threat: Optional[ThreatProfile] = None,
        developer: Optional[Developer] = None,
        forced: bool = False,
        versions: Optional[Tuple[AppVersion, ...]] = None,
    ) -> Optional[AppBlueprint]:
        """Create an app, submit it to its markets, and register it.

        Returns the blueprint, or ``None`` if vetting rejected it from
        every market.  Placements only exist for accepting markets.
        ``versions`` overrides the sampled history — clones ship under
        their victim's version numbering, never ahead of it.
        """
        app_id = len(self._world.apps)
        package = package or self._unique_package(rng)
        if versions is None:
            versions = self._sample_versions(rng, popularity, scope)
        libraries = (
            libraries
            if libraries is not None
            else self._sample_libraries(rng, scope, markets)
        )
        lib_perms: Set[str] = set()
        for lib_package, _ in libraries:
            lib_perms |= set(self._catalog.get(lib_package).permissions)
        if own_code is None:
            own_perms, requested = self._sample_permissions(rng, scope, lib_perms)
            own_code = generate_own_code(rng, self._spec, package, own_perms)
        else:
            # Repackaged code: the permission footprint comes from the
            # inherited first-party code, not a fresh draw.
            inherited = set(self._spec.permissions_for(own_code.features))
            _, requested = self._sample_permissions(
                rng, scope, lib_perms, own=inherited
            )
        quality = float(np.clip(0.30 + 0.45 * popularity + rng.normal(0, 0.15), 0.05, 1.0))
        first_release = versions[0].release_day

        blueprint = AppBlueprint(
            app_id=app_id,
            package=package,
            display_name=display_name or self._sample_display_name(rng),
            category=self._sample_category(rng, markets),
            developer=developer,  # may be assigned later for base apps
            scope=scope,
            popularity=popularity,
            quality=quality,
            min_sdk=sample_min_sdk(first_release, rng, scope),
            target_sdk=0,  # fixed up below
            release_day=first_release,
            versions=versions,
            own_code=own_code,
            libraries=libraries,
            permissions_requested=requested,
            threat=threat,
            provenance=provenance,
            related_app_id=related_app_id,
        )
        blueprint.target_sdk = blueprint.min_sdk + int(rng.integers(0, 9))

        accepted_any = False
        for market_id in markets:
            if self._submit(blueprint, market_id, rng, forced=forced):
                accepted_any = True
        if not accepted_any:
            return None
        self._world.apps.append(blueprint)
        if blueprint.threat is not None:
            self._world.threat_feed.record(blueprint.threat)
        return blueprint

    def _submit(
        self,
        blueprint: AppBlueprint,
        market_id: str,
        rng: np.random.Generator,
        forced: bool = False,
    ) -> bool:
        """Submit one app to one market through its vetting pipeline."""
        occupied = self._package_markets.setdefault(blueprint.package, set())
        if market_id in occupied:
            return False  # a market lists at most one app per package
        pipeline = self._vetting[market_id]
        threat_kind = (
            blueprint.threat.family_def.kind if blueprint.threat is not None else None
        )
        submission = Submission(
            package=blueprint.package,
            developer_is_company=blueprint.popularity > 0.15 or rng.random() < 0.6,
            apk_size_mb=float(rng.uniform(2, 80)),
            threat_kind=threat_kind,
            is_fake=blueprint.provenance == PROVENANCE_FAKE,
            is_clone=blueprint.provenance in (PROVENANCE_SB_CLONE, PROVENANCE_CB_CLONE),
            forced=forced,
        )
        verdict = pipeline.review(submission)
        self._world.vetting_log.append(
            VettingRecord(market_id, blueprint.app_id, verdict.accepted, verdict.reason)
        )
        if not verdict.accepted:
            return False

        profile = get_profile(market_id)
        version_index = self._version_index_for(blueprint, profile, rng)
        listed_day = int(
            blueprint.versions[version_index].release_day
            + pipeline.vetting_delay_days()
        )
        blueprint.placements[market_id] = Placement(
            market_id=market_id,
            version_index=version_index,
            category_label="",  # finalized later
            downloads=None,
            rating=None,
            listed_day=min(listed_day, FIRST_CRAWL_DAY - 1),
        )
        occupied.add(market_id)
        self._market_members[market_id].append(blueprint.app_id)
        return True

    @staticmethod
    def _version_index_for(
        blueprint: AppBlueprint, profile: MarketProfile, rng: np.random.Generator
    ) -> int:
        latest = blueprint.latest_version_index
        if latest == 0 or rng.random() < profile.highest_version_share:
            return latest
        lag = 1 + int(rng.geometric(0.55)) - 1
        return max(0, latest - lag)

    # ------------------------------------------------------------------
    # stage 3: developers
    # ------------------------------------------------------------------

    def _new_developer(self, rng: np.random.Generator, region: str) -> Developer:
        dev_id = self._next_dev_id
        self._next_dev_id += 1
        name = text.developer_name(rng, region)
        alt_names = ()
        if region == "china" and rng.random() < 0.15:
            alt_names = (name.replace("Co., Ltd.", "Technology").strip(),)
        dev = Developer(dev_id=dev_id, name=name, region=region, alt_names=alt_names)
        self._world.developers.append(dev)
        return dev

    def _assign_developers(self) -> None:
        rng = self._rngs.stream("developers")
        groups: Dict[str, List[AppBlueprint]] = {"global": [], "mixed": [], "china": []}
        for app in self._world.apps:
            if app.developer is None:
                groups[app.scope].append(app)
        sizes = np.asarray(_DEV_SIZES)
        size_probs = np.asarray(_DEV_SIZE_WEIGHTS)
        size_probs = size_probs / size_probs.sum()
        for scope, apps in groups.items():
            order = rng.permutation(len(apps))
            i = 0
            while i < len(apps):
                team = int(rng.choice(sizes, p=size_probs))
                if scope == "global":
                    region = "global"
                elif scope == "china":
                    region = "china"
                else:
                    region = "china" if rng.random() < 0.6 else "global"
                dev = self._new_developer(rng, region)
                for j in order[i : i + team]:
                    apps[int(j)].developer = dev
                i += team

    # ------------------------------------------------------------------
    # stage 4: celebrity malware (Table 5)
    # ------------------------------------------------------------------

    def _seed_celebrities(self) -> None:
        rng = self._rngs.stream("celebrities")
        for celeb in CELEBRITY_MALWARE:
            dev = self._new_developer(rng, "china")
            threat = ThreatProfile(family=celeb.family, variant=0)
            self._new_app(
                rng,
                scope="china" if GOOGLE_PLAY not in celeb.markets else "mixed",
                popularity=float(rng.uniform(0.5, 0.9)),
                markets=celeb.markets,
                display_name=celeb.display_name,
                package=celeb.package,
                threat=threat,
                developer=dev,
                forced=True,
            )

    # ------------------------------------------------------------------
    # stage 5-7: fakes and clones
    # ------------------------------------------------------------------

    def _bernoulli_round(self, rng: np.random.Generator, x: float) -> int:
        base = int(math.floor(x))
        return base + (1 if rng.random() < (x - base) else 0)

    def _misbehavior_target(self, market_id: str, rate_pct: float) -> float:
        """Target count so the final share (after injections grow the
        denominator) lands on the paper's rate."""
        profile = get_profile(market_id)
        inflow = (profile.fake_rate + profile.sb_clone_rate + profile.cb_clone_rate) / 100.0
        current = len(self._market_members[market_id])
        final_size = current / max(0.4, 1.0 - inflow)
        return final_size * rate_pct / 100.0

    def _official_candidates(self) -> List[AppBlueprint]:
        """Popular, distinctively-named apps — fake-app targets.

        Restricted to apps that will plausibly show >1M installs in some
        store (top of the popularity range, listed in a market with a
        meaningful >1M bin) under a name no other app uses — the shape
        the Section 6.1 heuristic anchors on.
        """
        name_counts: Dict[str, int] = {}
        for app in self._world.apps:
            name_counts[app.display_name] = name_counts.get(app.display_name, 0) + 1

        def has_big_market(app: AppBlueprint) -> bool:
            return any(
                get_profile(m).download_bin_shares[-1] >= 0.004
                for m in app.placements
            )

        return [
            app
            for app in self._world.apps
            if app.popularity >= 0.997
            and app.provenance == PROVENANCE_LEGIT
            and name_counts[app.display_name] == 1
            and has_big_market(app)
        ]

    def _inject_fakes(self) -> None:
        rng = self._rngs.stream("fakes")
        officials = self._official_candidates()
        if not officials:
            return
        weights = np.asarray([app.popularity for app in officials])
        weights = weights / weights.sum()
        deficits = {
            m: self._bernoulli_round(
                rng, self._misbehavior_target(m, get_profile(m).fake_rate)
            )
            for m in ALL_MARKET_IDS
        }
        attempts = 0
        budget = 40 * (sum(deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget:
            attempts += 1
            market = max(deficits, key=deficits.get)
            if deficits[market] <= 0:
                break
            official = officials[int(rng.choice(len(officials), p=weights))]
            extra = [
                m for m in ALL_MARKET_IDS
                if deficits[m] > 0 and m != market and rng.random() < 0.25
            ][:2]
            dev = self._new_developer(rng, "china" if market != GOOGLE_PLAY else "global")
            threat = None
            if rng.random() < 0.4:
                family = self._sample_family(rng, "china" if market != GOOGLE_PLAY else "global")
                threat = ThreatProfile(family=family, variant=int(rng.integers(0, 30)))
            app = self._new_app(
                rng,
                scope="china" if market != GOOGLE_PLAY else "global",
                popularity=float(rng.uniform(0.0, 0.10)),
                markets=[market] + extra,
                display_name=official.display_name,
                provenance=PROVENANCE_FAKE,
                related_app_id=official.app_id,
                threat=threat,
                developer=dev,
            )
            if app is None:
                continue
            for m in app.placements:
                deficits[m] -= 1

    def _inject_sb_clones(self) -> None:
        rng = self._rngs.stream("sb-clones")
        victims = [
            app for app in self._world.apps
            if app.provenance == PROVENANCE_LEGIT and app.popularity >= 0.6
        ]
        if not victims:
            return
        # Popular apps attract cloning; purely-global apps a bit less,
        # since repackagers target the Chinese distribution channels.
        weights = np.asarray([
            app.popularity ** 3 * (0.6 if app.scope == "global" else 1.0)
            for app in victims
        ])
        weights = weights / weights.sum()
        deficits = {
            m: self._bernoulli_round(
                rng, self._misbehavior_target(m, get_profile(m).sb_clone_rate)
            )
            for m in ALL_MARKET_IDS
        }
        attempts = 0
        budget = 40 * (sum(deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget:
            attempts += 1
            market = max(deficits, key=deficits.get)
            if deficits[market] <= 0:
                break
            victim = victims[int(rng.choice(len(victims), p=weights))]
            occupied = self._package_markets.get(victim.package, set())
            if market in occupied:
                continue
            targets = [market] + [
                m for m in ALL_MARKET_IDS
                if deficits[m] > 0 and m != market and m not in occupied
                and rng.random() < 0.3
            ][:3]
            dev = self._new_developer(rng, "china")
            own = perturb_own_code(rng, victim.own_code)
            app = self._new_app(
                rng,
                scope="china" if market != GOOGLE_PLAY else "global",
                popularity=float(rng.uniform(0.0, 0.35)),
                markets=targets,
                display_name=victim.display_name,
                package=victim.package,
                provenance=PROVENANCE_SB_CLONE,
                related_app_id=victim.app_id,
                own_code=own,
                libraries=victim.libraries,
                developer=dev,
                versions=self._clone_versions(rng, victim),
            )
            if app is None:
                continue
            for m in app.placements:
                deficits[m] -= 1

    def _inject_cb_clones(self) -> None:
        rng = self._rngs.stream("cb-clones")
        victims = [
            app for app in self._world.apps
            if app.provenance == PROVENANCE_LEGIT and app.popularity >= 0.5
        ]
        if not victims:
            return
        weights = np.asarray([
            app.popularity ** 2 * (0.6 if app.scope == "global" else 1.0)
            for app in victims
        ])
        weights = weights / weights.sum()
        deficits = {
            m: self._bernoulli_round(
                rng, self._misbehavior_target(m, get_profile(m).cb_clone_rate)
            )
            for m in ALL_MARKET_IDS
        }
        attempts = 0
        budget = 30 * (sum(deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget:
            attempts += 1
            market = max(deficits, key=deficits.get)
            if deficits[market] <= 0:
                break
            victim = victims[int(rng.choice(len(victims), p=weights))]
            targets = [market] + [
                m for m in ALL_MARKET_IDS
                if deficits[m] > 0 and m != market and rng.random() < 0.3
            ][:3]
            dev = self._new_developer(rng, "china")
            package = self._unique_package(rng)
            own = perturb_own_code(rng, victim.own_code, new_package=package)
            if rng.random() < 0.5:
                name = victim.display_name + " " + str(rng.integers(2, 9))
            else:
                name = self._sample_display_name(rng)
            app = self._new_app(
                rng,
                scope="china" if market != GOOGLE_PLAY else "global",
                popularity=float(rng.uniform(0.0, 0.35)),
                markets=targets,
                display_name=name,
                package=package,
                provenance=PROVENANCE_CB_CLONE,
                related_app_id=victim.app_id,
                own_code=own,
                libraries=victim.libraries,
                developer=dev,
                versions=self._clone_versions(rng, victim),
            )
            if app is None:
                continue
            for m in app.placements:
                deficits[m] -= 1

    # ------------------------------------------------------------------
    # stage 8: threats
    # ------------------------------------------------------------------

    @staticmethod
    def _sample_family(rng: np.random.Generator, region: str) -> str:
        weights = GP_FAMILY_WEIGHTS if region == "global" else CHINESE_FAMILY_WEIGHTS
        names = list(weights)
        probs = np.asarray([weights[n] for n in names])
        return str(rng.choice(names, p=probs / probs.sum()))

    def _market_malware_count(self, market_id: str) -> int:
        return sum(
            1
            for app_id in self._market_members[market_id]
            if self._world.apps[app_id].threat is not None
        )

    def _inject_threats(self) -> None:
        self._inject_malware()
        self._inject_grayware()

    def _inject_malware(self) -> None:
        rng = self._rngs.stream("malware")
        deficits: Dict[str, int] = {}
        for m in ALL_MARKET_IDS:
            size = len(self._market_members[m])
            target = get_profile(m).av10_rate / 100.0 / _MALWARE_DETECTION_RATE * size
            deficits[m] = self._bernoulli_round(rng, target) - self._market_malware_count(m)

        clone_pool = [
            a for a in self._world.apps
            if a.provenance in (PROVENANCE_SB_CLONE, PROVENANCE_CB_CLONE)
            and a.threat is None
        ]
        legit_pool = [
            a for a in self._world.apps
            if a.provenance == PROVENANCE_LEGIT and a.threat is None
            and a.popularity < 0.9
        ]
        rng.shuffle(clone_pool)
        rng.shuffle(legit_pool)

        attempts = 0
        budget = 60 * (sum(max(0, d) for d in deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget:
            attempts += 1
            market = max(deficits, key=deficits.get)
            candidate = self._pop_threat_candidate(rng, market, clone_pool, legit_pool, deficits)
            if candidate is None:
                candidate = self._new_junk_app(rng, market)
                if candidate is None:
                    deficits[market] -= 1  # vetting ate it; avoid livelock
                    continue
            # Family mix follows where the app is actually distributed:
            # an app hosted in any Chinese market draws from the Chinese
            # family distribution (Figure 12), GP-only apps from GP's.
            region = (
                "global"
                if set(candidate.placements) <= {GOOGLE_PLAY}
                else "china"
            )
            repackaged = candidate.provenance in (PROVENANCE_SB_CLONE, PROVENANCE_CB_CLONE)
            threat = ThreatProfile(
                family=self._sample_family(rng, region),
                variant=int(rng.integers(0, 30)),
                repackaged=repackaged,
            )
            self._apply_threat(rng, candidate, threat, deficits)

    def _pop_threat_candidate(
        self,
        rng: np.random.Generator,
        market: str,
        clone_pool: List[AppBlueprint],
        legit_pool: List[AppBlueprint],
        deficits: Dict[str, int],
    ) -> Optional[AppBlueprint]:
        """Pick an existing listed app to infect; clones preferred at the
        paper's 38.3% repackaged-malware share."""
        pools = (
            (clone_pool, legit_pool)
            if rng.random() < REPACKAGED_MALWARE_SHARE
            else (legit_pool, clone_pool)
        )
        for pool in pools:
            for _ in range(min(len(pool), 60)):
                idx = int(rng.integers(0, len(pool)))
                app = pool[idx]
                if app.threat is not None or market not in app.placements:
                    continue
                in_deficit = sum(1 for m in app.placements if deficits.get(m, 0) > 0)
                if in_deficit * 2 >= len(app.placements):
                    pool[idx] = pool[-1]
                    pool.pop()
                    return app
        return None

    def _new_junk_app(self, rng: np.random.Generator, market: str) -> Optional[AppBlueprint]:
        scope = "global" if market == GOOGLE_PLAY else "china"
        dev = self._new_developer(rng, scope if scope == "china" else "global")
        return self._new_app(
            rng,
            scope=scope,
            popularity=float(rng.uniform(0.0, 0.25)),
            markets=(market,),
            developer=dev,
        )

    def _apply_threat(
        self,
        rng: np.random.Generator,
        app: AppBlueprint,
        threat: ThreatProfile,
        deficits: Dict[str, int],
    ) -> None:
        """Attach a payload and re-run security vetting in every hosting
        market; markets that catch it delist the app."""
        app.threat = threat
        self._world.threat_feed.record(threat)
        for market_id in list(app.placements):
            pipeline = self._vetting[market_id]
            submission = Submission(
                package=app.package,
                threat_kind=threat.family_def.kind,
            )
            verdict = pipeline.review(submission)
            self._world.vetting_log.append(
                VettingRecord(market_id, app.app_id, verdict.accepted,
                              "update:" + verdict.reason)
            )
            if verdict.accepted:
                deficits[market_id] = deficits.get(market_id, 0) - 1
            else:
                self._remove_placement(app, market_id)

    def _remove_placement(self, app: AppBlueprint, market_id: str) -> None:
        app.placements.pop(market_id, None)
        self._package_markets.get(app.package, set()).discard(market_id)
        try:
            self._market_members[market_id].remove(app.app_id)
        except ValueError:
            pass

    def _inject_grayware(self) -> None:
        """Top up 'flagged by >=1 engine' rates with aggressive ad SDKs."""
        rng = self._rngs.stream("grayware")
        aggressive = self._catalog.aggressive_libraries
        if not aggressive:
            return
        aggressive_packages = {lib.package for lib in aggressive}

        def flaggable(app: AppBlueprint) -> bool:
            if app.threat is not None:
                return True
            return any(pkg in aggressive_packages for pkg, _ in app.libraries)

        deficits: Dict[str, int] = {}
        for m in ALL_MARKET_IDS:
            profile = get_profile(m)
            size = len(self._market_members[m])
            rate = profile.av1_rate / 100.0
            if profile.requires_obfuscation:
                rate = max(0.0, (rate - _JIAGU_FLAG_SHARE) / (1.0 - _JIAGU_FLAG_SHARE))
            flagged = sum(
                1 for app_id in self._market_members[m]
                if flaggable(self._world.apps[app_id])
            )
            deficits[m] = self._bernoulli_round(rng, rate * size) - flagged

        pool = [
            a for a in self._world.apps
            if not flaggable(a) and a.popularity < 0.95
        ]
        rng.shuffle(pool)
        attempts = 0
        budget = 40 * (sum(max(0, d) for d in deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget and pool:
            attempts += 1
            market = max(deficits, key=deficits.get)
            candidate = None
            for _ in range(min(len(pool), 80)):
                idx = int(rng.integers(0, len(pool)))
                app = pool[idx]
                if market not in app.placements:
                    continue
                in_deficit = sum(1 for m in app.placements if deficits.get(m, 0) > 0)
                if in_deficit * 2 >= len(app.placements):
                    pool[idx] = pool[-1]
                    pool.pop()
                    candidate = app
                    break
            if candidate is None:
                candidate = self._new_junk_app(rng, market)
                if candidate is None:
                    deficits[market] -= 1
                    continue
                pool_added = True
                del pool_added
            region = "global" if candidate.scope == "global" else "china"
            lib = self._pick_aggressive_lib(rng, region, aggressive)
            candidate.libraries = candidate.libraries + (
                (lib.package, int(rng.integers(0, lib.n_versions))),
            )
            # Re-vet in each hosting market as a grayware update.
            for market_id in list(candidate.placements):
                verdict = self._vetting[market_id].review(
                    Submission(package=candidate.package, threat_kind="grayware")
                )
                if verdict.accepted:
                    deficits[market_id] = deficits.get(market_id, 0) - 1
                else:
                    self._remove_placement(candidate, market_id)

    def _pick_aggressive_lib(self, rng, region, aggressive):
        weights = np.asarray(
            [self._catalog.usage(lib, region) + 1e-4 for lib in aggressive]
        )
        weights = weights / weights.sum()
        return aggressive[int(rng.choice(len(aggressive), p=weights))]

    # ------------------------------------------------------------------
    # stage 9: finalize listings
    # ------------------------------------------------------------------

    def _finalize_listings(self) -> None:
        rng = self._rngs.stream("finalize")
        for market_id in ALL_MARKET_IDS:
            profile = get_profile(market_id)
            taxonomy = taxonomy_for(market_id)
            members = self._market_members[market_id]
            if not members:
                continue
            # Noise keeps per-market rankings correlated with global
            # popularity without being identical across stores.  It
            # shrinks toward the top of the ranking: globally famous apps
            # hold the top slots of every store (so they land in the >1M
            # bin everywhere — the anchor the fake-app heuristic needs),
            # while the long tail shuffles freely between stores.
            scores = []
            for a in members:
                popularity = self._world.apps[a].popularity
                sigma = 0.02 * min(1.0, (1.0 - popularity) * 25.0)
                scores.append((popularity + rng.normal(0, sigma), a))
            scores.sort()
            n = len(scores)
            for rank, (_, app_id) in enumerate(scores):
                app = self._world.apps[app_id]
                placement = app.placements[market_id]
                percentile = (rank + 0.5) / n
                downloads = self._downloads_for_percentile(rng, profile, percentile)
                if app.provenance == PROVENANCE_FAKE and downloads is not None:
                    downloads = min(downloads, int(rng.integers(40, 1000)))
                placement.downloads = downloads
                placement.rating = sample_listing_rating(
                    profile, app.quality, downloads, rng
                )
                if profile.category_null_share > 0 and rng.random() < profile.category_null_share:
                    placement.category_label = taxonomy.null_label(rng)
                else:
                    placement.category_label = taxonomy.market_label(app.category)

    @staticmethod
    def _downloads_for_percentile(
        rng: np.random.Generator, profile: MarketProfile, percentile: float
    ) -> Optional[int]:
        """Map a within-market rank percentile onto the market's Figure 2
        bin row, then draw within the bin.

        The within-bin position blends the app's rank position with
        noise, so the market's very top apps reliably land near the top
        of the open-ended ">1M" bin — Section 4.2's power law (top 0.1%
        of apps owning >50% of installs) depends on the head of the
        distribution, not only on the bin mix.
        """
        if not profile.reports_downloads:
            return None
        shares = np.asarray(profile.download_bin_shares, dtype=float)
        total = shares.sum()
        if total <= 0:
            return None
        cdf = np.cumsum(shares / total)
        bin_idx = int(np.searchsorted(cdf, percentile, side="right"))
        bin_idx = min(bin_idx, len(shares) - 1)
        from repro.markets.profiles import DOWNLOAD_BIN_EDGES

        lo = DOWNLOAD_BIN_EDGES[bin_idx]
        hi = (
            DOWNLOAD_BIN_EDGES[bin_idx + 1]
            if bin_idx + 1 < len(DOWNLOAD_BIN_EDGES)
            else 5_000_000_000
        )
        if lo == 0:
            return int(rng.integers(0, 10))
        bin_lo_p = cdf[bin_idx - 1] if bin_idx > 0 else 0.0
        bin_hi_p = cdf[bin_idx] if bin_idx < len(cdf) else 1.0
        span = max(bin_hi_p - bin_lo_p, 1e-9)
        within = min(1.0, max(0.0, (percentile - bin_lo_p) / span))
        position = 0.7 * within + 0.3 * rng.random()
        exponent = np.log10(lo) + (np.log10(hi) - np.log10(lo)) * position
        return int(10 ** exponent)
