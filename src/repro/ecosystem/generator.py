"""World generation.

``EcosystemGenerator`` synthesizes a complete app ecosystem in stages:

1. **Quotas** — per-market catalog sizes proportional to Table 1, scaled.
2. **Base population** — Google-Play-only, mixed, and Chinese-only legit
   apps filling the quotas, with popularity-driven cross-listing
   (Section 5.2's single/multi-store structure).
3. **Developers** — heavy-tailed partition of apps into signing
   identities, scope-pure (Section 5.1's publishing strategies).
4. **Celebrity malware** — the paper's Table 5 apps, seeded verbatim.
5. **Fake apps** (Table 3) — same-name masquerades of popular officials.
6. **Signature-based clones** (Table 3) — same package, different key.
7. **Code-based clones** (Table 3, Figure 10) — repackaged code under a
   new package name, produced by a :class:`~repro.ecosystem.threats.
   RepackagingModel`: market-specific cloner personas, shared-signing-key
   developer clusters, and repackaging chains (clone-of-a-clone, with
   ``clone_depth``/``related_app_id`` provenance).
8. **Threats** (Table 4) — malware payload assignment (38.3% onto
   clones, per Section 6.4) and grayware (aggressive ad SDK) top-up,
   both passing through each market's vetting pipeline.
9. **Finalize** — per-market downloads via rank-mapping onto the
   market's Figure 2 bin row, ratings per Figure 6 patterns, category
   labels (including the NULL-category artifact of Section 4.1).

Misbehavior injection uses *vetting-aware top-up loops*: targets are the
paper's post-vetting rates, and every submission really passes through
:class:`~repro.markets.vetting.VettingPipeline`, so stricter markets
genuinely reject more attempts on the way to the same final rate.

The base population and the per-listing finalize pass — the two stages
that dominate wall time — run on :class:`~repro.ecosystem.sharding.ShardPool`
when ``gen_workers > 1``.  Generation there splits into a serial *plan*
phase (quota accounting, market picks, package claims), a parallel
*build* phase (body sampling from index-keyed RNG substreams), and a
serial *submit* phase (vetting + registration in plan order); the world
is bit-identical at any worker count (see DESIGN.md's sharding
contract).  Stages report to the ``repro.obs`` profiler when one is
passed in.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.ecosystem.apps import (
    AppBlueprint,
    AppVersion,
    Placement,
    PROVENANCE_CB_CLONE,
    PROVENANCE_FAKE,
    PROVENANCE_LEGIT,
    PROVENANCE_SB_CLONE,
    PROVENANCE_TEMPLATE_SPAM,
    OwnCode,
    perturb_own_code,
    template_spam_code,
)
from repro.ecosystem.calibration import (
    CELEBRITY_MALWARE,
    MIXED_GP_TO_CN_SHARE,
    REPACKAGED_MALWARE_SHARE,
    SINGLE_STORE_GP_SHARE,
    sample_cn_market_count,
)
from repro.ecosystem.developers import Developer
from repro.ecosystem.libraries import LibraryCatalog, default_catalog
from repro.ecosystem.sharding import (
    AppBody,
    AppPlan,
    BodySampler,
    FinalizeJob,
    ShardPool,
    _build_chunk,
    _finalize_chunk,
)
from repro.ecosystem.threats import (
    CHINESE_FAMILY_WEIGHTS,
    GP_FAMILY_WEIGHTS,
    ClonerPersona,
    RepackagingModel,
    ThreatProfile,
)
from repro.ecosystem.world import VettingRecord, World
from repro.markets.profiles import (
    ALL_MARKET_IDS,
    CHINESE_MARKET_IDS,
    GOOGLE_PLAY,
    MarketProfile,
    get_profile,
)
from repro.markets.vetting import Submission, VettingPipeline
from repro.obs import NULL_OBS, Observability
from repro.util.rng import RngFactory
from repro.util.simtime import FIRST_CRAWL_DAY
from repro.util import text

__all__ = ["EcosystemGenerator"]

#: P(>=1 engine flags a clean 360-packed app); see JIAGU_HEURISTIC_BREADTH.
_JIAGU_FLAG_SHARE = 0.15

#: P(AV-rank >= 10 | malware payload), used to convert Table 4 rates into
#: injection targets (Binomial(60, breadth>=0.22) clears 10 ~97% of the time).
_MALWARE_DETECTION_RATE = 0.97

#: Developer team-size distribution (mean ~3 apps per developer).
_DEV_SIZES = (1, 2, 3, 4, 5, 6, 8, 12, 20, 40)
_DEV_SIZE_WEIGHTS = (0.45, 0.20, 0.12, 0.07, 0.05, 0.03, 0.03, 0.03, 0.015, 0.005)


class EcosystemGenerator:
    """Generates a :class:`~repro.ecosystem.world.World`."""

    def __init__(
        self,
        seed: int,
        scale: float,
        catalog: Optional[LibraryCatalog] = None,
        min_market_size: int = 40,
        gen_workers: int = 1,
        obs: Observability = NULL_OBS,
        repackaging: Optional[RepackagingModel] = None,
    ):
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if gen_workers < 1:
            raise ValueError(f"gen_workers must be positive, got {gen_workers}")
        self._seed = seed
        self._scale = scale
        self._rngs = RngFactory(seed).child("ecosystem")
        self._catalog = catalog or default_catalog()
        self._min_market_size = min_market_size
        self._gen_workers = gen_workers
        self._obs = obs
        self._repackaging = repackaging or RepackagingModel.default()
        self._persona_devs: Dict[str, Developer] = {}

        self._world = World(seed=seed, scale=scale, catalog=self._catalog)
        self._package_markets: Dict[str, Set[str]] = {}
        self._market_members: Dict[str, List[int]] = {m: [] for m in ALL_MARKET_IDS}
        self._name_pool: List[str] = []
        self._sampler: Optional[BodySampler] = None
        self._vetting: Dict[str, VettingPipeline] = {}
        self._next_dev_id = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self) -> World:
        """Run all stages and return the finished world."""
        obs = self._obs
        self._vetting = {
            m: VettingPipeline(get_profile(m), self._rngs.stream("vetting", m))
            for m in ALL_MARKET_IDS
        }
        with obs.stage("ecosystem.plan"):
            quotas = self._market_quotas()
            self._build_name_pool(sum(quotas.values()))
            self._sampler = BodySampler(self._catalog, self._name_pool)
            plans = self._plan_base_population(quotas)
        pool = ShardPool(
            self._gen_workers, self._rngs.seed, self._catalog, self._name_pool
        )
        try:
            with obs.stage("ecosystem.build"):
                bodies = pool.map_chunks(_build_chunk, plans)
            with obs.stage("ecosystem.submit"):
                self._register_base_population(plans, bodies)
            with obs.stage("ecosystem.developers"):
                self._assign_developers()
            with obs.stage("ecosystem.misbehavior"):
                self._seed_celebrities()
                self._inject_fakes()
                self._inject_sb_clones()
                self._inject_cb_clones()
                self._inject_template_spam()
            with obs.stage("ecosystem.threats"):
                self._inject_threats()
            with obs.stage("ecosystem.finalize"):
                self._finalize_listings(pool)
        finally:
            pool.shutdown()
        return self._world

    # ------------------------------------------------------------------
    # stage 1: quotas
    # ------------------------------------------------------------------

    def _market_quotas(self) -> Dict[str, int]:
        quotas = {}
        for market_id in ALL_MARKET_IDS:
            profile = get_profile(market_id)
            quotas[market_id] = max(
                self._min_market_size, int(round(profile.paper_size * self._scale))
            )
        return quotas

    # ------------------------------------------------------------------
    # stage 2: base population (plan -> build -> submit)
    # ------------------------------------------------------------------

    def _build_name_pool(self, total_quota: int) -> None:
        rng = self._rngs.stream("name-pool")
        pool_size = max(30, total_quota // 60)
        self._name_pool = [
            text.app_display_name(rng, common_fraction=0.0) for _ in range(pool_size)
        ]

    def _plan_base_population(self, quotas: Dict[str, int]) -> List[AppPlan]:
        """The serial planning pass: every draw that touches shared state.

        Quota decrements, market picks, and unique-package claims depend
        on each other app-to-app, so they stay on one stream, in one
        deterministic order.  Everything else about an app is deferred to
        the sharded build phase, keyed by the plan index recorded here.
        """
        rng = self._rngs.stream("base-population")
        plans: List[AppPlan] = []

        def plan(scope: str, popularity: float, markets: Tuple[str, ...]) -> None:
            package = self._unique_package(rng)
            self._package_markets.setdefault(package, set())
            plans.append(
                AppPlan(
                    index=len(plans),
                    scope=scope,
                    popularity=popularity,
                    markets=markets,
                    package=package,
                )
            )

        gp_quota = quotas[GOOGLE_PLAY]
        n_gp_only = int(round(gp_quota * SINGLE_STORE_GP_SHARE))
        n_mixed = gp_quota - n_gp_only

        for _ in range(n_gp_only):
            plan("global", float(rng.random()), (GOOGLE_PLAY,))

        cn_remaining = {m: quotas[m] for m in CHINESE_MARKET_IDS}

        for _ in range(n_mixed):
            popularity = float(rng.beta(1.8, 1.1))
            markets = (GOOGLE_PLAY,) + self._pick_cn_markets(
                rng, popularity, cn_remaining, cap=4 if popularity < 0.99 else None
            )
            plan("mixed", popularity, markets)

        # Chinese-only apps fill the remaining Chinese quotas.
        while any(v > 0 for v in cn_remaining.values()):
            popularity = float(rng.beta(1.0, 1.6))
            markets = self._pick_cn_markets(rng, popularity, cn_remaining)
            if not markets:
                break
            scope = "china"
            if rng.random() < MIXED_GP_TO_CN_SHARE * 0.08:
                # A slice of Chinese developers cross-list to Google Play
                # beyond the mixed population above.
                markets = (GOOGLE_PLAY,) + markets
                scope = "mixed"
            plan(scope, popularity, markets)
        return plans

    def _register_base_population(
        self, plans: Sequence[AppPlan], bodies: Sequence[AppBody]
    ) -> None:
        """The serial submit pass, in plan-index order.

        Vetting pipelines are stateful per-market streams; consuming them
        in index order is what makes the merged world independent of how
        the build phase was chunked.
        """
        for plan, body in zip(plans, bodies):
            rng = self._rngs.stream("register", plan.index)
            self._register(
                rng,
                scope=plan.scope,
                popularity=plan.popularity,
                markets=plan.markets,
                package=plan.package,
                body=body,
            )

    def _pick_cn_markets(
        self,
        rng: np.random.Generator,
        popularity: float,
        remaining: Dict[str, int],
        cap: Optional[int] = None,
    ) -> Tuple[str, ...]:
        """Choose Chinese markets weighted by remaining quota.

        Single-market apps favor stores with high single-store shares
        (AnZhi, OPPO, 25PP per Section 5.2); multi-market picks follow
        quota so totals land on Table 1's proportions.  ``cap`` bounds
        the spread (used for GP-first developers, who cross-list into a
        handful of Chinese stores at most — Section 5.2's 20-30% overlap).
        """
        open_markets = [m for m in CHINESE_MARKET_IDS if remaining[m] > 0]
        if not open_markets:
            return ()
        k = min(sample_cn_market_count(popularity, rng), len(open_markets))
        if cap is not None:
            k = min(k, cap)
        if k == 1:
            weights = np.asarray(
                [remaining[m] * (0.02 + get_profile(m).single_store_share)
                 for m in open_markets]
            )
        else:
            weights = np.asarray([float(remaining[m]) for m in open_markets])
        weights = weights / weights.sum()
        chosen = rng.choice(len(open_markets), size=k, replace=False, p=weights)
        picked = tuple(open_markets[int(i)] for i in chosen)
        for m in picked:
            remaining[m] -= 1
        return picked

    # ------------------------------------------------------------------
    # app factory
    # ------------------------------------------------------------------

    def _unique_package(self, rng: np.random.Generator) -> str:
        for _ in range(20):
            package = text.package_name(rng)
            if package not in self._package_markets:
                return package
        raise RuntimeError("could not find a unique package name")

    @staticmethod
    def _clone_versions(
        rng: np.random.Generator, victim: AppBlueprint
    ) -> Tuple[AppVersion, ...]:
        """A clone's version history: a prefix of the victim's.

        Repackagers take an existing build and re-sign it, so the clone's
        version numbering never runs ahead of the original's — which is
        also what keeps Figure 9 sound (a clone cannot make the original
        look outdated).
        """
        cut = int(rng.integers(1, len(victim.versions) + 1))
        return victim.versions[:cut]

    def _new_app(
        self,
        rng: np.random.Generator,
        scope: str,
        popularity: float,
        markets: Sequence[str],
        display_name: Optional[str] = None,
        package: Optional[str] = None,
        provenance: str = PROVENANCE_LEGIT,
        related_app_id: Optional[int] = None,
        clone_depth: int = 0,
        template_id: Optional[int] = None,
        own_code: Optional[OwnCode] = None,
        libraries: Optional[Tuple[Tuple[str, int], ...]] = None,
        threat: Optional[ThreatProfile] = None,
        developer: Optional[Developer] = None,
        forced: bool = False,
        versions: Optional[Tuple[AppVersion, ...]] = None,
    ) -> Optional[AppBlueprint]:
        """Create an app, submit it to its markets, and register it.

        The injection-stage path: body and submission draws share one
        stage stream (injections are inherently serial — they read the
        already-registered world).  Returns the blueprint, or ``None``
        if vetting rejected it from every market.  ``versions``
        overrides the sampled history — clones ship under their victim's
        version numbering, never ahead of it.
        """
        package = package or self._unique_package(rng)
        body = self._sampler.sample_body(
            rng,
            scope=scope,
            popularity=popularity,
            markets=markets,
            package=package,
            display_name=display_name,
            own_code=own_code,
            libraries=libraries,
            versions=versions,
        )
        return self._register(
            rng,
            scope=scope,
            popularity=popularity,
            markets=markets,
            package=package,
            body=body,
            provenance=provenance,
            related_app_id=related_app_id,
            clone_depth=clone_depth,
            template_id=template_id,
            threat=threat,
            developer=developer,
            forced=forced,
        )

    def _register(
        self,
        rng: np.random.Generator,
        *,
        scope: str,
        popularity: float,
        markets: Sequence[str],
        package: str,
        body: AppBody,
        provenance: str = PROVENANCE_LEGIT,
        related_app_id: Optional[int] = None,
        clone_depth: int = 0,
        template_id: Optional[int] = None,
        threat: Optional[ThreatProfile] = None,
        developer: Optional[Developer] = None,
        forced: bool = False,
    ) -> Optional[AppBlueprint]:
        """Submit a sampled body to its markets and register the result.

        Returns the blueprint, or ``None`` if vetting rejected it from
        every market.  Placements only exist for accepting markets.
        """
        blueprint = AppBlueprint(
            app_id=len(self._world.apps),
            package=package,
            display_name=body.display_name,
            category=body.category,
            developer=developer,  # may be assigned later for base apps
            scope=scope,
            popularity=popularity,
            quality=body.quality,
            min_sdk=body.min_sdk,
            target_sdk=body.target_sdk,
            release_day=body.versions[0].release_day,
            versions=body.versions,
            own_code=body.own_code,
            libraries=body.libraries,
            permissions_requested=body.permissions_requested,
            threat=threat,
            provenance=provenance,
            related_app_id=related_app_id,
            clone_depth=clone_depth,
            template_id=template_id,
        )
        accepted_any = False
        for market_id in markets:
            if self._submit(blueprint, market_id, rng, forced=forced):
                accepted_any = True
        if not accepted_any:
            return None
        self._world.apps.append(blueprint)
        if blueprint.threat is not None:
            self._world.threat_feed.record(blueprint.threat)
        return blueprint

    def _submit(
        self,
        blueprint: AppBlueprint,
        market_id: str,
        rng: np.random.Generator,
        forced: bool = False,
    ) -> bool:
        """Submit one app to one market through its vetting pipeline."""
        occupied = self._package_markets.setdefault(blueprint.package, set())
        if market_id in occupied:
            return False  # a market lists at most one app per package
        pipeline = self._vetting[market_id]
        threat_kind = (
            blueprint.threat.family_def.kind if blueprint.threat is not None else None
        )
        submission = Submission(
            package=blueprint.package,
            developer_is_company=blueprint.popularity > 0.15 or rng.random() < 0.6,
            apk_size_mb=float(rng.uniform(2, 80)),
            threat_kind=threat_kind,
            is_fake=blueprint.provenance == PROVENANCE_FAKE,
            is_clone=blueprint.provenance in (PROVENANCE_SB_CLONE, PROVENANCE_CB_CLONE),
            forced=forced,
        )
        verdict = pipeline.review(submission)
        self._world.vetting_log.append(
            VettingRecord(market_id, blueprint.app_id, verdict.accepted, verdict.reason)
        )
        if not verdict.accepted:
            return False

        profile = get_profile(market_id)
        version_index = self._version_index_for(blueprint, profile, rng)
        listed_day = int(
            blueprint.versions[version_index].release_day
            + pipeline.vetting_delay_days()
        )
        blueprint.placements[market_id] = Placement(
            market_id=market_id,
            version_index=version_index,
            category_label="",  # finalized later
            downloads=None,
            rating=None,
            listed_day=min(listed_day, FIRST_CRAWL_DAY - 1),
        )
        occupied.add(market_id)
        self._market_members[market_id].append(blueprint.app_id)
        return True

    @staticmethod
    def _version_index_for(
        blueprint: AppBlueprint, profile: MarketProfile, rng: np.random.Generator
    ) -> int:
        latest = blueprint.latest_version_index
        if latest == 0 or rng.random() < profile.highest_version_share:
            return latest
        lag = 1 + int(rng.geometric(0.55)) - 1
        return max(0, latest - lag)

    # ------------------------------------------------------------------
    # stage 3: developers
    # ------------------------------------------------------------------

    def _new_developer(self, rng: np.random.Generator, region: str) -> Developer:
        dev_id = self._next_dev_id
        self._next_dev_id += 1
        name = text.developer_name(rng, region)
        alt_names = ()
        if region == "china" and rng.random() < 0.15:
            alt_names = (name.replace("Co., Ltd.", "Technology").strip(),)
        dev = Developer(dev_id=dev_id, name=name, region=region, alt_names=alt_names)
        self._world.developers.append(dev)
        return dev

    def _assign_developers(self) -> None:
        rng = self._rngs.stream("developers")
        groups: Dict[str, List[AppBlueprint]] = {"global": [], "mixed": [], "china": []}
        for app in self._world.apps:
            if app.developer is None:
                groups[app.scope].append(app)
        sizes = np.asarray(_DEV_SIZES)
        size_probs = np.asarray(_DEV_SIZE_WEIGHTS)
        size_probs = size_probs / size_probs.sum()
        for scope, apps in groups.items():
            order = rng.permutation(len(apps))
            i = 0
            while i < len(apps):
                team = int(rng.choice(sizes, p=size_probs))
                if scope == "global":
                    region = "global"
                elif scope == "china":
                    region = "china"
                else:
                    region = "china" if rng.random() < 0.6 else "global"
                dev = self._new_developer(rng, region)
                for j in order[i : i + team]:
                    apps[int(j)].developer = dev
                i += team

    # ------------------------------------------------------------------
    # stage 4: celebrity malware (Table 5)
    # ------------------------------------------------------------------

    def _seed_celebrities(self) -> None:
        rng = self._rngs.stream("celebrities")
        for celeb in CELEBRITY_MALWARE:
            dev = self._new_developer(rng, "china")
            threat = ThreatProfile(family=celeb.family, variant=0)
            self._new_app(
                rng,
                scope="china" if GOOGLE_PLAY not in celeb.markets else "mixed",
                popularity=float(rng.uniform(0.5, 0.9)),
                markets=celeb.markets,
                display_name=celeb.display_name,
                package=celeb.package,
                threat=threat,
                developer=dev,
                forced=True,
            )

    # ------------------------------------------------------------------
    # stage 5-7: fakes and clones
    # ------------------------------------------------------------------

    def _bernoulli_round(self, rng: np.random.Generator, x: float) -> int:
        base = int(math.floor(x))
        return base + (1 if rng.random() < (x - base) else 0)

    def _misbehavior_target(self, market_id: str, rate_pct: float) -> float:
        """Target count so the final share (after injections grow the
        denominator) lands on the paper's rate."""
        profile = get_profile(market_id)
        inflow = (profile.fake_rate + profile.sb_clone_rate + profile.cb_clone_rate) / 100.0
        current = len(self._market_members[market_id])
        final_size = current / max(0.4, 1.0 - inflow)
        return final_size * rate_pct / 100.0

    def _official_candidates(self) -> List[AppBlueprint]:
        """Popular, distinctively-named apps — fake-app targets.

        Restricted to apps that will plausibly show >1M installs in some
        store (top of the popularity range, listed in a market with a
        meaningful >1M bin) under a name no other app uses — the shape
        the Section 6.1 heuristic anchors on.
        """
        name_counts: Dict[str, int] = {}
        for app in self._world.apps:
            name_counts[app.display_name] = name_counts.get(app.display_name, 0) + 1

        def has_big_market(app: AppBlueprint) -> bool:
            return any(
                get_profile(m).download_bin_shares[-1] >= 0.004
                for m in app.placements
            )

        return [
            app
            for app in self._world.apps
            if app.popularity >= 0.997
            and app.provenance == PROVENANCE_LEGIT
            and name_counts[app.display_name] == 1
            and has_big_market(app)
        ]

    def _inject_fakes(self) -> None:
        rng = self._rngs.stream("fakes")
        officials = self._official_candidates()
        if not officials:
            return
        weights = np.asarray([app.popularity for app in officials])
        weights = weights / weights.sum()
        deficits = {
            m: self._bernoulli_round(
                rng, self._misbehavior_target(m, get_profile(m).fake_rate)
            )
            for m in ALL_MARKET_IDS
        }
        attempts = 0
        budget = 40 * (sum(deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget:
            attempts += 1
            market = max(deficits, key=deficits.get)
            if deficits[market] <= 0:
                break
            official = officials[int(rng.choice(len(officials), p=weights))]
            extra = [
                m for m in ALL_MARKET_IDS
                if deficits[m] > 0 and m != market and rng.random() < 0.25
            ][:2]
            dev = self._new_developer(rng, "china" if market != GOOGLE_PLAY else "global")
            threat = None
            if rng.random() < 0.4:
                family = self._sample_family(rng, "china" if market != GOOGLE_PLAY else "global")
                threat = ThreatProfile(family=family, variant=int(rng.integers(0, 30)))
            app = self._new_app(
                rng,
                scope="china" if market != GOOGLE_PLAY else "global",
                popularity=float(rng.uniform(0.0, 0.10)),
                markets=[market] + extra,
                display_name=official.display_name,
                provenance=PROVENANCE_FAKE,
                related_app_id=official.app_id,
                threat=threat,
                developer=dev,
            )
            if app is None:
                continue
            for m in app.placements:
                deficits[m] -= 1

    def _inject_sb_clones(self) -> None:
        rng = self._rngs.stream("sb-clones")
        victims = [
            app for app in self._world.apps
            if app.provenance == PROVENANCE_LEGIT and app.popularity >= 0.6
        ]
        if not victims:
            return
        # Popular apps attract cloning; purely-global apps a bit less,
        # since repackagers target the Chinese distribution channels.
        weights = np.asarray([
            app.popularity ** 3 * (0.6 if app.scope == "global" else 1.0)
            for app in victims
        ])
        weights = weights / weights.sum()
        deficits = {
            m: self._bernoulli_round(
                rng, self._misbehavior_target(m, get_profile(m).sb_clone_rate)
            )
            for m in ALL_MARKET_IDS
        }
        attempts = 0
        budget = 40 * (sum(deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget:
            attempts += 1
            market = max(deficits, key=deficits.get)
            if deficits[market] <= 0:
                break
            victim = victims[int(rng.choice(len(victims), p=weights))]
            occupied = self._package_markets.get(victim.package, set())
            if market in occupied:
                continue
            targets = [market] + [
                m for m in ALL_MARKET_IDS
                if deficits[m] > 0 and m != market and m not in occupied
                and rng.random() < 0.3
            ][:3]
            dev = self._new_developer(rng, "china")
            own = perturb_own_code(rng, victim.own_code)
            app = self._new_app(
                rng,
                scope="china" if market != GOOGLE_PLAY else "global",
                popularity=float(rng.uniform(0.0, 0.35)),
                markets=targets,
                display_name=victim.display_name,
                package=victim.package,
                provenance=PROVENANCE_SB_CLONE,
                related_app_id=victim.app_id,
                clone_depth=1,
                own_code=own,
                libraries=victim.libraries,
                developer=dev,
                versions=self._clone_versions(rng, victim),
            )
            if app is None:
                continue
            for m in app.placements:
                deficits[m] -= 1

    def _persona_for(
        self, rng: np.random.Generator, market: str
    ) -> ClonerPersona:
        """The cloner persona operating this market's top-up attempt.

        A single-persona model consumes no RNG draw — the default
        profile must leave the ``cb-clones`` stream's draw sequence
        exactly as the Table 3 calibration was tuned against.
        """
        personas = [
            p for p in self._repackaging.personas if p.operates_in(market)
        ]
        if not personas:
            personas = list(self._repackaging.personas)
        if len(personas) == 1:
            return personas[0]
        return personas[int(rng.integers(len(personas)))]

    def _persona_developer(
        self,
        rng: np.random.Generator,
        persona: ClonerPersona,
        victim_dev: Optional[Developer],
    ) -> Developer:
        """The signing identity for one of the persona's clones.

        Persona key reuse builds shared-signing-key developer clusters,
        but a chain link must never share its parent's key — same-signer
        pairs read as legitimate reuse, which would hide the repack.
        """
        if persona.key_reuse > 0 and rng.random() < persona.key_reuse:
            dev = self._persona_devs.get(persona.name)
            if dev is None:
                dev = self._new_developer(rng, "china")
                self._persona_devs[persona.name] = dev
            if victim_dev is None or dev.fingerprint != victim_dev.fingerprint:
                return dev
        return self._new_developer(rng, "china")

    def _inject_cb_clones(self) -> None:
        """Code-based clones, produced by the repackaging model's
        personas: mostly direct repacks of popular legit apps, plus
        repackaging chains (clone-of-a-clone, ``clone_depth`` tracking
        the hop count and ``related_app_id`` one link up)."""
        rng = self._rngs.stream("cb-clones")
        victims = [
            app for app in self._world.apps
            if app.provenance == PROVENANCE_LEGIT and app.popularity >= 0.5
        ]
        if not victims:
            return
        weights = np.asarray([
            app.popularity ** 2 * (0.6 if app.scope == "global" else 1.0)
            for app in victims
        ])
        weights = weights / weights.sum()
        boost = self._repackaging.family_boost
        deficits = {
            m: self._bernoulli_round(
                rng,
                boost * self._misbehavior_target(m, get_profile(m).cb_clone_rate),
            )
            for m in ALL_MARKET_IDS
        }
        repacks: List[AppBlueprint] = []  # this stage's clones: chain fodder
        attempts = 0
        budget = 30 * (sum(deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget:
            attempts += 1
            market = max(deficits, key=deficits.get)
            if deficits[market] <= 0:
                break
            persona = self._persona_for(rng, market)
            chain_pool = [
                a for a in repacks if a.clone_depth < persona.max_chain_depth
            ]
            # Guarded draws: an inert persona (no chains, no key reuse)
            # consumes nothing, keeping the stream calibration-identical.
            if (
                persona.chain_share > 0
                and chain_pool
                and rng.random() < persona.chain_share
            ):
                victim = chain_pool[int(rng.integers(len(chain_pool)))]
            else:
                victim = victims[int(rng.choice(len(victims), p=weights))]
            targets = [market] + [
                m for m in ALL_MARKET_IDS
                if deficits[m] > 0 and m != market and rng.random() < 0.3
            ][:3]
            dev = self._persona_developer(rng, persona, victim.developer)
            package = self._unique_package(rng)
            own = perturb_own_code(rng, victim.own_code, new_package=package)
            if rng.random() < 0.5:
                name = victim.display_name + " " + str(rng.integers(2, 9))
            else:
                name = self._sampler.sample_display_name(rng)
            app = self._new_app(
                rng,
                scope="china" if market != GOOGLE_PLAY else "global",
                popularity=float(rng.uniform(0.0, 0.35)),
                markets=targets,
                display_name=name,
                package=package,
                provenance=PROVENANCE_CB_CLONE,
                related_app_id=victim.app_id,
                clone_depth=victim.clone_depth + 1,
                own_code=own,
                libraries=victim.libraries,
                developer=dev,
                versions=self._clone_versions(rng, victim),
            )
            if app is None:
                continue
            repacks.append(app)
            for m in app.placements:
                deficits[m] -= 1

    def _inject_template_spam(self) -> None:
        """App-factory template spam (adversarial profiles only).

        Each studio signs all of its output with one key and stamps out
        apps carrying a random sample of the studio's shared block pool
        — pairwise overlap far below the clone threshold, so nothing
        here is a reportable clone; the point is the blocking-layer
        pressure (see :class:`RepackagingModel`).  The default model has
        no studios, so this stage creates no stream and no draws.
        """
        model = self._repackaging
        if model.template_studios <= 0 or model.template_spam_rate <= 0:
            return
        rng = self._rngs.stream("template-spam")
        base = sum(
            1 for a in self._world.apps if a.provenance == PROVENANCE_LEGIT
        )
        total = int(round(model.template_spam_rate * base))
        per_studio = max(1, total // model.template_studios)
        for studio in range(model.template_studios):
            pool = tuple(
                int(rng.integers(0, 2**32))
                for _ in range(model.template_pool_blocks)
            )
            dev = self._new_developer(rng, "china")
            for _ in range(per_studio):
                package = self._unique_package(rng)
                own = template_spam_code(
                    rng, package, pool, model.template_sample_ratio
                )
                markets = [
                    str(m) for m in rng.choice(
                        np.asarray(CHINESE_MARKET_IDS),
                        size=int(rng.integers(1, 4)),
                        replace=False,
                    )
                ]
                self._new_app(
                    rng,
                    scope="china",
                    popularity=float(rng.uniform(0.0, 0.2)),
                    markets=markets,
                    package=package,
                    provenance=PROVENANCE_TEMPLATE_SPAM,
                    template_id=studio,
                    own_code=own,
                    developer=dev,
                )

    # ------------------------------------------------------------------
    # stage 8: threats
    # ------------------------------------------------------------------

    @staticmethod
    def _sample_family(rng: np.random.Generator, region: str) -> str:
        weights = GP_FAMILY_WEIGHTS if region == "global" else CHINESE_FAMILY_WEIGHTS
        names = list(weights)
        probs = np.asarray([weights[n] for n in names])
        return str(rng.choice(names, p=probs / probs.sum()))

    def _market_malware_count(self, market_id: str) -> int:
        return sum(
            1
            for app_id in self._market_members[market_id]
            if self._world.apps[app_id].threat is not None
        )

    def _inject_threats(self) -> None:
        self._inject_malware()
        self._inject_grayware()

    def _inject_malware(self) -> None:
        rng = self._rngs.stream("malware")
        deficits: Dict[str, int] = {}
        for m in ALL_MARKET_IDS:
            size = len(self._market_members[m])
            target = get_profile(m).av10_rate / 100.0 / _MALWARE_DETECTION_RATE * size
            deficits[m] = self._bernoulli_round(rng, target) - self._market_malware_count(m)

        clone_pool = [
            a for a in self._world.apps
            if a.provenance in (PROVENANCE_SB_CLONE, PROVENANCE_CB_CLONE)
            and a.threat is None
        ]
        legit_pool = [
            a for a in self._world.apps
            if a.provenance == PROVENANCE_LEGIT and a.threat is None
            and a.popularity < 0.9
        ]
        rng.shuffle(clone_pool)
        rng.shuffle(legit_pool)

        attempts = 0
        budget = 60 * (sum(max(0, d) for d in deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget:
            attempts += 1
            market = max(deficits, key=deficits.get)
            candidate = self._pop_threat_candidate(rng, market, clone_pool, legit_pool, deficits)
            if candidate is None:
                candidate = self._new_junk_app(rng, market)
                if candidate is None:
                    deficits[market] -= 1  # vetting ate it; avoid livelock
                    continue
            # Family mix follows where the app is actually distributed:
            # an app hosted in any Chinese market draws from the Chinese
            # family distribution (Figure 12), GP-only apps from GP's.
            region = (
                "global"
                if set(candidate.placements) <= {GOOGLE_PLAY}
                else "china"
            )
            repackaged = candidate.provenance in (PROVENANCE_SB_CLONE, PROVENANCE_CB_CLONE)
            threat = ThreatProfile(
                family=self._sample_family(rng, region),
                variant=int(rng.integers(0, 30)),
                repackaged=repackaged,
            )
            self._apply_threat(rng, candidate, threat, deficits)

    def _pop_threat_candidate(
        self,
        rng: np.random.Generator,
        market: str,
        clone_pool: List[AppBlueprint],
        legit_pool: List[AppBlueprint],
        deficits: Dict[str, int],
    ) -> Optional[AppBlueprint]:
        """Pick an existing listed app to infect; clones preferred at the
        paper's 38.3% repackaged-malware share."""
        pools = (
            (clone_pool, legit_pool)
            if rng.random() < REPACKAGED_MALWARE_SHARE
            else (legit_pool, clone_pool)
        )
        for pool in pools:
            for _ in range(min(len(pool), 60)):
                idx = int(rng.integers(0, len(pool)))
                app = pool[idx]
                if app.threat is not None or market not in app.placements:
                    continue
                in_deficit = sum(1 for m in app.placements if deficits.get(m, 0) > 0)
                if in_deficit * 2 >= len(app.placements):
                    pool[idx] = pool[-1]
                    pool.pop()
                    return app
        return None

    def _new_junk_app(self, rng: np.random.Generator, market: str) -> Optional[AppBlueprint]:
        scope = "global" if market == GOOGLE_PLAY else "china"
        dev = self._new_developer(rng, scope if scope == "china" else "global")
        return self._new_app(
            rng,
            scope=scope,
            popularity=float(rng.uniform(0.0, 0.25)),
            markets=(market,),
            developer=dev,
        )

    def _apply_threat(
        self,
        rng: np.random.Generator,
        app: AppBlueprint,
        threat: ThreatProfile,
        deficits: Dict[str, int],
    ) -> None:
        """Attach a payload and re-run security vetting in every hosting
        market; markets that catch it delist the app."""
        app.threat = threat
        self._world.threat_feed.record(threat)
        for market_id in list(app.placements):
            pipeline = self._vetting[market_id]
            submission = Submission(
                package=app.package,
                threat_kind=threat.family_def.kind,
            )
            verdict = pipeline.review(submission)
            self._world.vetting_log.append(
                VettingRecord(market_id, app.app_id, verdict.accepted,
                              "update:" + verdict.reason)
            )
            if verdict.accepted:
                deficits[market_id] = deficits.get(market_id, 0) - 1
            else:
                self._remove_placement(app, market_id)

    def _remove_placement(self, app: AppBlueprint, market_id: str) -> None:
        app.placements.pop(market_id, None)
        self._package_markets.get(app.package, set()).discard(market_id)
        try:
            self._market_members[market_id].remove(app.app_id)
        except ValueError:
            pass

    def _inject_grayware(self) -> None:
        """Top up 'flagged by >=1 engine' rates with aggressive ad SDKs."""
        rng = self._rngs.stream("grayware")
        aggressive = self._catalog.aggressive_libraries
        if not aggressive:
            return
        aggressive_packages = {lib.package for lib in aggressive}

        def flaggable(app: AppBlueprint) -> bool:
            if app.threat is not None:
                return True
            return any(pkg in aggressive_packages for pkg, _ in app.libraries)

        deficits: Dict[str, int] = {}
        for m in ALL_MARKET_IDS:
            profile = get_profile(m)
            size = len(self._market_members[m])
            rate = profile.av1_rate / 100.0
            if profile.requires_obfuscation:
                rate = max(0.0, (rate - _JIAGU_FLAG_SHARE) / (1.0 - _JIAGU_FLAG_SHARE))
            flagged = sum(
                1 for app_id in self._market_members[m]
                if flaggable(self._world.apps[app_id])
            )
            deficits[m] = self._bernoulli_round(rng, rate * size) - flagged

        pool = [
            a for a in self._world.apps
            if not flaggable(a) and a.popularity < 0.95
        ]
        rng.shuffle(pool)
        attempts = 0
        budget = 40 * (sum(max(0, d) for d in deficits.values()) + 1)
        while any(d > 0 for d in deficits.values()) and attempts < budget and pool:
            attempts += 1
            market = max(deficits, key=deficits.get)
            candidate = None
            for _ in range(min(len(pool), 80)):
                idx = int(rng.integers(0, len(pool)))
                app = pool[idx]
                if market not in app.placements:
                    continue
                in_deficit = sum(1 for m in app.placements if deficits.get(m, 0) > 0)
                if in_deficit * 2 >= len(app.placements):
                    pool[idx] = pool[-1]
                    pool.pop()
                    candidate = app
                    break
            if candidate is None:
                candidate = self._new_junk_app(rng, market)
                if candidate is None:
                    deficits[market] -= 1
                    continue
            region = "global" if candidate.scope == "global" else "china"
            lib = self._pick_aggressive_lib(rng, region, aggressive)
            candidate.libraries = candidate.libraries + (
                (lib.package, int(rng.integers(0, lib.n_versions))),
            )
            # Re-vet in each hosting market as a grayware update.
            for market_id in list(candidate.placements):
                verdict = self._vetting[market_id].review(
                    Submission(package=candidate.package, threat_kind="grayware")
                )
                if verdict.accepted:
                    deficits[market_id] = deficits.get(market_id, 0) - 1
                else:
                    self._remove_placement(candidate, market_id)

    def _pick_aggressive_lib(self, rng, region, aggressive):
        weights = np.asarray(
            [self._catalog.usage(lib, region) + 1e-4 for lib in aggressive]
        )
        weights = weights / weights.sum()
        return aggressive[int(rng.choice(len(aggressive), p=weights))]

    # ------------------------------------------------------------------
    # stage 9: finalize listings
    # ------------------------------------------------------------------

    def _finalize_listings(self, pool: ShardPool) -> None:
        """Assign downloads, ratings, and category labels.

        The rank assignment stays serial: per-market noise draws come
        from one stream per market, consumed in membership order, and
        the sort that turns scores into ranks is global to the market.
        The per-listing draws (bin placement, rating, label) are pure
        per-listing work keyed by ``(market, app)``, so they shard.
        """
        jobs: List[FinalizeJob] = []
        for market_id in ALL_MARKET_IDS:
            members = self._market_members[market_id]
            if not members:
                continue
            # Noise keeps per-market rankings correlated with global
            # popularity without being identical across stores.  It
            # shrinks toward the top of the ranking: globally famous apps
            # hold the top slots of every store (so they land in the >1M
            # bin everywhere — the anchor the fake-app heuristic needs),
            # while the long tail shuffles freely between stores.
            noise_rng = self._rngs.stream("finalize-noise", market_id)
            scores = []
            for a in members:
                popularity = self._world.apps[a].popularity
                sigma = 0.02 * min(1.0, (1.0 - popularity) * 25.0)
                scores.append((popularity + noise_rng.normal(0, sigma), a))
            scores.sort()
            n = len(scores)
            for rank, (_, app_id) in enumerate(scores):
                app = self._world.apps[app_id]
                jobs.append(
                    FinalizeJob(
                        market_id=market_id,
                        app_id=app_id,
                        percentile=(rank + 0.5) / n,
                        quality=app.quality,
                        category=app.category,
                        is_fake=app.provenance == PROVENANCE_FAKE,
                    )
                )
        for market_id, app_id, downloads, rating, label in pool.map_chunks(
            _finalize_chunk, jobs
        ):
            placement = self._world.apps[app_id].placements[market_id]
            placement.downloads = downloads
            placement.rating = rating
            placement.category_label = label
