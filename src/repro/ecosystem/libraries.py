"""Third-party library catalog.

Models the SDK ecosystem of Section 4.4: global libraries (Google
services, Facebook, game engines) versus Chinese-market libraries
(WeChat, Alipay, Baidu, Umeng, dozens of Chinese ad networks).  Each
library has per-region adoption targets taken from Table 2 where the
paper reports them, several versions with overlapping feature multisets
(so detector clustering behaves like LibRadar's), the permissions its
code exercises, and — for aggressive ad SDKs — a grayware family label
that weak anti-virus engines match on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apk.models import API_FEATURE_RANGE, CodePackage
from repro.util.rng import stable_hash64

__all__ = [
    "LIB_DEVELOPMENT",
    "LIB_ADVERTISEMENT",
    "LIB_ANALYTICS",
    "LIB_SOCIAL",
    "LIB_PAYMENT",
    "LIB_GAME_ENGINE",
    "LIB_MAP",
    "Library",
    "LibraryVersionCode",
    "LibraryCatalog",
    "default_catalog",
]

LIB_DEVELOPMENT = "Development"
LIB_ADVERTISEMENT = "Advertisement"
LIB_ANALYTICS = "Analytics"
LIB_SOCIAL = "Social Networking"
LIB_PAYMENT = "Payment"
LIB_GAME_ENGINE = "Game Engine"
LIB_MAP = "Map"


@dataclass(frozen=True)
class Library:
    """One third-party library.

    ``gp_usage`` / ``cn_usage`` are target adoption probabilities for
    apps aimed at Google Play versus the Chinese markets (Table 2 lists
    the measured values for the top 10 of each side).
    """

    package: str
    vendor: str
    category: str
    gp_usage: float
    cn_usage: float
    n_versions: int = 5
    permissions: Tuple[str, ...] = ()
    grayware_family: Optional[str] = None  # aggressive ad SDKs only
    tail: bool = False  # long-tail utility SDK (absorbs count calibration)

    @property
    def is_ad(self) -> bool:
        # Dual-purpose SDKs (e.g. Umeng "Analytics, Advertisement") count.
        return LIB_ADVERTISEMENT in self.category

    @property
    def is_aggressive(self) -> bool:
        return self.grayware_family is not None


@dataclass(frozen=True)
class LibraryVersionCode:
    """Generated code for one library version."""

    library: Library
    version_index: int
    features: Dict[int, int]
    blocks: Tuple[int, ...]

    def as_code_package(self) -> CodePackage:
        # Memoized on the frozen instance: every APK embedding this
        # library version packages the identical code.
        try:
            return self._code_package
        except AttributeError:
            pkg = CodePackage(
                name=self.library.package,
                features=dict(self.features),
                blocks=self.blocks,
            )
            object.__setattr__(self, "_code_package", pkg)
            return pkg


def _lib(package, vendor, category, gp, cn, versions=5, perms=(), grayware=None):
    return Library(
        package=package, vendor=vendor, category=category,
        gp_usage=gp, cn_usage=cn, n_versions=versions,
        permissions=tuple(perms), grayware_family=grayware,
    )


def _default_libraries() -> List[Library]:
    """The built-in catalog.

    Usage targets for the top-10 libraries come from Table 2; the long
    tail is shaped so that the expected library count per app is ~8 for
    Google-Play-oriented apps and ~12–13 for Chinese-market apps, with
    ad-library presence ~70% (GP) and ~53% (Chinese markets), matching
    Figure 5.  The paper labels 282 ad libraries out of 5,102 clusters;
    we keep the same structure with a smaller named tail (documented in
    DESIGN.md).
    """
    libs: List[Library] = [
        # ---- Table 2, Google Play side ------------------------------------
        _lib("com.google.android.gms", "Google", LIB_DEVELOPMENT, 0.661, 0.205,
             versions=8, perms=("ACCESS_NETWORK_STATE", "INTERNET")),
        _lib("com.google.ads", "Google AdMob", LIB_ADVERTISEMENT, 0.621, 0.257,
             versions=8, perms=("INTERNET", "ACCESS_NETWORK_STATE")),
        _lib("com.facebook", "Facebook", LIB_SOCIAL, 0.215, 0.107,
             versions=6, perms=("INTERNET",)),
        _lib("org.apache", "Apache", LIB_DEVELOPMENT, 0.205, 0.241, versions=6),
        _lib("com.squareup", "Square", LIB_PAYMENT, 0.138, 0.050, versions=5,
             perms=("INTERNET",)),
        _lib("com.google.gson", "Google", LIB_DEVELOPMENT, 0.129, 0.163, versions=5),
        _lib("com.android.vending", "Google", LIB_PAYMENT, 0.125, 0.030,
             versions=4, perms=("INTERNET",)),
        _lib("com.unity3d", "Unity", LIB_GAME_ENGINE, 0.118, 0.080, versions=6,
             perms=("INTERNET", "WAKE_LOCK")),
        _lib("org.fmod", "FMOD", LIB_GAME_ENGINE, 0.096, 0.050, versions=4),
        _lib("com.google.firebase", "Google", LIB_DEVELOPMENT, 0.090, 0.020,
             versions=6, perms=("INTERNET",)),
        # ---- Table 2, Chinese-market side ----------------------------------
        _lib("com.tencent.mm", "Tencent WeChat", LIB_SOCIAL, 0.010, 0.242,
             versions=6, perms=("INTERNET",)),
        _lib("com.baidu", "Baidu", LIB_MAP, 0.015, 0.237, versions=7,
             perms=("INTERNET", "ACCESS_COARSE_LOCATION", "ACCESS_FINE_LOCATION")),
        _lib("com.umeng", "Umeng", "Analytics, Advertisement", 0.020, 0.231,
             versions=7,
             perms=("INTERNET", "READ_PHONE_STATE", "ACCESS_NETWORK_STATE")),
        _lib("com.alipay", "Alipay", LIB_PAYMENT, 0.010, 0.154, versions=6,
             perms=("INTERNET",)),
        _lib("com.nostra13", "UIL", LIB_DEVELOPMENT, 0.080, 0.148, versions=4),
        # ---- other well-known global SDKs ----------------------------------
        _lib("com.crashlytics", "Crashlytics", LIB_ANALYTICS, 0.110, 0.020,
             versions=5, perms=("INTERNET",)),
        _lib("com.flurry", "Flurry", LIB_ANALYTICS, 0.090, 0.015, versions=5,
             perms=("INTERNET", "ACCESS_COARSE_LOCATION")),
        _lib("com.twitter.sdk", "Twitter", LIB_SOCIAL, 0.040, 0.005, versions=4),
        _lib("io.fabric", "Fabric", LIB_DEVELOPMENT, 0.080, 0.010, versions=4),
        _lib("com.mopub", "MoPub", LIB_ADVERTISEMENT, 0.040, 0.010, versions=5,
             perms=("INTERNET", "ACCESS_COARSE_LOCATION")),
        _lib("com.chartboost", "Chartboost", LIB_ADVERTISEMENT, 0.035, 0.010,
             versions=4, perms=("INTERNET",)),
        _lib("com.applovin", "AppLovin", LIB_ADVERTISEMENT, 0.030, 0.008,
             versions=4, perms=("INTERNET",)),
        _lib("com.inmobi", "InMobi", LIB_ADVERTISEMENT, 0.030, 0.020, versions=4,
             perms=("INTERNET", "READ_PHONE_STATE")),
        _lib("com.tapjoy", "Tapjoy", LIB_ADVERTISEMENT, 0.025, 0.008, versions=4,
             perms=("INTERNET",)),
        _lib("com.vungle", "Vungle", LIB_ADVERTISEMENT, 0.020, 0.005, versions=4),
        _lib("com.adcolony", "AdColony", LIB_ADVERTISEMENT, 0.018, 0.005, versions=4),
        _lib("com.startapp", "StartApp", LIB_ADVERTISEMENT, 0.020, 0.006,
             versions=4, perms=("INTERNET", "ACCESS_COARSE_LOCATION")),
        _lib("com.cocos2dx", "Cocos2d-x", LIB_GAME_ENGINE, 0.040, 0.110, versions=5),
        _lib("com.badlogic.gdx", "libGDX", LIB_GAME_ENGINE, 0.035, 0.015, versions=4),
        _lib("com.loopj.android", "AsyncHttp", LIB_DEVELOPMENT, 0.090, 0.090,
             versions=4, perms=("INTERNET",)),
        _lib("com.github.retrofit", "Retrofit", LIB_DEVELOPMENT, 0.110, 0.060,
             versions=5, perms=("INTERNET",)),
        _lib("org.greenrobot", "greenrobot", LIB_DEVELOPMENT, 0.080, 0.070, versions=4),
        _lib("com.jakewharton", "Butterknife", LIB_DEVELOPMENT, 0.070, 0.040,
             versions=4),
        _lib("io.realm", "Realm", LIB_DEVELOPMENT, 0.035, 0.015, versions=4),
        _lib("com.airbnb.lottie", "Lottie", LIB_DEVELOPMENT, 0.025, 0.012, versions=3),
        # ---- aggressive global ad SDKs (grayware families of Fig. 12) ------
        _lib("com.airpush", "Airpush", LIB_ADVERTISEMENT, 0.060, 0.012,
             versions=5, perms=("INTERNET", "READ_PHONE_STATE",
                                "ACCESS_COARSE_LOCATION"),
             grayware="airpush"),
        _lib("com.revmob", "RevMob", LIB_ADVERTISEMENT, 0.035, 0.006,
             versions=4, perms=("INTERNET", "READ_PHONE_STATE"),
             grayware="revmob"),
        _lib("com.pad.android", "LeadBolt", LIB_ADVERTISEMENT, 0.020, 0.012,
             versions=4, perms=("INTERNET", "READ_PHONE_STATE"),
             grayware="leadbolt"),
        # ---- Chinese SDK long tail ------------------------------------------
        _lib("com.tencent.open", "Tencent QQ", LIB_SOCIAL, 0.005, 0.168,
             versions=5, perms=("INTERNET",)),
        _lib("com.tencent.bugly", "Tencent Bugly", LIB_ANALYTICS, 0.004, 0.154,
             versions=5, perms=("INTERNET", "READ_PHONE_STATE")),
        _lib("com.sina.weibo", "Sina Weibo", LIB_SOCIAL, 0.005, 0.126,
             versions=4, perms=("INTERNET",)),
        _lib("cn.jpush", "JPush", LIB_DEVELOPMENT, 0.004, 0.168, versions=5,
             perms=("INTERNET", "READ_PHONE_STATE", "RECEIVE_BOOT_COMPLETED")),
        _lib("com.amap.api", "AMap", LIB_MAP, 0.003, 0.126, versions=5,
             perms=("ACCESS_FINE_LOCATION", "ACCESS_COARSE_LOCATION", "INTERNET")),
        _lib("com.xiaomi.push", "Mi Push", LIB_DEVELOPMENT, 0.002, 0.070,
             versions=4, perms=("INTERNET",)),
        _lib("com.huawei.hms", "Huawei HMS", LIB_DEVELOPMENT, 0.004, 0.060,
             versions=4, perms=("INTERNET",)),
        _lib("com.qq.e", "Tencent GDT Ads", LIB_ADVERTISEMENT, 0.003, 0.050,
             versions=5, perms=("INTERNET", "READ_PHONE_STATE")),
        _lib("com.baidu.mobads", "Baidu Ads", LIB_ADVERTISEMENT, 0.002, 0.045,
             versions=5, perms=("INTERNET", "READ_PHONE_STATE",
                                "ACCESS_COARSE_LOCATION")),
        _lib("com.qihoo.sdk", "Qihoo 360 SDK", LIB_DEVELOPMENT, 0.001, 0.050,
             versions=4, perms=("INTERNET",)),
        _lib("com.unionpay", "UnionPay", LIB_PAYMENT, 0.002, 0.040, versions=4,
             perms=("INTERNET",)),
        _lib("com.iflytek", "iFlytek", LIB_DEVELOPMENT, 0.001, 0.035,
             versions=4, perms=("RECORD_AUDIO", "INTERNET")),
        _lib("com.igexin", "Getui Push", LIB_DEVELOPMENT, 0.001, 0.112,
             versions=4, perms=("INTERNET", "READ_PHONE_STATE")),
        _lib("com.ta.utdid2", "Alibaba UTDID", LIB_ANALYTICS, 0.001, 0.060,
             versions=3, perms=("READ_PHONE_STATE",)),
        _lib("com.duiba", "Duiba", LIB_DEVELOPMENT, 0.001, 0.020, versions=3),
        _lib("com.pingplusplus", "Ping++", LIB_PAYMENT, 0.001, 0.018, versions=3,
             perms=("INTERNET",)),
        _lib("com.tendcloud", "TalkingData", LIB_ANALYTICS, 0.002, 0.055,
             versions=4, perms=("INTERNET", "READ_PHONE_STATE",
                                "ACCESS_COARSE_LOCATION")),
        _lib("com.meiqia", "Meiqia", LIB_DEVELOPMENT, 0.001, 0.015, versions=3),
        _lib("org.android.agoo", "Taobao Agoo", LIB_DEVELOPMENT, 0.001, 0.045,
             versions=3, perms=("INTERNET",)),
        # ---- aggressive Chinese ad SDKs (grayware families of Fig. 12) -----
        _lib("com.kuguo.ad", "Kuguo", LIB_ADVERTISEMENT, 0.002, 0.030,
             versions=5, perms=("INTERNET", "READ_PHONE_STATE", "SEND_SMS"),
             grayware="kuguo"),
        _lib("com.dowgin.sdk", "Dowgin", LIB_ADVERTISEMENT, 0.002, 0.022,
             versions=4, perms=("INTERNET", "READ_PHONE_STATE"),
             grayware="dowgin"),
        _lib("net.youmi.android", "Youmi", LIB_ADVERTISEMENT, 0.002, 0.020,
             versions=5, perms=("INTERNET", "READ_PHONE_STATE",
                                "ACCESS_COARSE_LOCATION"),
             grayware="youmi"),
        _lib("com.adwo.adsdk", "Adwo", LIB_ADVERTISEMENT, 0.001, 0.013,
             versions=4, perms=("INTERNET", "READ_PHONE_STATE"),
             grayware="adwo"),
        _lib("cn.domob.android", "Domob", LIB_ADVERTISEMENT, 0.001, 0.013,
             versions=4, perms=("INTERNET", "READ_PHONE_STATE"),
             grayware="domob"),
        _lib("cn.waps", "Waps", LIB_ADVERTISEMENT, 0.001, 0.011,
             versions=4, perms=("INTERNET", "READ_PHONE_STATE"),
             grayware="waps"),
        _lib("com.commplat.pay", "Commplat", LIB_ADVERTISEMENT, 0.001, 0.009,
             versions=3, perms=("SEND_SMS", "READ_PHONE_STATE"),
             grayware="commplat"),
        _lib("com.adend.sdk", "AdEnd", LIB_ADVERTISEMENT, 0.001, 0.008,
             versions=3, perms=("INTERNET", "READ_PHONE_STATE"),
             grayware="adend"),
        _lib("com.secapk.wrapper", "SecApk", LIB_ADVERTISEMENT, 0.001, 0.010,
             versions=3, perms=("INTERNET", "READ_PHONE_STATE"),
             grayware="secapk"),
        _lib("com.gappusin.sdk", "Gappusin", LIB_ADVERTISEMENT, 0.001, 0.009,
             versions=3, perms=("INTERNET",),
             grayware="gappusin"),
    ]
    libs.extend(_tail_libraries())
    return libs


# Names used to synthesize the long tail of utility SDKs; combined with a
# numeric index they yield stable, unique package prefixes.
_TAIL_WORDS = (
    "swiftnet", "volleyx", "okio", "eventhub", "imagecache", "jsonkit",
    "pushcore", "netkit", "dbflow", "chartview", "pulltorefresh",
    "viewpager", "slidemenu", "qrcode", "downloadmgr", "logkit",
    "cryptoutil", "httpdns", "socketio", "webcache", "emojilib",
    "audiokit", "videocache", "gifview", "lockpattern", "calendarview",
    "wheelpicker", "tagflow", "bannerview", "badgeview", "floatwin",
    "keyboardfix", "statusbar", "permissionhelper", "filepicker",
    "richeditor", "markdownview", "zipcore", "patchfix", "hotswap",
    "netprobe", "imagezoom", "jsonpath", "cachewarm", "uikitx",
)

_TAIL_COUNT = 90


def _tail_libraries() -> List[Library]:
    """The long tail of generic utility SDKs.

    The paper's rebuilt feature set contains 5,102 libraries; beyond the
    named leaders, the bulk are small development/analytics helpers.
    Their usage rates lift the expected library count per app to ~8 for
    Google-Play-facing apps and ~12.5 for Chinese-market apps (Figure 5a)
    while each stays below the Table 2 top-10 usage floor, so the named
    leaders keep their ranks.  Tail libraries are marked ``tail=True``;
    the generator scales only their adoption when a market's average
    library count calls for it (e.g. the 360 market's 20 TPLs per app).
    """
    tail: List[Library] = []
    for i in range(_TAIL_COUNT):
        word = _TAIL_WORDS[i % len(_TAIL_WORDS)]
        suffix = "" if i < len(_TAIL_WORDS) else str(i // len(_TAIL_WORDS) + 1)
        category = LIB_ANALYTICS if i % 5 == 0 else LIB_DEVELOPMENT
        gp = 0.030 + 0.035 * ((i * 7) % 10) / 10.0
        cn = 0.060 + 0.035 * ((i * 3) % 10) / 10.0
        tail.append(
            Library(
                package=f"com.{word}{suffix}.sdk",
                vendor=word.capitalize(),
                category=category,
                gp_usage=round(gp, 4),
                cn_usage=round(cn, 4),
                n_versions=3 + (i % 4),
                permissions=("INTERNET",) if i % 3 == 0 else (),
                tail=True,
            )
        )
    return tail


class LibraryCatalog:
    """Indexed catalog of libraries with generated per-version code."""

    def __init__(self, libraries: List[Library]):
        self._libraries = list(libraries)
        self._by_package = {lib.package: lib for lib in self._libraries}
        if len(self._by_package) != len(self._libraries):
            raise ValueError("duplicate library package in catalog")
        self._version_cache: Dict[Tuple[str, int], LibraryVersionCode] = {}

    def __len__(self) -> int:
        return len(self._libraries)

    def __iter__(self):
        return iter(self._libraries)

    def get(self, package: str) -> Library:
        try:
            return self._by_package[package]
        except KeyError:
            raise KeyError(f"unknown library {package!r}") from None

    @property
    def ad_libraries(self) -> List[Library]:
        return [lib for lib in self._libraries if lib.is_ad]

    @property
    def aggressive_libraries(self) -> List[Library]:
        return [lib for lib in self._libraries if lib.is_aggressive]

    def usage(self, lib: Library, region: str) -> float:
        """Adoption target for ``region`` in ("global", "china")."""
        return lib.gp_usage if region == "global" else lib.cn_usage

    def expected_count(self, region: str, tier: Optional[str] = None) -> float:
        """Expected libraries per app under unit bias.

        ``tier`` restricts the sum to "named" or "tail" libraries.
        """
        libs = self._libraries
        if tier == "named":
            libs = [l for l in libs if not l.tail]
        elif tier == "tail":
            libs = [l for l in libs if l.tail]
        elif tier is not None:
            raise ValueError(f"unknown tier {tier!r}")
        return sum(self.usage(lib, region) for lib in libs)

    def version_code(self, package: str, version_index: int) -> LibraryVersionCode:
        """Generate (and cache) code for one library version.

        Feature multisets evolve slowly across versions (~80% overlap),
        which is what makes per-version clusters related yet distinct —
        the structure LibRadar's clustering exploits.
        """
        lib = self.get(package)
        if not 0 <= version_index < lib.n_versions:
            raise ValueError(
                f"{package} has versions 0..{lib.n_versions - 1}, "
                f"got {version_index}"
            )
        key = (package, version_index)
        if key in self._version_cache:
            return self._version_cache[key]

        from repro.android.permissions import platform_spec

        spec = platform_spec()
        rng = np.random.default_rng(stable_hash64("libcode", package) % 2**63)
        api_lo, api_hi = API_FEATURE_RANGE
        unguarded_hi = api_lo + (api_hi - api_lo) // 2
        # Base features shared by all versions of this library.
        base_size = int(rng.integers(18, 30))
        base_ids = rng.choice(
            np.arange(api_lo, unguarded_hi), size=base_size, replace=False
        )
        features: Dict[int, int] = {
            int(fid): int(rng.integers(1, 6)) for fid in base_ids
        }
        for perm in lib.permissions:
            features[spec.sample_feature(perm, rng)] = int(rng.integers(1, 4))
        blocks = [int(stable_hash64("libblock", package, i) & 0xFFFFFFFF)
                  for i in range(12)]

        # Per-version drift: each version adds/replaces a few features.
        # Permission-guarded calls are never dropped — the library keeps
        # exercising the permissions it declares, so version drift cannot
        # manufacture artificial over-privilege.
        guarded = {fid for fid in features if fid in spec.feature_permission}
        for v in range(version_index + 1):
            vrng = np.random.default_rng(
                stable_hash64("libver", package, v) % 2**63
            )
            n_changes = int(vrng.integers(2, 6))
            for _ in range(n_changes):
                fid = int(vrng.integers(api_lo, unguarded_hi))
                features[fid] = int(vrng.integers(1, 4))
            droppable = sorted(set(features) - guarded)
            if len(features) > base_size + 8 and droppable:
                features.pop(droppable[int(vrng.integers(0, len(droppable)))], None)
            blocks.append(int(stable_hash64("libblock", package, "v", v) & 0xFFFFFFFF))

        code = LibraryVersionCode(
            library=lib,
            version_index=version_index,
            features=features,
            blocks=tuple(blocks),
        )
        self._version_cache[key] = code
        return code


_DEFAULT: Optional[LibraryCatalog] = None


def default_catalog() -> LibraryCatalog:
    """The built-in catalog singleton."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = LibraryCatalog(_default_libraries())
    return _DEFAULT
