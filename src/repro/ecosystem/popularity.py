"""Popularity, downloads, and rating models.

Downloads follow the power-law shape of Section 4.2: per market, an
app's reported installs are drawn from that market's Figure 2 bin
distribution by inverse-CDF mapping of the app's (noisy) global
popularity percentile — so an app popular worldwide lands in the top
bins of every store it appears in, while the bin *mix* per store matches
the paper's measured row exactly in expectation.

Ratings follow the Figure 6 patterns: unpopular listings are typically
unrated (reported as 0 in the dataset), rated listings skew high with a
market-specific bias, and PC Online assigns a default rating of 3 to
unrated apps (the artifact the paper discovered by uploading test apps).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.markets.profiles import DOWNLOAD_BIN_EDGES, MarketProfile

__all__ = [
    "sample_listing_downloads",
    "sample_listing_rating",
    "downloads_bin_index",
    "popularity_from_rank",
]

#: Upper bound used when sampling within the open-ended ">1M" bin.
_TOP_BIN_CAP = 5_000_000_000.0

#: Noise added to the global percentile before the per-market inverse-CDF
#: mapping; keeps per-market bins correlated with global popularity
#: without being identical across stores.
_PERCENTILE_NOISE = 0.06


def popularity_from_rank(rank: int, total: int) -> float:
    """Percentile in [0, 1) for an app ranked ``rank`` of ``total`` (0 = least popular)."""
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} out of range for {total}")
    return (rank + 0.5) / total


def downloads_bin_index(downloads: float) -> int:
    """Figure 2 bin index (0..6) for a download count."""
    if downloads < 0:
        raise ValueError("downloads must be non-negative")
    edges = DOWNLOAD_BIN_EDGES
    for i in range(len(edges) - 1, 0, -1):
        if downloads >= edges[i]:
            return i
    return 0


def sample_listing_downloads(
    profile: MarketProfile,
    popularity: float,
    rng: np.random.Generator,
) -> Optional[int]:
    """Sample the install count one market reports for one app.

    Returns ``None`` for markets that do not report installs (Xiaomi,
    App China).  Otherwise: perturb the global percentile, invert the
    market's bin CDF, then draw log-uniformly within the bin.
    """
    if not profile.reports_downloads:
        return None
    shares = np.asarray(profile.download_bin_shares, dtype=float)
    total = shares.sum()
    if total <= 0:
        return None
    cdf = np.cumsum(shares / total)

    p = popularity + rng.normal(0.0, _PERCENTILE_NOISE)
    p = min(max(p, 0.0), 1.0 - 1e-9)
    bin_idx = int(np.searchsorted(cdf, p, side="right"))
    bin_idx = min(bin_idx, len(shares) - 1)

    lo = DOWNLOAD_BIN_EDGES[bin_idx]
    hi = (
        DOWNLOAD_BIN_EDGES[bin_idx + 1]
        if bin_idx + 1 < len(DOWNLOAD_BIN_EDGES)
        else _TOP_BIN_CAP
    )
    if lo == 0:
        return int(rng.integers(0, max(int(hi), 1)))
    log_lo, log_hi = np.log10(lo), np.log10(hi)
    return int(10 ** rng.uniform(log_lo, log_hi))


def sample_listing_rating(
    profile: MarketProfile,
    quality: float,
    downloads: Optional[int],
    rng: np.random.Generator,
) -> Optional[float]:
    """Sample the rating one market reports for one app.

    ``None`` means the listing is unrated (the dataset records those as
    0; PC Online instead reports its default of 3.0, via
    ``profile.default_rating``).  Unrated probability rises sharply for
    low-download listings: the paper observes ~90% of unrated apps have
    fewer than 1,000 downloads.
    """
    base = profile.unrated_share
    if downloads is None:
        unrated_p = base
    elif downloads < 1_000:
        unrated_p = min(1.0, base * 1.45)
    elif downloads < 100_000:
        unrated_p = base * 0.45
    else:
        unrated_p = base * 0.05
    if rng.random() < unrated_p:
        return profile.default_rating

    # Rated: a Beta draw whose mean blends app quality with the market's
    # high-rating bias, mapped onto [1, 5].
    mean = 0.35 + 0.65 * (0.55 * quality + 0.45 * profile.rating_high_bias)
    concentration = 8.0
    a = mean * concentration
    b = (1.0 - mean) * concentration
    score = 1.0 + 4.0 * rng.beta(a, b)
    return round(min(5.0, max(1.0, score)), 1)
