"""Sharded world generation: index-keyed shards over a worker pool.

World generation splits into three phases so the expensive middle can
run on a process pool without perturbing a single byte of output:

1. **Plan** (serial, cheap): quota accounting, popularity draws, market
   picks, and unique-package claims — everything whose draws depend on
   shared mutable state (remaining quotas, the package registry).
2. **Build** (parallel): body sampling — version history, libraries,
   permissions, own code, display name — the ~75-80% of generation time
   that is embarrassingly parallel once planned.
3. **Submit** (serial, in index order): vetting, placement, and world
   registration, which consume the per-market vetting streams and the
   append-only world lists.

The determinism contract matches the crawl and analysis engines: the
merged :class:`~repro.ecosystem.world.World` is bit-identical at any
worker count.  The mechanism is *index-keyed RNG substreams*: the body
for plan ``i`` always draws from ``rngs.stream("app-body", i)`` and the
finalize pass for listing ``(market, app)`` always draws from
``rngs.stream("finalize-listing", market, app)`` — keyed by the stable
identity of the work item, never by which shard or worker executed it.
Re-chunking the work list therefore cannot move a single draw.

The pool itself is a plain ``ProcessPoolExecutor`` (generation is
CPU-bound pure Python + numpy, so threads cannot help).  Workers are
primed once via an initializer with the factory seed, library catalog,
and shared name pool; every chunk call ships only the small plan/job
records.  Any pool failure (sandboxed environments without working
multiprocessing, pickling regressions) degrades to an in-process serial
run of the same chunk functions — same streams, same output, just slower.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.android.permissions import (
    DANGEROUS_PERMISSIONS,
    NORMAL_PERMISSIONS,
    platform_spec,
)
from repro.ecosystem.apps import AppVersion, OwnCode, generate_own_code
from repro.ecosystem.calibration import (
    OVERPRIV_PERMISSION_WEIGHTS,
    sample_min_sdk,
    sample_overprivilege_count,
    sample_release_day,
    sample_version_count,
)
from repro.ecosystem.libraries import LibraryCatalog
from repro.ecosystem.popularity import sample_listing_rating
from repro.markets.categories import CANONICAL_WEIGHTS, VENDOR_WEIGHTS, taxonomy_for
from repro.markets.profiles import MarketProfile, get_profile
from repro.util import text
from repro.util.rng import RngFactory

__all__ = [
    "AppPlan",
    "AppBody",
    "FinalizeJob",
    "BodySampler",
    "ShardPool",
    "resolve_gen_workers",
    "downloads_for_percentile",
]


def resolve_gen_workers(workers: int = 0) -> int:
    """Resolve a generation worker count (``0`` = one per CPU, capped).

    The cap reflects Amdahl: planning, vetting, and world registration
    stay serial, so beyond ~8 workers extra processes only add fork and
    pickling overhead.
    """
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers:
        return workers
    return max(1, min(8, os.cpu_count() or 1))


@dataclass(frozen=True)
class AppPlan:
    """The serial-phase decision record for one base-population app.

    Everything here was drawn from shared mutable state (market quotas,
    the package registry); everything *not* here is a pure function of
    the plan plus the app's index-keyed RNG substream.
    """

    index: int
    scope: str  # "global" | "china" | "mixed"
    popularity: float
    markets: Tuple[str, ...]
    package: str


@dataclass(frozen=True)
class AppBody:
    """The parallel-phase product: one app's sampled content."""

    display_name: str
    category: str
    quality: float
    min_sdk: int
    target_sdk: int
    versions: Tuple[AppVersion, ...]
    own_code: OwnCode
    libraries: Tuple[Tuple[str, int], ...]
    permissions_requested: Tuple[str, ...]


@dataclass(frozen=True)
class FinalizeJob:
    """One listing's finalize work item (rank already assigned)."""

    market_id: str
    app_id: int
    percentile: float
    quality: float
    category: str
    is_fake: bool


class BodySampler:
    """Samples app bodies from an explicit RNG stream.

    Pure with respect to its inputs: holds only immutable shared context
    (library catalog, platform permission spec, display-name pool), so
    the same instance semantics hold in-process and inside pool workers.
    """

    def __init__(self, catalog: LibraryCatalog, name_pool: Sequence[str]):
        self._catalog = catalog
        self._name_pool = list(name_pool)
        self._spec = platform_spec()

    # -- individual draws ----------------------------------------------

    def sample_display_name(self, rng: np.random.Generator) -> str:
        """Display name; drawn from a shared pool ~22% of the time.

        Shared-pool draws create the same-name clusters of Figure 8(b)
        (22% of apps share a name with at least one other app).
        """
        roll = rng.random()
        if roll < 0.02:
            return text.COMMON_APP_NAMES[
                int(rng.integers(0, len(text.COMMON_APP_NAMES)))
            ]
        if roll < 0.20 and self._name_pool:
            idx = int(len(self._name_pool) * rng.power(2.5))
            return self._name_pool[min(idx, len(self._name_pool) - 1)]
        return text.app_display_name(rng, common_fraction=0.0)

    def sample_category(
        self, rng: np.random.Generator, markets: Sequence[str]
    ) -> str:
        vendorish = sum(1 for m in markets if get_profile(m).kind == "vendor")
        weights = VENDOR_WEIGHTS if vendorish > len(markets) / 2 else CANONICAL_WEIGHTS
        names = [c for c, w in weights.items() if w > 0]
        probs = np.asarray([weights[c] for c in names])
        return str(rng.choice(names, p=probs / probs.sum()))

    def sample_versions(
        self, rng: np.random.Generator, popularity: float, scope: str
    ) -> Tuple[AppVersion, ...]:
        n = sample_version_count(popularity, rng)
        last_day = sample_release_day(scope, rng)
        days = [last_day]
        for _ in range(n - 1):
            days.append(days[-1] - int(rng.integers(20, 260)))
        days = sorted(max(d, 400) for d in days)
        versions = []
        for i, day in enumerate(days):
            code = (i + 1) * int(rng.integers(1, 4))
            if i > 0:
                code = max(code, versions[-1].version_code + 1)
            versions.append(
                AppVersion(
                    version_code=code,
                    version_name=f"{1 + i // 4}.{i % 4}.{int(rng.integers(0, 10))}",
                    release_day=day,
                )
            )
        return tuple(versions)

    def sample_permissions(
        self,
        rng: np.random.Generator,
        scope: str,
        lib_perms: Set[str],
        own: Optional[Set[str]] = None,
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Return (own_used, requested) permission tuples.

        ``own`` is given for repackaged apps, whose first-party code (and
        thus its permission footprint) is inherited from the victim — a
        repackager ships the original manifest plus its own additions.
        """
        if own is None:
            n_dangerous = int(rng.integers(1, 5))
            n_normal = int(rng.integers(2, 5))
            own = set(
                rng.choice(DANGEROUS_PERMISSIONS, size=n_dangerous, replace=False)
            )
            own |= set(rng.choice(NORMAL_PERMISSIONS, size=n_normal, replace=False))
        used = own | lib_perms

        # Developers habitually paste permission boilerplate; each line
        # that happens to cover an API the app really calls is harmless,
        # the rest become the measured over-privilege.  Draws that hit an
        # already-used permission are NOT redrawn — that would merely
        # funnel probability mass into the rarer permissions and invert
        # the paper's READ_PHONE_STATE-first ranking.
        extra_count = sample_overprivilege_count(scope, rng)
        extras: Set[str] = set()
        perms = list(OVERPRIV_PERMISSION_WEIGHTS)
        probs = np.asarray([OVERPRIV_PERMISSION_WEIGHTS[p] for p in perms])
        probs = probs / probs.sum()
        for _ in range(extra_count):
            p = str(rng.choice(perms, p=probs))
            if p not in used:
                extras.add(p)
        requested = tuple(sorted(str(p) for p in used | extras))
        return tuple(sorted(str(p) for p in own)), requested

    def sample_libraries(
        self, rng: np.random.Generator, scope: str, markets: Sequence[str]
    ) -> Tuple[Tuple[str, int], ...]:
        profiles = [get_profile(m) for m in markets]
        presence = float(np.mean([p.tpl_presence for p in profiles]))
        if rng.random() >= presence:
            return ()
        target_count = float(np.mean([p.tpl_avg_count for p in profiles]))
        region = "global" if scope == "global" else "china"

        def expected(tier: str) -> float:
            if scope == "mixed":
                return 0.5 * (
                    self._catalog.expected_count("global", tier)
                    + self._catalog.expected_count("china", tier)
                )
            return self._catalog.expected_count(region, tier)

        # Named libraries are adopted at their Table 2 usage rates; the
        # anonymous long tail absorbs per-market library-count targets
        # (Figure 5a) so measured top-10 usages stay faithful.
        tail_bias = max(
            0.0, (target_count - expected("named")) / max(expected("tail"), 1e-9)
        )

        chosen: List[Tuple[str, int]] = []
        for lib in self._catalog:
            if scope == "mixed":
                usage = 0.5 * (lib.gp_usage + lib.cn_usage)
            else:
                usage = self._catalog.usage(lib, region)
            # Aggressive ad SDK adoption is never amplified: markets whose
            # apps embed more libraries overall do not proportionally
            # attract more grayware (the Table 4 ">=1" top-up handles
            # per-market grayware calibration).
            p = min(0.97, usage * tail_bias if lib.tail else usage)
            if rng.random() < p:
                version = int(rng.integers(0, lib.n_versions))
                chosen.append((lib.package, version))
        return tuple(chosen)

    # -- the full body --------------------------------------------------

    def sample_body(
        self,
        rng: np.random.Generator,
        *,
        scope: str,
        popularity: float,
        markets: Sequence[str],
        package: str,
        display_name: Optional[str] = None,
        own_code: Optional[OwnCode] = None,
        libraries: Optional[Tuple[Tuple[str, int], ...]] = None,
        versions: Optional[Tuple[AppVersion, ...]] = None,
    ) -> AppBody:
        """Sample everything about an app that is not a shared-state draw.

        The draw order is fixed; callers that pre-supply a component
        (clones inherit versions, code, and libraries from their victim)
        simply skip that component's draws.
        """
        if versions is None:
            versions = self.sample_versions(rng, popularity, scope)
        if libraries is None:
            libraries = self.sample_libraries(rng, scope, markets)
        lib_perms: Set[str] = set()
        for lib_package, _ in libraries:
            lib_perms |= set(self._catalog.get(lib_package).permissions)
        if own_code is None:
            own_perms, requested = self.sample_permissions(rng, scope, lib_perms)
            own_code = generate_own_code(rng, self._spec, package, own_perms)
        else:
            # Repackaged code: the permission footprint comes from the
            # inherited first-party code, not a fresh draw.
            inherited = set(self._spec.permissions_for(own_code.features))
            _, requested = self.sample_permissions(
                rng, scope, lib_perms, own=inherited
            )
        quality = float(
            np.clip(0.30 + 0.45 * popularity + rng.normal(0, 0.15), 0.05, 1.0)
        )
        if display_name is None:
            display_name = self.sample_display_name(rng)
        category = self.sample_category(rng, markets)
        min_sdk = sample_min_sdk(versions[0].release_day, rng, scope)
        target_sdk = min_sdk + int(rng.integers(0, 9))
        return AppBody(
            display_name=display_name,
            category=category,
            quality=quality,
            min_sdk=min_sdk,
            target_sdk=target_sdk,
            versions=versions,
            own_code=own_code,
            libraries=libraries,
            permissions_requested=requested,
        )


def downloads_for_percentile(
    rng: np.random.Generator, profile: MarketProfile, percentile: float
) -> Optional[int]:
    """Map a within-market rank percentile onto the market's Figure 2
    bin row, then draw within the bin.

    The within-bin position blends the app's rank position with noise,
    so the market's very top apps reliably land near the top of the
    open-ended ">1M" bin — Section 4.2's power law (top 0.1% of apps
    owning >50% of installs) depends on the head of the distribution,
    not only on the bin mix.
    """
    if not profile.reports_downloads:
        return None
    shares = np.asarray(profile.download_bin_shares, dtype=float)
    total = shares.sum()
    if total <= 0:
        return None
    cdf = np.cumsum(shares / total)
    bin_idx = int(np.searchsorted(cdf, percentile, side="right"))
    bin_idx = min(bin_idx, len(shares) - 1)
    from repro.markets.profiles import DOWNLOAD_BIN_EDGES

    lo = DOWNLOAD_BIN_EDGES[bin_idx]
    hi = (
        DOWNLOAD_BIN_EDGES[bin_idx + 1]
        if bin_idx + 1 < len(DOWNLOAD_BIN_EDGES)
        else 5_000_000_000
    )
    if lo == 0:
        return int(rng.integers(0, 10))
    bin_lo_p = cdf[bin_idx - 1] if bin_idx > 0 else 0.0
    bin_hi_p = cdf[bin_idx] if bin_idx < len(cdf) else 1.0
    span = max(bin_hi_p - bin_lo_p, 1e-9)
    within = min(1.0, max(0.0, (percentile - bin_lo_p) / span))
    position = 0.7 * within + 0.3 * rng.random()
    exponent = np.log10(lo) + (np.log10(hi) - np.log10(lo)) * position
    return int(10 ** exponent)


# ----------------------------------------------------------------------
# worker-side chunk execution
# ----------------------------------------------------------------------


class _ShardContext:
    """What a shard needs to execute work items: streams + sampler."""

    def __init__(self, factory_seed: int, catalog: LibraryCatalog,
                 name_pool: Sequence[str]):
        self.rngs = RngFactory(factory_seed)
        self.sampler = BodySampler(catalog, name_pool)


_WORKER_CONTEXT: Optional[_ShardContext] = None


def _init_worker(factory_seed: int, catalog: LibraryCatalog,
                 name_pool: Sequence[str]) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = _ShardContext(factory_seed, catalog, name_pool)


def _build_chunk(
    plans: Sequence[AppPlan], ctx: Optional[_ShardContext] = None
) -> List[AppBody]:
    """Sample bodies for one chunk of plans.

    Each body draws from the stream keyed by its plan *index* — the
    chunk boundaries and executing worker are invisible to the output.
    """
    ctx = ctx or _WORKER_CONTEXT
    out = []
    for plan in plans:
        rng = ctx.rngs.stream("app-body", plan.index)
        out.append(
            ctx.sampler.sample_body(
                rng,
                scope=plan.scope,
                popularity=plan.popularity,
                markets=plan.markets,
                package=plan.package,
            )
        )
    return out


def _finalize_chunk(
    jobs: Sequence[FinalizeJob], ctx: Optional[_ShardContext] = None
) -> List[Tuple[str, int, Optional[int], Optional[float], str]]:
    """Finalize one chunk of listings: downloads, rating, category label.

    Streams are keyed by the listing's stable ``(market, app)`` identity.
    """
    ctx = ctx or _WORKER_CONTEXT
    out = []
    for job in jobs:
        rng = ctx.rngs.stream("finalize-listing", job.market_id, job.app_id)
        profile = get_profile(job.market_id)
        taxonomy = taxonomy_for(job.market_id)
        downloads = downloads_for_percentile(rng, profile, job.percentile)
        if job.is_fake and downloads is not None:
            downloads = min(downloads, int(rng.integers(40, 1000)))
        rating = sample_listing_rating(profile, job.quality, downloads, rng)
        if (
            profile.category_null_share > 0
            and rng.random() < profile.category_null_share
        ):
            label = taxonomy.null_label(rng)
        else:
            label = taxonomy.market_label(job.category)
        out.append((job.market_id, job.app_id, downloads, rating, label))
    return out


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------


class ShardPool:
    """A process pool for generation shards, with a serial fallback.

    ``map_chunks`` partitions a work list into contiguous chunks and
    applies a chunk function, returning results in work-list order.
    Because every work item derives its RNG stream from its own stable
    key, the chunking (and the pool itself) cannot affect the results —
    which is also why the serial fallback is safe to take mid-run.
    """

    def __init__(
        self,
        workers: int,
        factory_seed: int,
        catalog: LibraryCatalog,
        name_pool: Sequence[str],
    ):
        self.workers = max(1, workers)
        self._initargs = (factory_seed, catalog, list(name_pool))
        self._local: Optional[_ShardContext] = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False

    # -- internals -------------------------------------------------------

    def _local_context(self) -> _ShardContext:
        if self._local is None:
            self._local = _ShardContext(*self._initargs)
        return self._local

    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        if self._executor is None and not self._broken:
            try:
                try:
                    mp_context = multiprocessing.get_context("fork")
                except ValueError:  # platforms without fork
                    mp_context = multiprocessing.get_context()
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=mp_context,
                    initializer=_init_worker,
                    initargs=self._initargs,
                )
            except (OSError, ValueError, RuntimeError):
                self._broken = True
        return self._executor

    @staticmethod
    def _chunked(items: Sequence, n_chunks: int) -> List[Sequence]:
        size = max(1, math.ceil(len(items) / n_chunks))
        return [items[i : i + size] for i in range(0, len(items), size)]

    # -- public API ------------------------------------------------------

    def map_chunks(self, chunk_fn, items: Sequence) -> List:
        """Apply ``chunk_fn`` over ``items`` in contiguous chunks."""
        items = list(items)
        if not items:
            return []
        if self.workers <= 1:
            return list(chunk_fn(items, self._local_context()))
        # Over-chunk (4x workers) so a slow chunk cannot straggle the pool.
        chunks = self._chunked(items, self.workers * 4)
        executor = self._ensure_executor()
        if executor is not None:
            try:
                futures = [executor.submit(chunk_fn, chunk) for chunk in chunks]
                out: List = []
                for future in futures:
                    out.extend(future.result())
                return out
            except (BrokenProcessPool, OSError, RuntimeError):
                # Sandboxes without working multiprocessing land here;
                # index-keyed streams make the serial re-run identical.
                self._broken = True
                self.shutdown()
        ctx = self._local_context()
        out = []
        for chunk in chunks:
            out.extend(chunk_fn(chunk, ctx))
        return out

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
