"""Malware families, payloads, and grayware.

The simulated threat landscape mirrors Figure 12's family mix:

* **Adware families** (kuguo, airpush, revmob, dowgin, ...) — SMS/IMEI
  harvesting ad payloads detected by a fifth or so of engines each, the
  bulk of "AV-rank >= 10" malware in Chinese markets.
* **Trojan families** (smsreg, gappusin, smspay, ...) — broader engine
  coverage.
* **High-profile families** (ramnit, mofin) and the **EICAR** test file —
  detected by most engines, populating the paper's Table 5 top-10.

A *threat profile* attached to an app blueprint injects a payload code
package into every APK built for it.  Payload features are a pure
function of (family, variant), so anti-virus vendors — who possess the
samples — can build signature databases without touching any other
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apk.models import API_FEATURE_RANGE, CodePackage
from repro.util.rng import stable_hash64

__all__ = [
    "MalwareFamily",
    "MALWARE_FAMILIES",
    "CHINESE_FAMILY_WEIGHTS",
    "GP_FAMILY_WEIGHTS",
    "ThreatProfile",
    "ThreatFeed",
    "payload_code",
    "ClonerPersona",
    "RepackagingModel",
    "GRAYWARE_BREADTH",
    "JIAGU_HEURISTIC_BREADTH",
]

#: Fraction of engines whose signature DB covers a grayware (aggressive
#: ad SDK) entry.  Low: only weak/aggressive engines flag these, so they
#: produce AV-rank 1–9 ("flagged by at least one engine") but rarely >=10.
GRAYWARE_BREADTH = 0.055

#: Fraction of engines heuristically flagging 360-Jiagubao-packed apps.
#: Tuned so a packed, otherwise-clean app is flagged by >=1 engine ~15%
#: of the time (1 - (1-b)^60), keeping 360 Market's Table 4 ">=1" rate
#: near the paper's 41.4% once grayware and malware are added.
JIAGU_HEURISTIC_BREADTH = 0.0027


@dataclass(frozen=True)
class MalwareFamily:
    """One malware family and its detection characteristics."""

    name: str
    kind: str  # "adware" | "trojan" | "high_profile" | "test"
    breadth: float  # mean fraction of engines with signatures for it
    payload_package: str

    def __post_init__(self) -> None:
        if not 0 < self.breadth <= 1:
            raise ValueError(f"{self.name}: breadth must be in (0,1]")


def _fam(name: str, kind: str, breadth: float, pkg: Optional[str] = None):
    return MalwareFamily(name, kind, breadth, pkg or f"com.{name}.core")


MALWARE_FAMILIES: Dict[str, MalwareFamily] = {
    f.name: f
    for f in (
        # Adware-class families (Figure 12's Chinese-market leaders).
        _fam("kuguo", "adware", 0.25, "com.kuguo.push"),
        _fam("airpush", "adware", 0.26, "com.airpush.inject"),
        _fam("revmob", "adware", 0.25, "com.revmob.ads.inject"),
        _fam("dowgin", "adware", 0.25),
        _fam("youmi", "adware", 0.24, "net.youmi.android.inject"),
        _fam("leadbolt", "adware", 0.24, "com.pad.android.inject"),
        _fam("adwo", "adware", 0.23, "com.adwo.adsdk.inject"),
        _fam("domob", "adware", 0.23, "cn.domob.android.inject"),
        _fam("commplat", "adware", 0.22),
        _fam("adend", "adware", 0.22),
        _fam("kyview", "adware", 0.22),
        _fam("feiwo", "adware", 0.22),
        _fam("utchi", "adware", 0.22),
        # Trojan-class families.
        _fam("smsreg", "trojan", 0.36),
        _fam("gappusin", "trojan", 0.33),
        _fam("secapk", "trojan", 0.31),
        _fam("smspay", "trojan", 0.36),
        _fam("plankton", "trojan", 0.30),
        _fam("basebridge", "trojan", 0.33),
        _fam("droidkungfu", "trojan", 0.35),
        _fam("ginmaster", "trojan", 0.31),
        # High-profile families and the EICAR test signature (Table 5).
        _fam("ramnit", "high_profile", 0.74),
        _fam("mofin", "high_profile", 0.72),
        _fam("eicar", "test", 0.76, "com.eicar.test"),
    )
}

#: Family sampling weights for malware injected into Chinese-market apps
#: (Figure 12, Chinese markets series: kuguo leads at 12.69%).
CHINESE_FAMILY_WEIGHTS: Dict[str, float] = {
    "kuguo": 0.1269, "smsreg": 0.095, "dowgin": 0.085, "gappusin": 0.072,
    "secapk": 0.062, "youmi": 0.058, "airpush": 0.050, "leadbolt": 0.047,
    "adwo": 0.043, "domob": 0.042, "commplat": 0.038, "adend": 0.033,
    "smspay": 0.032, "revmob": 0.020, "kyview": 0.035, "feiwo": 0.030,
    "utchi": 0.028, "plankton": 0.040, "basebridge": 0.035,
    "droidkungfu": 0.040, "ginmaster": 0.035, "ramnit": 0.012,
    "mofin": 0.002,
}

#: Family weights for Google Play malware (airpush 29.04%, revmob 15.09%).
GP_FAMILY_WEIGHTS: Dict[str, float] = {
    "airpush": 0.2904, "revmob": 0.1509, "leadbolt": 0.075, "youmi": 0.032,
    "dowgin": 0.022, "kuguo": 0.006, "smsreg": 0.045, "plankton": 0.060,
    "ginmaster": 0.045, "droidkungfu": 0.040, "basebridge": 0.035,
    "gappusin": 0.030, "secapk": 0.025, "smspay": 0.020, "kyview": 0.015,
    "feiwo": 0.012, "utchi": 0.010, "adwo": 0.015, "domob": 0.015,
    "commplat": 0.010, "adend": 0.008, "ramnit": 0.004, "mofin": 0.001,
}


@dataclass(frozen=True)
class ClonerPersona:
    """One repackaging operation's behavior profile.

    Real repackaging is organized: a handful of operations push clones
    into the markets they know how to game, re-sign batches of repacks
    under a shared key, and repackage whatever is circulating — which
    includes *other repacks*, producing clone-of-a-clone chains.
    """

    name: str
    #: Markets this persona pushes clones into; empty = everywhere.
    home_markets: Tuple[str, ...] = ()
    #: P(the victim is an existing repack instead of a legit app) —
    #: extends a repackaging chain (A -> B -> C) when one is available.
    chain_share: float = 0.0
    #: Longest chain the persona builds (depth 1 = direct clone of a
    #: legit app, depth 2 = clone of a clone, ...).
    max_chain_depth: int = 1
    #: P(the clone is signed with the persona's shared key instead of a
    #: throwaway one) — shared-signing-key developer clusters.
    key_reuse: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.chain_share <= 1:
            raise ValueError(f"{self.name}: chain_share must be in [0, 1]")
        if not 0 <= self.key_reuse <= 1:
            raise ValueError(f"{self.name}: key_reuse must be in [0, 1]")
        if self.max_chain_depth < 1:
            raise ValueError(f"{self.name}: max_chain_depth must be >= 1")

    def operates_in(self, market_id: str) -> bool:
        return not self.home_markets or market_id in self.home_markets


@dataclass(frozen=True)
class RepackagingModel:
    """How code-based clones are produced in a generated world.

    ``family_boost`` multiplies the per-market code-clone injection
    targets: 1.0 reproduces the paper's Table 3 rates, larger values
    synthesize the adversarial near-duplicate-family corpora the clone
    detector's candidate-generation benchmarks stress.

    The ``template_*`` knobs add app-factory "studios": groups of
    boilerplate apps stamped out from a shared code-block pool.  Any
    two studio-mates share a moderate slab of code — well below the
    clone-reporting threshold, so recall is untouched — but those
    shared rare-ish blocks land in blocking prefixes, degrading
    posting-list candidate generation toward O(group²) on pairs that
    scoring then rejects.  MinHash-LSH's steep collision curve skips
    almost all of them, which is the separation the adversarial bench
    measures.
    """

    personas: Tuple[ClonerPersona, ...]
    family_boost: float = 1.0
    #: Number of app-factory studios (0 disables template spam).
    template_studios: int = 0
    #: Spam apps per legitimate base app (may exceed 1 in a flooded
    #: hostile corpus); scaled by the generator's world scale.
    template_spam_rate: float = 0.0
    #: Code blocks in each studio's shared pool.
    template_pool_blocks: int = 96
    #: Fraction of the pool each spam app samples.
    template_sample_ratio: float = 0.32

    def __post_init__(self) -> None:
        if not self.personas:
            raise ValueError("RepackagingModel needs at least one persona")
        if self.family_boost <= 0:
            raise ValueError(
                f"family_boost must be positive, got {self.family_boost}"
            )
        if self.template_studios < 0:
            raise ValueError(
                f"template_studios must be >= 0, got {self.template_studios}"
            )
        if self.template_spam_rate < 0:
            raise ValueError(
                f"template_spam_rate must be >= 0, got {self.template_spam_rate}"
            )
        if self.template_pool_blocks < 2:
            raise ValueError(
                f"template_pool_blocks must be >= 2, got {self.template_pool_blocks}"
            )
        if not 0 < self.template_sample_ratio <= 1:
            raise ValueError(
                "template_sample_ratio must be in (0, 1], "
                f"got {self.template_sample_ratio}"
            )

    PROFILES = ("default", "adversarial")

    @classmethod
    def for_profile(cls, profile: str) -> "RepackagingModel":
        if profile == "default":
            return cls.default()
        if profile == "adversarial":
            return cls.adversarial()
        raise ValueError(f"unknown repackaging profile {profile!r}")

    @classmethod
    def default(cls) -> "RepackagingModel":
        """Paper-calibrated behavior: independent one-off cloners, no
        chains, no shared keys.  A single inert persona keeps the
        generator's RNG draw sequence — and therefore the default world
        — exactly what Table 3's calibration was tuned against."""
        return cls(personas=(ClonerPersona("freelance-cloner"),))

    @classmethod
    def adversarial(cls) -> "RepackagingModel":
        """Hostile corpus shape: industrialized cloners building deep
        repackaging chains, shared-signing-key clusters, boosted
        near-duplicate families, and app-factory template spam — the
        shape that degrades prefix blocking toward O(group²)."""
        return cls(
            template_studios=2,
            template_spam_rate=1.6,
            personas=(
                ClonerPersona(
                    "clone-factory",
                    chain_share=0.65,
                    max_chain_depth=5,
                    key_reuse=0.5,
                ),
                ClonerPersona(
                    "baidu-chain-forge",
                    home_markets=("baidu", "hiapk", "anzhi", "liqu", "sougou"),
                    chain_share=0.5,
                    max_chain_depth=4,
                    key_reuse=0.35,
                ),
                ClonerPersona(
                    "tencent-repack-mill",
                    home_markets=("tencent", "pp25", "wandoujia", "appchina"),
                    chain_share=0.5,
                    max_chain_depth=4,
                    key_reuse=0.35,
                ),
            ),
            family_boost=4.0,
        )


@dataclass(frozen=True)
class ThreatProfile:
    """Ground-truth malice attached to one app blueprint."""

    family: str
    variant: int
    repackaged: bool = False  # True when this malware is a clone/repack

    @property
    def family_def(self) -> MalwareFamily:
        return MALWARE_FAMILIES[self.family]


@lru_cache(maxsize=None)
def payload_code(family: str, variant: int) -> CodePackage:
    """Generate the payload code package for a (family, variant) pair.

    Pure and deterministic: the ecosystem uses it to infect APKs, and
    anti-virus vendors use it to compute the signatures in their
    databases (they have the samples).  Payloads call permission-guarded
    APIs — SMS, phone state — which also inflates the permission
    footprint of infected apps.
    """
    fam = MALWARE_FAMILIES[family]
    rng = np.random.default_rng(stable_hash64("payload", family, variant) % 2**63)
    api_lo, api_hi = API_FEATURE_RANGE
    # Payloads are small relative to the host app's own code, as in real
    # repackaged malware — a repack stays within clone-detection range.
    size = int(rng.integers(6, 11))
    features: Dict[int, int] = {}
    for _ in range(size):
        features[int(rng.integers(api_lo, api_hi))] = int(rng.integers(1, 3))
    blocks = tuple(
        int(stable_hash64("payload-block", family, variant, i) & 0xFFFFFFFF)
        for i in range(6)
    )
    return CodePackage(name=fam.payload_package, features=features, blocks=blocks)


class ThreatFeed:
    """Registry of the threat variants actually present in a world.

    The generator records every (family, variant) it injects; tests and
    detector-quality experiments use it as ground truth.  The simulated
    VirusTotal does *not* read it — engines recognize payloads through
    :func:`payload_code` digests, mirroring vendors' sample collections.
    """

    def __init__(self) -> None:
        self._variants: Dict[Tuple[str, int], int] = {}

    def record(self, profile: ThreatProfile) -> None:
        key = (profile.family, profile.variant)
        self._variants[key] = self._variants.get(key, 0) + 1

    @property
    def variants(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self._variants))

    def count(self, family: str) -> int:
        return sum(
            n for (fam, _), n in self._variants.items() if fam == family
        )

    def __len__(self) -> int:
        return len(self._variants)
