"""Malware families, payloads, and grayware.

The simulated threat landscape mirrors Figure 12's family mix:

* **Adware families** (kuguo, airpush, revmob, dowgin, ...) — SMS/IMEI
  harvesting ad payloads detected by a fifth or so of engines each, the
  bulk of "AV-rank >= 10" malware in Chinese markets.
* **Trojan families** (smsreg, gappusin, smspay, ...) — broader engine
  coverage.
* **High-profile families** (ramnit, mofin) and the **EICAR** test file —
  detected by most engines, populating the paper's Table 5 top-10.

A *threat profile* attached to an app blueprint injects a payload code
package into every APK built for it.  Payload features are a pure
function of (family, variant), so anti-virus vendors — who possess the
samples — can build signature databases without touching any other
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apk.models import API_FEATURE_RANGE, CodePackage
from repro.util.rng import stable_hash64

__all__ = [
    "MalwareFamily",
    "MALWARE_FAMILIES",
    "CHINESE_FAMILY_WEIGHTS",
    "GP_FAMILY_WEIGHTS",
    "ThreatProfile",
    "ThreatFeed",
    "payload_code",
    "GRAYWARE_BREADTH",
    "JIAGU_HEURISTIC_BREADTH",
]

#: Fraction of engines whose signature DB covers a grayware (aggressive
#: ad SDK) entry.  Low: only weak/aggressive engines flag these, so they
#: produce AV-rank 1–9 ("flagged by at least one engine") but rarely >=10.
GRAYWARE_BREADTH = 0.055

#: Fraction of engines heuristically flagging 360-Jiagubao-packed apps.
#: Tuned so a packed, otherwise-clean app is flagged by >=1 engine ~15%
#: of the time (1 - (1-b)^60), keeping 360 Market's Table 4 ">=1" rate
#: near the paper's 41.4% once grayware and malware are added.
JIAGU_HEURISTIC_BREADTH = 0.0027


@dataclass(frozen=True)
class MalwareFamily:
    """One malware family and its detection characteristics."""

    name: str
    kind: str  # "adware" | "trojan" | "high_profile" | "test"
    breadth: float  # mean fraction of engines with signatures for it
    payload_package: str

    def __post_init__(self) -> None:
        if not 0 < self.breadth <= 1:
            raise ValueError(f"{self.name}: breadth must be in (0,1]")


def _fam(name: str, kind: str, breadth: float, pkg: Optional[str] = None):
    return MalwareFamily(name, kind, breadth, pkg or f"com.{name}.core")


MALWARE_FAMILIES: Dict[str, MalwareFamily] = {
    f.name: f
    for f in (
        # Adware-class families (Figure 12's Chinese-market leaders).
        _fam("kuguo", "adware", 0.25, "com.kuguo.push"),
        _fam("airpush", "adware", 0.26, "com.airpush.inject"),
        _fam("revmob", "adware", 0.25, "com.revmob.ads.inject"),
        _fam("dowgin", "adware", 0.25),
        _fam("youmi", "adware", 0.24, "net.youmi.android.inject"),
        _fam("leadbolt", "adware", 0.24, "com.pad.android.inject"),
        _fam("adwo", "adware", 0.23, "com.adwo.adsdk.inject"),
        _fam("domob", "adware", 0.23, "cn.domob.android.inject"),
        _fam("commplat", "adware", 0.22),
        _fam("adend", "adware", 0.22),
        _fam("kyview", "adware", 0.22),
        _fam("feiwo", "adware", 0.22),
        _fam("utchi", "adware", 0.22),
        # Trojan-class families.
        _fam("smsreg", "trojan", 0.36),
        _fam("gappusin", "trojan", 0.33),
        _fam("secapk", "trojan", 0.31),
        _fam("smspay", "trojan", 0.36),
        _fam("plankton", "trojan", 0.30),
        _fam("basebridge", "trojan", 0.33),
        _fam("droidkungfu", "trojan", 0.35),
        _fam("ginmaster", "trojan", 0.31),
        # High-profile families and the EICAR test signature (Table 5).
        _fam("ramnit", "high_profile", 0.74),
        _fam("mofin", "high_profile", 0.72),
        _fam("eicar", "test", 0.76, "com.eicar.test"),
    )
}

#: Family sampling weights for malware injected into Chinese-market apps
#: (Figure 12, Chinese markets series: kuguo leads at 12.69%).
CHINESE_FAMILY_WEIGHTS: Dict[str, float] = {
    "kuguo": 0.1269, "smsreg": 0.095, "dowgin": 0.085, "gappusin": 0.072,
    "secapk": 0.062, "youmi": 0.058, "airpush": 0.050, "leadbolt": 0.047,
    "adwo": 0.043, "domob": 0.042, "commplat": 0.038, "adend": 0.033,
    "smspay": 0.032, "revmob": 0.020, "kyview": 0.035, "feiwo": 0.030,
    "utchi": 0.028, "plankton": 0.040, "basebridge": 0.035,
    "droidkungfu": 0.040, "ginmaster": 0.035, "ramnit": 0.012,
    "mofin": 0.002,
}

#: Family weights for Google Play malware (airpush 29.04%, revmob 15.09%).
GP_FAMILY_WEIGHTS: Dict[str, float] = {
    "airpush": 0.2904, "revmob": 0.1509, "leadbolt": 0.075, "youmi": 0.032,
    "dowgin": 0.022, "kuguo": 0.006, "smsreg": 0.045, "plankton": 0.060,
    "ginmaster": 0.045, "droidkungfu": 0.040, "basebridge": 0.035,
    "gappusin": 0.030, "secapk": 0.025, "smspay": 0.020, "kyview": 0.015,
    "feiwo": 0.012, "utchi": 0.010, "adwo": 0.015, "domob": 0.015,
    "commplat": 0.010, "adend": 0.008, "ramnit": 0.004, "mofin": 0.001,
}


@dataclass(frozen=True)
class ThreatProfile:
    """Ground-truth malice attached to one app blueprint."""

    family: str
    variant: int
    repackaged: bool = False  # True when this malware is a clone/repack

    @property
    def family_def(self) -> MalwareFamily:
        return MALWARE_FAMILIES[self.family]


@lru_cache(maxsize=None)
def payload_code(family: str, variant: int) -> CodePackage:
    """Generate the payload code package for a (family, variant) pair.

    Pure and deterministic: the ecosystem uses it to infect APKs, and
    anti-virus vendors use it to compute the signatures in their
    databases (they have the samples).  Payloads call permission-guarded
    APIs — SMS, phone state — which also inflates the permission
    footprint of infected apps.
    """
    fam = MALWARE_FAMILIES[family]
    rng = np.random.default_rng(stable_hash64("payload", family, variant) % 2**63)
    api_lo, api_hi = API_FEATURE_RANGE
    # Payloads are small relative to the host app's own code, as in real
    # repackaged malware — a repack stays within clone-detection range.
    size = int(rng.integers(6, 11))
    features: Dict[int, int] = {}
    for _ in range(size):
        features[int(rng.integers(api_lo, api_hi))] = int(rng.integers(1, 3))
    blocks = tuple(
        int(stable_hash64("payload-block", family, variant, i) & 0xFFFFFFFF)
        for i in range(6)
    )
    return CodePackage(name=fam.payload_package, features=features, blocks=blocks)


class ThreatFeed:
    """Registry of the threat variants actually present in a world.

    The generator records every (family, variant) it injects; tests and
    detector-quality experiments use it as ground truth.  The simulated
    VirusTotal does *not* read it — engines recognize payloads through
    :func:`payload_code` digests, mirroring vendors' sample collections.
    """

    def __init__(self) -> None:
        self._variants: Dict[Tuple[str, int], int] = {}

    def record(self, profile: ThreatProfile) -> None:
        key = (profile.family, profile.variant)
        self._variants[key] = self._variants.get(key, 0) + 1

    @property
    def variants(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self._variants))

    def count(self, family: str) -> int:
        return sum(
            n for (fam, _), n in self._variants.items() if fam == family
        )

    def __len__(self) -> int:
        return len(self._variants)
