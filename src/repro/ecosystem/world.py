"""The generated world: ground truth for one study run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.ecosystem.apps import AppBlueprint, Placement
from repro.ecosystem.developers import Developer
from repro.ecosystem.libraries import LibraryCatalog
from repro.ecosystem.threats import ThreatFeed

__all__ = ["World", "VettingRecord"]


@dataclass(frozen=True)
class VettingRecord:
    """One vetting decision made by a market at submission time."""

    market_id: str
    app_id: int
    accepted: bool
    reason: str


@dataclass
class World:
    """Ground truth for one study: apps, developers, libraries, threats.

    Markets and analyses must not reach into this object; it exists for
    generation, for serving stores, and for ground-truth validation in
    tests and detector-quality experiments.
    """

    seed: int
    scale: float
    catalog: LibraryCatalog
    developers: List[Developer] = field(default_factory=list)
    apps: List[AppBlueprint] = field(default_factory=list)
    threat_feed: ThreatFeed = field(default_factory=ThreatFeed)
    vetting_log: List[VettingRecord] = field(default_factory=list)

    def app(self, app_id: int) -> AppBlueprint:
        blueprint = self.apps[app_id]
        if blueprint.app_id != app_id:
            raise AssertionError("app list out of order")
        return blueprint

    def iter_placements(self) -> Iterator[Tuple[AppBlueprint, Placement]]:
        """Yield every (app, placement) pair."""
        for app in self.apps:
            for placement in app.placements.values():
                yield app, placement

    def apps_in_market(self, market_id: str) -> List[AppBlueprint]:
        return [app for app in self.apps if market_id in app.placements]

    def market_size(self, market_id: str) -> int:
        return sum(1 for app in self.apps if market_id in app.placements)

    def total_listings(self) -> int:
        return sum(len(app.placements) for app in self.apps)

    def find_by_package(self, package: str) -> List[AppBlueprint]:
        return [app for app in self.apps if app.package == package]

    def summary(self) -> Dict[str, int]:
        """Quick ground-truth tallies (for logging and examples)."""
        n_threat = sum(1 for a in self.apps if a.threat is not None)
        n_fake = sum(1 for a in self.apps if a.provenance == "fake")
        n_sb = sum(1 for a in self.apps if a.provenance == "sb_clone")
        n_cb = sum(1 for a in self.apps if a.provenance == "cb_clone")
        return {
            "apps": len(self.apps),
            "developers": len(self.developers),
            "listings": self.total_listings(),
            "threat_apps": n_threat,
            "fake_apps": n_fake,
            "sb_clones": n_sb,
            "cb_clones": n_cb,
        }
