"""The generated world: ground truth for one study run.

``World.apps`` is a plain list after generation; handing the world to a
:class:`~repro.store.corpus.CorpusStore` via :meth:`World.spill` swaps
it for a disk-backed :class:`~repro.store.corpus.SpilledAppList` behind
the same sequence API.  Every accessor below works on either backend;
``content_digest()`` is backend-invariant because iteration order (by
``app_id``) is part of the spill contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ecosystem.apps import AppBlueprint, Placement
from repro.ecosystem.developers import Developer
from repro.ecosystem.libraries import LibraryCatalog
from repro.ecosystem.threats import ThreatFeed

__all__ = ["World", "VettingRecord"]


@dataclass(frozen=True)
class VettingRecord:
    """One vetting decision made by a market at submission time."""

    market_id: str
    app_id: int
    accepted: bool
    reason: str


@dataclass
class World:
    """Ground truth for one study: apps, developers, libraries, threats.

    Markets and analyses must not reach into this object; it exists for
    generation, for serving stores, and for ground-truth validation in
    tests and detector-quality experiments.
    """

    seed: int
    scale: float
    catalog: LibraryCatalog
    developers: List[Developer] = field(default_factory=list)
    apps: Sequence[AppBlueprint] = field(default_factory=list)
    threat_feed: ThreatFeed = field(default_factory=ThreatFeed)
    vetting_log: List[VettingRecord] = field(default_factory=list)

    def app(self, app_id: int) -> AppBlueprint:
        blueprint = self.apps[app_id]
        if blueprint.app_id != app_id:
            raise AssertionError("app list out of order")
        return blueprint

    # -- out-of-core backend ------------------------------------------------

    @property
    def spilled(self) -> bool:
        """True once ``apps`` lives in a corpus store, not a list."""
        return not isinstance(self.apps, list)

    def spill(self, store) -> None:
        """Move the app list into ``store`` (a ``CorpusStore``).

        Every accessor keeps working; reads come back as fresh copies,
        so post-generation mutations must go through :meth:`write_back`.
        Developers stay in memory (they are shared, small, and pickled
        by reference so identity survives the round-trip).
        """
        from repro.store.corpus import SpilledAppList

        if self.spilled:
            return
        self.apps = SpilledAppList.spill(store, self.apps, self.developers)

    def write_back(self, app: AppBlueprint) -> None:
        """Persist a mutated blueprint; no-op on the in-memory backend
        (there, the caller already mutated the shared object)."""
        write_back = getattr(self.apps, "write_back", None)
        if write_back is not None:
            write_back(app)

    def iter_placements(
        self, batch_size: Optional[int] = None
    ) -> Iterator[Tuple[AppBlueprint, Placement]]:
        """Yield every (app, placement) pair, streaming on the spilled
        backend (``batch_size`` tunes its cursor width)."""
        apps: Iterator[AppBlueprint]
        iter_batched = getattr(self.apps, "iter", None)
        if batch_size is not None and iter_batched is not None:
            apps = iter_batched(batch_size)
        else:
            apps = iter(self.apps)
        for app in apps:
            for placement in app.placements.values():
                yield app, placement

    def apps_in_market(self, market_id: str) -> List[AppBlueprint]:
        return [app for app in self.apps if market_id in app.placements]

    def market_size(self, market_id: str) -> int:
        return sum(1 for app in self.apps if market_id in app.placements)

    def total_listings(self) -> int:
        return sum(len(app.placements) for app in self.apps)

    def find_by_package(self, package: str) -> List[AppBlueprint]:
        """All apps with this package — an indexed lookup once spilled."""
        find = getattr(self.apps, "find_by_package", None)
        if find is not None:
            return find(package)
        return [app for app in self.apps if app.package == package]

    def content_digest(self) -> str:
        """A stable hex digest over everything generation decides.

        Covers apps (including code features and version history),
        developers, placements, the vetting log, and the threat feed —
        if two runs disagree anywhere, their digests differ.  This is
        the sharding contract's check: the digest must be identical for
        any ``gen_workers`` value (see DESIGN.md).
        """
        h = hashlib.blake2b(digest_size=16)

        def rec(*parts: object) -> None:
            h.update("\x1f".join(repr(p) for p in parts).encode("utf-8"))
            h.update(b"\x1e")

        rec("world", self.seed, self.scale)
        for dev in self.developers:
            rec("dev", dev.dev_id, dev.name, dev.region, dev.alt_names)
        for app in self.apps:
            rec(
                "app",
                app.app_id,
                app.package,
                app.display_name,
                app.category,
                app.scope,
                app.popularity,
                app.quality,
                app.min_sdk,
                app.target_sdk,
                app.release_day,
                app.versions,
                app.own_code.main_package,
                sorted(app.own_code.features.items()),
                app.own_code.blocks,
                app.libraries,
                app.permissions_requested,
                (app.threat.family, app.threat.variant, app.threat.repackaged)
                if app.threat is not None
                else None,
                app.provenance,
                app.related_app_id,
                app.clone_depth,
                app.template_id,
                app.developer.dev_id if app.developer is not None else None,
            )
            for market_id in sorted(app.placements):
                p = app.placements[market_id]
                rec(
                    "placement",
                    app.app_id,
                    market_id,
                    p.version_index,
                    p.category_label,
                    p.downloads,
                    p.rating,
                    p.listed_day,
                    p.removed_at,
                )
        for record in self.vetting_log:
            rec("vetting", record.market_id, record.app_id,
                record.accepted, record.reason)
        rec("threats", self.threat_feed.variants)
        return h.hexdigest()

    def summary(self) -> Dict[str, int]:
        """Quick ground-truth tallies (for logging and examples)."""
        n_threat = sum(1 for a in self.apps if a.threat is not None)
        n_fake = sum(1 for a in self.apps if a.provenance == "fake")
        n_sb = sum(1 for a in self.apps if a.provenance == "sb_clone")
        n_cb = sum(1 for a in self.apps if a.provenance == "cb_clone")
        n_spam = sum(1 for a in self.apps if a.provenance == "template_spam")
        return {
            "apps": len(self.apps),
            "developers": len(self.developers),
            "listings": self.total_listings(),
            "threat_apps": n_threat,
            "fake_apps": n_fake,
            "sb_clones": n_sb,
            "cb_clones": n_cb,
            "template_spam": n_spam,
        }
