"""Experiments: one module per paper table and figure.

``run_experiment("table4", result)`` regenerates the corresponding
artifact from a :class:`~repro.core.study.StudyResult`.  The DESIGN.md
per-experiment index maps each id to its paper artifact, workload, and
bench target.
"""

from repro.experiments.runner import (
    EXPERIMENT_IDS,
    PAPER_EXPERIMENT_IDS,
    digest_reports,
    run_all,
    run_experiment,
)

__all__ = [
    "EXPERIMENT_IDS",
    "PAPER_EXPERIMENT_IDS",
    "digest_reports",
    "run_all",
    "run_experiment",
]
