"""Longitudinal catalog churn between the two campaigns (Section 7 extra).

Requires a study run with ``full_second_crawl=True``; otherwise the
report carries a note and no rows.
"""

from __future__ import annotations

from repro.analysis.longitudinal import compare_snapshots
from repro.core.reports import TableReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, get_profile

__all__ = ["run"]


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="churn",
        title="Catalog churn between campaigns (longitudinal extra)",
        columns=(
            "market", "first", "second", "removed_pct", "upgraded_pct",
            "flagged_removed_pct",
        ),
    )
    if result.second_snapshot is None:
        table.notes.append(
            "no second snapshot: run the study with full_second_crawl=True"
        )
        return table
    churn = compare_snapshots(
        result.snapshot, result.second_snapshot, result.flagged_by_market
    )
    for market_id in ALL_MARKET_IDS:
        stats = churn.get(market_id)
        if stats is None:
            continue
        table.add_row(
            get_profile(market_id).display_name,
            stats.first_size,
            stats.second_size,
            round(100 * stats.removal_share, 2),
            round(100 * stats.upgrade_share, 2),
            round(100 * stats.flagged_removal_share, 2),
        )
    table.notes.append(
        "flagged removals should exceed background churn in markets with "
        "active security cleanup (GP most; PC Online not at all)"
    )
    return table
