"""Fidelity scorecard: how close is measured to the paper, numerically.

One row per calibrated artifact with an appropriate agreement metric:

* **rank correlation** (Spearman's rho) where the paper's finding is an
  *ordering* of markets (Figure 9 freshness, Table 4 malware rates,
  Table 6 removal rates);
* **mean absolute error** in percentage points where the paper reports
  per-market percentages (Tables 3-4, Figure 5);
* **mean L1 distance** between share vectors where the artifact is a
  distribution (Figure 2's download-bin rows).

This experiment is the reproduction's self-check; it also anchors the
summary at the top of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.downloads import download_bin_distribution
from repro.analysis.libraries import market_tpl_stats
from repro.analysis.malware import av_rank_rates
from repro.analysis.publishing import highest_version_shares
from repro.core.reports import TableReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, get_profile
from repro.util.stats import l1_distance, mean_absolute_error, spearman_rank_correlation

__all__ = ["run", "scorecard"]


def _paired(
    measured: Dict[str, float], paper: Dict[str, float]
) -> Tuple[List[float], List[float]]:
    markets = [
        m for m in ALL_MARKET_IDS
        if measured.get(m) is not None and paper.get(m) is not None
    ]
    return (
        [measured[m] for m in markets],
        [paper[m] for m in markets],
    )


def scorecard(result: StudyResult) -> List[Tuple[str, str, float]]:
    """Compute (artifact, metric, value) rows."""
    snapshot = result.snapshot
    rows: List[Tuple[str, str, float]] = []

    # Figure 2: download bin rows, mean L1 across reporting markets.
    distances = []
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        if not profile.reports_downloads:
            continue
        target = list(profile.download_bin_shares)
        total = sum(target)
        if total <= 0:
            continue
        target = [v / total for v in target]
        measured = download_bin_distribution(snapshot, market_id)
        if sum(measured) == 0:
            continue
        distances.append(l1_distance(measured, target))
    if distances:
        rows.append(("figure2 download bins", "mean L1 distance",
                     sum(distances) / len(distances)))

    # Table 3: fake / SB / CB rates, MAE in percentage points.
    fake = result.fakes.market_rates(snapshot)
    sb = result.signature_clones.market_rates(snapshot)
    cb = result.code_clones.market_rates(snapshot)
    for name, measured_rates, attr in (
        ("table3 fake apps", fake, "fake_rate"),
        ("table3 signature clones", sb, "sb_clone_rate"),
        ("table3 code clones", cb, "cb_clone_rate"),
    ):
        measured = {m: 100 * measured_rates.get(m, 0.0) for m in ALL_MARKET_IDS}
        paper = {m: getattr(get_profile(m), attr) for m in ALL_MARKET_IDS}
        a, b = _paired(measured, paper)
        rows.append((name, "MAE (pct points)", mean_absolute_error(a, b)))

    # Table 4: AV-rank rates, MAE + rank correlation on >=10.
    rates = av_rank_rates(snapshot, result.units, result.vt_scan)
    for threshold, attr in ((1, "av1_rate"), (10, "av10_rate"), (20, "av20_rate")):
        measured = {m: 100 * rates.get(m, {}).get(threshold, 0.0)
                    for m in ALL_MARKET_IDS}
        paper = {m: getattr(get_profile(m), attr) for m in ALL_MARKET_IDS}
        a, b = _paired(measured, paper)
        rows.append((f"table4 AV-rank >= {threshold}", "MAE (pct points)",
                     mean_absolute_error(a, b)))
        if threshold == 10:
            rows.append((f"table4 AV-rank >= {threshold}", "rank correlation",
                         spearman_rank_correlation(a, b)))

    # Table 6: removal shares, rank correlation.
    measured = {m: 100 * v for m, v in result.removal.removal_share.items()}
    paper = {
        m: get_profile(m).malware_removal_rate
        for m in ALL_MARKET_IDS
        if get_profile(m).malware_removal_rate is not None
    }
    a, b = _paired(measured, paper)
    if len(a) >= 2:
        rows.append(("table6 malware removal", "rank correlation",
                     spearman_rank_correlation(a, b)))
        rows.append(("table6 malware removal", "MAE (pct points)",
                     mean_absolute_error(a, b)))

    # Figure 9: freshness ordering.
    measured = highest_version_shares(snapshot)
    paper = {m: get_profile(m).highest_version_share for m in ALL_MARKET_IDS}
    a, b = _paired(measured, paper)
    rows.append(("figure9 highest-version share", "rank correlation",
                 spearman_rank_correlation(a, b)))

    # Figure 5: TPL presence and average counts.
    stats = market_tpl_stats(result.units, result.library_detection)
    measured = {m: stats.get(m, {}).get("avg_count") for m in ALL_MARKET_IDS}
    paper = {m: get_profile(m).tpl_avg_count for m in ALL_MARKET_IDS}
    a, b = _paired(measured, paper)
    if len(a) >= 2:
        rows.append(("figure5 avg TPL count", "MAE (libraries)",
                     mean_absolute_error(a, b)))
    return rows


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="fidelity",
        title="Fidelity scorecard: measured vs paper",
        columns=("artifact", "metric", "value"),
    )
    for artifact, metric, value in scorecard(result):
        table.add_row(artifact, metric, round(value, 3))
    table.notes.append(
        "rank correlations near 1.0 mean the per-market ordering matches "
        "the paper; MAE rows are in the units named"
    )
    return table
