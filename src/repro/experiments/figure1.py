"""Figure 1: distribution of app categories per market."""

from __future__ import annotations

from repro.analysis.taxonomy import category_distributions, similarity_to_google_play
from repro.core.reports import FigureReport
from repro.core.study import StudyResult
from repro.markets.categories import OTHER_CATEGORY

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    matrix = category_distributions(result.snapshot)
    game_shares = {m: dist.get("Game", 0.0) for m, dist in matrix.items()}
    other_shares = {m: dist.get(OTHER_CATEGORY, 0.0) for m, dist in matrix.items()}
    figure = FigureReport(
        experiment_id="figure1",
        title="Distribution of app categories (consolidated 22-category taxonomy)",
        data={
            "matrix": matrix,
            "game_share": game_shares,
            "null_other_share": other_shares,
            "similarity_to_google_play": similarity_to_google_play(result.snapshot),
        },
    )
    figure.notes.append(
        "paper: games ~50% of apps; ~40% Null/Other in Tencent/360/OPPO/25PP; "
        "most stores track Google Play's category mix while vendor stores "
        "(Meizu/Huawei/Lenovo) diverge"
    )
    return figure
