"""Figure 10: intra- and inter-market app clone heatmap."""

from __future__ import annotations

from repro.core.plots import heatmap as render_heatmap
from repro.core.reports import FigureReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, GOOGLE_PLAY

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    heatmap = result.code_clones.heatmap(result.units_by_key, ALL_MARKET_IDS)
    source_totals = {m: 0 for m in ALL_MARKET_IDS}
    dest_totals = {m: 0 for m in ALL_MARKET_IDS}
    intra = 0
    for (src, dst), count in heatmap.items():
        source_totals[src] += count
        dest_totals[dst] += count
        if src == dst:
            intra += count
    total = sum(source_totals.values())
    figure = FigureReport(
        experiment_id="figure10",
        title="Intra- and inter-market app clones (source -> destination)",
        data={
            "heatmap": {f"{src}->{dst}": c for (src, dst), c in heatmap.items() if c},
            "heatmap_plot": "\n" + render_heatmap(
                heatmap, rows=ALL_MARKET_IDS, columns=ALL_MARKET_IDS
            ),
            "source_totals": source_totals,
            "destination_totals": dest_totals,
            "intra_market_clones": intra,
            "gp_source_share": (
                source_totals.get(GOOGLE_PLAY, 0) / total if total else 0.0
            ),
        },
    )
    figure.notes.append(
        "paper: Google Play is the premier clone source; 25PP receives the "
        "most clones; intra-market clones are also common"
    )
    return figure
