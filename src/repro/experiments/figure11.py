"""Figure 11: distribution of over-privileged apps."""

from __future__ import annotations

from repro.analysis.permissions import dangerous_request_stats, figure11_series
from repro.core.reports import FigureReport
from repro.core.study import StudyResult

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    series = figure11_series(result.snapshot, result.units, result.overprivilege)
    figure = FigureReport(
        experiment_id="figure11",
        title="Over-privileged apps (unused permissions per app)",
        data={
            **series,
            "avg_dangerous_requested": dangerous_request_stats(result.units),
        },
    )
    figure.notes.append(
        "paper: ~65% of Google Play apps over-privileged vs ~82% in Chinese "
        "markets; 3 unused permissions is the most common count; top "
        "offenders: READ_PHONE_STATE (52.38%), ACCESS_COARSE_LOCATION "
        "(36.28%), ACCESS_FINE_LOCATION (33.83%), CAMERA (19.98%)"
    )
    return figure
