"""Figure 12: top malware families, Google Play vs Chinese markets."""

from __future__ import annotations

from repro.analysis.malware import family_distribution, repackaged_share
from repro.core.reports import FigureReport
from repro.core.study import StudyResult

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    families = family_distribution(result.units, result.vt_scan)
    repack = repackaged_share(result.vt_scan, result.all_clone_units)
    figure = FigureReport(
        experiment_id="figure12",
        title="Top malware families (AVClass-style labeling)",
        data={
            "chinese": dict(list(families["chinese"].items())[:15]),
            "google_play": dict(list(families["google_play"].items())[:15]),
            "repackaged_malware_share": repack,
        },
    )
    figure.notes.append(
        "paper: kuguo leads Chinese markets (12.69%); airpush (29.04%) and "
        "revmob (15.09%) dominate Google Play; 38.3% of malware is repackaged"
    )
    return figure
