"""Figure 13: multi-dimensional market comparison radar."""

from __future__ import annotations

from repro.analysis.malware import av_rank_rates
from repro.analysis.publishing import highest_version_shares
from repro.analysis.radar import RADAR_MARKETS, radar_series
from repro.core.reports import FigureReport
from repro.core.study import StudyResult

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    snapshot = result.snapshot
    rates = av_rank_rates(snapshot, result.units, result.vt_scan)
    fake_rates = result.fakes.market_rates(snapshot)
    cb_rates = result.code_clones.market_rates(snapshot)
    freshness = highest_version_shares(snapshot)

    def mean_rating(market: str) -> float:
        records = snapshot.in_market(market)
        rated = [r.rating for r in records if r.rating > 0]
        return sum(rated) / len(rated) if rated else 0.0

    raw = {
        "malware_resistance": {m: rates.get(m, {}).get(10) for m in RADAR_MARKETS},
        "fake_resistance": {m: fake_rates.get(m) for m in RADAR_MARKETS},
        "clone_resistance": {m: cb_rates.get(m) for m in RADAR_MARKETS},
        "app_ratings": {m: mean_rating(m) for m in RADAR_MARKETS},
        "catalog_freshness": {m: freshness.get(m) for m in RADAR_MARKETS},
        "malware_removal": {
            m: result.removal.removal_share.get(m) for m in RADAR_MARKETS
        },
    }
    figure = FigureReport(
        experiment_id="figure13",
        title="Multi-dimensional comparison (normalized to [0, 100])",
        data={"series": radar_series(raw), "raw": raw},
    )
    figure.notes.append(
        "paper: Google Play dominates most dimensions; Huawei/Lenovo show "
        "low malware but many outdated apps; Tencent/PC Online host "
        "substantial malware"
    )
    return figure
