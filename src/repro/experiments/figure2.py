"""Figure 2: distribution of downloads across markets."""

from __future__ import annotations

from repro.analysis.downloads import download_matrix, top_download_share
from repro.core.reports import FigureReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, DOWNLOAD_BIN_LABELS, get_profile

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    measured = download_matrix(result.snapshot)
    paper = {
        m: list(get_profile(m).download_bin_shares) for m in ALL_MARKET_IDS
    }
    top01 = {
        m: top_download_share(result.snapshot, m, 0.001) for m in ALL_MARKET_IDS
    }
    figure = FigureReport(
        experiment_id="figure2",
        title="Distribution of downloads across markets",
        data={
            "bins": list(DOWNLOAD_BIN_LABELS),
            "measured": measured,
            "paper": paper,
            "top_0.1pct_download_share": top01,
        },
    )
    figure.notes.append(
        "paper: downloads are power-law; top 0.1% of apps account for >50% "
        "of downloads (>80% for Tencent Myapp)"
    )
    return figure
