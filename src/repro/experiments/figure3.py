"""Figure 3: distribution of declared minimum API levels."""

from __future__ import annotations

from repro.analysis.apilevel import figure3_series, low_api_share
from repro.core.reports import FigureReport
from repro.core.study import StudyResult
from repro.markets.profiles import CHINESE_MARKET_IDS, GOOGLE_PLAY

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    series = figure3_series(result.snapshot)
    low_gp = low_api_share(result.snapshot, GOOGLE_PLAY)
    low_cn = [low_api_share(result.snapshot, m) for m in CHINESE_MARKET_IDS]
    figure = FigureReport(
        experiment_id="figure3",
        title="Minimum API level distribution (Google Play vs Chinese box)",
        data={
            **series,
            "low_api_share_gp": low_gp,
            "low_api_share_cn_mean": sum(low_cn) / max(1, len(low_cn)),
        },
    )
    figure.notes.append(
        "paper: ~63% of Chinese-market apps declare min API < 9 vs ~22% on "
        "Google Play; levels 7-9 are the mode"
    )
    return figure
