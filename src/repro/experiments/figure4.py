"""Figure 4: distribution of app release/update dates."""

from __future__ import annotations

from repro.analysis.freshness import figure4_series
from repro.core.reports import FigureReport
from repro.core.study import StudyResult

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    figure = FigureReport(
        experiment_id="figure4",
        title="Release/update date distribution",
        data=figure4_series(result.snapshot),
    )
    figure.notes.append(
        "paper: ~90% of Chinese-market apps updated before 2017 (GP: 66%); "
        "~5% updated within 6 months of the crawl (GP: >23%)"
    )
    return figure
