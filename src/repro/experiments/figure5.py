"""Figure 5: third-party and advertisement library presence per market."""

from __future__ import annotations

from repro.analysis.libraries import market_tpl_stats
from repro.core.reports import FigureReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, get_profile

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    stats = market_tpl_stats(result.units, result.library_detection)
    figure = FigureReport(
        experiment_id="figure5",
        title="Third-party / ad library presence across app stores",
        data={
            "tpl_presence": {m: stats.get(m, {}).get("presence") for m in ALL_MARKET_IDS},
            "tpl_avg_count": {m: stats.get(m, {}).get("avg_count") for m in ALL_MARKET_IDS},
            "ad_presence": {m: stats.get(m, {}).get("ad_presence") for m in ALL_MARKET_IDS},
            "ad_avg_count": {m: stats.get(m, {}).get("avg_ad_count") for m in ALL_MARKET_IDS},
            "paper_tpl_presence": {m: get_profile(m).tpl_presence for m in ALL_MARKET_IDS},
            "paper_tpl_avg_count": {m: get_profile(m).tpl_avg_count for m in ALL_MARKET_IDS},
            "paper_ad_presence": {m: get_profile(m).adlib_presence for m in ALL_MARKET_IDS},
        },
    )
    figure.notes.append(
        "paper: GP has the highest TPL presence (~94%) but the lowest "
        "average count (~8); 360 Market apps average ~20 TPLs"
    )
    return figure
