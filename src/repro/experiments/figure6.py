"""Figure 6: CDF of app ratings across markets."""

from __future__ import annotations

from repro.analysis.ratings import (
    default_rating_spike_share,
    high_rating_share,
    rating_cdfs,
    unrated_share,
    unrated_low_download_share,
)
from repro.core.reports import FigureReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    snapshot = result.snapshot
    figure = FigureReport(
        experiment_id="figure6",
        title="CDF of app ratings across markets",
        data={
            "cdfs": rating_cdfs(snapshot),
            "unrated_share": {m: unrated_share(snapshot, m) for m in ALL_MARKET_IDS},
            "high_rating_share": {
                m: high_rating_share(snapshot, m) for m in ALL_MARKET_IDS
            },
            "default3_spike": {
                m: default_rating_spike_share(snapshot, m) for m in ALL_MARKET_IDS
            },
            "unrated_low_download_share": {
                m: unrated_low_download_share(snapshot, m) for m in ALL_MARKET_IDS
            },
        },
    )
    figure.notes.append(
        "paper pattern #1: >80% of apps unrated in 25PP/OPPO/Tencent, ~90% "
        "of those have <1K downloads; pattern #2: PC Online defaults to 3"
    )
    figure.notes.append(
        "paper: only 9.3% of Google Play apps are unrated; >50% rated above 4"
    )
    return figure
