"""Figure 7: CDF of markets targeted per developer."""

from __future__ import annotations

from collections import Counter

from repro.analysis.publishing import (
    developer_market_cdf_counts,
    developer_name_variants,
    developer_stats,
)
from repro.core.reports import FigureReport
from repro.core.study import StudyResult

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    counts = developer_market_cdf_counts(result.units)
    histogram = Counter(counts)
    total = len(counts) or 1
    cdf = {}
    running = 0
    for k in range(1, 18):
        running += histogram.get(k, 0)
        cdf[k] = running / total
    stats = developer_stats(result.units)
    variants = developer_name_variants(result.units)
    figure = FigureReport(
        experiment_id="figure7",
        title="CDF of developer published markets",
        data={"cdf": cdf, **stats,
              "name_variants": variants},
    )
    figure.notes.append(
        "footnote 11: one signing key may appear under several display "
        "names across markets — identity comes from the signature"
    )
    figure.notes.append(
        "paper: >50% of developers publish in Google Play; 57% of those "
        "publish nowhere else; ~48% are Chinese-market-only; ~20% target "
        ">3 stores; 696 of ~1M developers cover all 17"
    )
    return figure
