"""Figure 8: CDFs of (a) versions per package, (b) same-name cluster
sizes, and (c) developer signatures per package."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.analysis.fake import name_cluster_sizes
from repro.analysis.publishing import versions_per_package
from repro.core.reports import FigureReport
from repro.core.study import StudyResult

__all__ = ["run"]


def _cdf(values: List[int], upto: int) -> Dict[int, float]:
    histogram = Counter(values)
    total = len(values) or 1
    cdf = {}
    running = 0
    for k in range(1, upto + 1):
        running += histogram.get(k, 0)
        cdf[k] = running / total
    return cdf


def run(result: StudyResult) -> FigureReport:
    versions = versions_per_package(result.snapshot)
    names = name_cluster_sizes(result.units)
    developers = result.signature_clones.developers_per_package()

    multi_version_share = (
        sum(1 for v in versions if v > 1) / len(versions) if versions else 0.0
    )
    # Share of apps whose name is shared with at least one other package.
    apps_in_shared = sum(s for s in names if s > 1)
    total_apps = sum(names) or 1

    figure = FigureReport(
        experiment_id="figure8",
        title="CDFs: versions per package / name clusters / developers per package",
        data={
            "versions_per_package_cdf": _cdf(versions, 14),
            "multi_version_share": multi_version_share,
            "name_cluster_size_cdf": _cdf(names, 20),
            "shared_name_app_share": apps_in_shared / total_apps,
            "developers_per_package_cdf": _cdf(developers, 11),
            "max_versions": max(versions) if versions else 0,
            "max_name_cluster": max(names) if names else 0,
            "max_developers": max(developers) if developers else 0,
        },
    )
    figure.notes.append(
        "paper: ~14% of packages expose multiple simultaneous versions "
        "(up to 14); ~22% of apps share their name with another app; ~12% "
        "of apps have >=2 same-package clones by different developers"
    )
    return figure
