"""Figure 9: share of apps at the globally-highest version, per market."""

from __future__ import annotations

from repro.analysis.publishing import highest_version_shares
from repro.core.reports import FigureReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, get_profile

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    measured = highest_version_shares(result.snapshot)
    figure = FigureReport(
        experiment_id="figure9",
        title="App updates across markets (highest-version share)",
        data={
            "measured": {m: measured.get(m) for m in ALL_MARKET_IDS},
            "paper": {m: get_profile(m).highest_version_share for m in ALL_MARKET_IDS},
        },
    )
    figure.notes.append(
        "paper: Google Play leads at 95.4%; Baidu trails at 52.9% "
        "(single-store apps excluded)"
    )
    return figure
