"""Experiment registry and runner."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Union

from repro.core.reports import FigureReport, TableReport
from repro.core.study import StudyResult
from repro.experiments import (
    churn, fidelity, figure1, figure2, figure3, figure4, figure5, figure6,
    figure7, figure8, figure9, figure10, figure11, figure12, figure13,
    section52, section53, section64,
    table1, table2, table3, table4, table5, table6,
)

__all__ = [
    "EXPERIMENT_IDS",
    "PAPER_EXPERIMENT_IDS",
    "run_experiment",
    "run_all",
    "digest_reports",
]

Report = Union[TableReport, FigureReport]

_REGISTRY = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "figure12": figure12.run,
    "figure13": figure13.run,
    # Section-level findings without a dedicated paper table/figure.
    "section52": section52.run,
    "section53": section53.run,
    "section64": section64.run,
    # Longitudinal extra (needs full_second_crawl=True).
    "churn": churn.run,
    # The reproduction's numeric self-check.
    "fidelity": fidelity.run,
}

EXPERIMENT_IDS = tuple(_REGISTRY)

#: The ids corresponding one-to-one to the paper's tables and figures
#: (6 tables + 13 figures; the rest are section-level/self-check extras).
PAPER_EXPERIMENT_IDS = tuple(
    e for e in EXPERIMENT_IDS if e.startswith(("table", "figure"))
)


def _run_one(experiment_id: str, result: StudyResult, profile: bool) -> Report:
    """Run one experiment, wrapped in the right observability primitive.

    The stage profiler keeps a sequential stack and must stay on the
    calling thread; worker threads record spans instead (the tracer is
    thread-safe).
    """
    runner = _REGISTRY[experiment_id]
    if profile:
        with result.obs.stage(f"experiment.{experiment_id}"):
            report = runner(result)
    else:
        with result.obs.span(f"experiment.{experiment_id}"):
            report = runner(result)
    degraded = result.snapshot.degraded_markets()
    if degraded:
        report.notes.append(
            "crawl degraded: no data for " + ", ".join(degraded)
            + " (circuit breaker quarantine)"
        )
    return report


def run_experiment(experiment_id: str, result: StudyResult) -> Report:
    """Regenerate one paper table or figure from a study result.

    When the crawl completed in degraded mode (a market quarantined by
    its circuit breaker), every report is annotated so readers know the
    numbers were computed from a partial fleet instead of crashing or
    silently under-counting.
    """
    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENT_IDS)}"
        )
    return _run_one(experiment_id, result, profile=True)


def run_all(
    result: StudyResult, workers: Optional[int] = None
) -> Dict[str, Report]:
    """Regenerate every table and figure.

    ``workers`` defaults to the study's analysis engine width.  Above 1,
    experiments run concurrently: the shared analysis artifacts are
    materialized once up front (thread-safe), then each experiment only
    *reads* the :class:`StudyResult`, so the fan-out is safe and the
    merged report dict — in :data:`EXPERIMENT_IDS` order — is
    bit-identical to a serial run.
    """
    if workers is None:
        workers = result.engine.workers
    if workers <= 1:
        return {
            exp_id: run_experiment(exp_id, result) for exp_id in EXPERIMENT_IDS
        }
    result.materialize()
    with result.obs.stage("experiments.run_all"):
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="experiment"
        ) as pool:
            reports = list(
                pool.map(
                    lambda exp_id: _run_one(exp_id, result, profile=False),
                    EXPERIMENT_IDS,
                )
            )
    return dict(zip(EXPERIMENT_IDS, reports))


def digest_reports(reports: Dict[str, Report]) -> Dict[str, str]:
    """Content digest of every report, keyed by experiment id.

    Two report sets produced from the same study — serially, in
    parallel, or resumed from the artifact cache — digest identically.
    """
    return {exp_id: report.content_digest() for exp_id, report in reports.items()}
