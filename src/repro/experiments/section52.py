"""Section 5.2: single- and multi-store apps."""

from __future__ import annotations

from repro.analysis.publishing import gp_overlap_share, single_store_shares
from repro.core.reports import TableReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, GOOGLE_PLAY, get_profile

__all__ = ["run"]


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="section52",
        title="Single- and multi-store apps (Section 5.2)",
        columns=("market", "single_store_pct", "paper_single_pct", "gp_overlap_pct"),
    )
    singles = single_store_shares(result.snapshot)
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        overlap = (
            None
            if market_id == GOOGLE_PLAY
            else round(100 * gp_overlap_share(result.snapshot, market_id), 1)
        )
        table.add_row(
            profile.display_name,
            round(100 * singles.get(market_id, 0.0), 1),
            round(100 * profile.single_store_share, 1),
            overlap,
        )
    table.notes.append(
        "paper: 77% of Google Play apps are single-store; 20-30% of Chinese "
        "markets' apps are also in Google Play; AnZhi/OPPO/25PP exceed 20% "
        "single-store while Wandoujia/Meizu stay below 1%"
    )
    return table
