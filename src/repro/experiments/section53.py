"""Section 5.3: IDE- and app-store-introduced biases (identity study)."""

from __future__ import annotations

from repro.analysis.identity import study_identity
from repro.core.reports import FigureReport
from repro.core.study import StudyResult

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    study = study_identity(result.snapshot)
    figure = FigureReport(
        experiment_id="section53",
        title="MD5 vs (package, version, signature) identity (Section 5.3)",
        data={
            "cross_store_identity_groups": study.identity_groups,
            "md5_divergent_groups": study.md5_divergent_groups,
            "md5_divergent_apps": study.md5_divergent_apps,
            "divergence_share": study.divergence_share,
            "explained_by_channel_files": study.channel_only_groups,
            "explained_by_store_packing": study.packer_groups,
            "explained_share": study.explained_share,
            "examples": study.examples[:5],
        },
    )
    figure.notes.append(
        "paper: 546,703 apps share (package, version, developer) but differ "
        "in MD5; inspection shows only META-INF channel files (e.g. "
        "kgchannel) or store-forced packing (360 Jiagubao) differ, so the "
        "triple identity key is sound"
    )
    return figure
