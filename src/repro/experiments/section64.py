"""Section 6.4 extras: repackaged-malware share."""

from __future__ import annotations

from repro.analysis.malware import repackaged_share
from repro.core.reports import FigureReport
from repro.core.study import StudyResult

__all__ = ["run"]


def run(result: StudyResult) -> FigureReport:
    share = repackaged_share(result.vt_scan, result.all_clone_units)
    sb_only = repackaged_share(
        result.vt_scan, set(result.signature_clones.clone_units)
    )
    cb_only = repackaged_share(result.vt_scan, set(result.code_clones.clone_units))
    figure = FigureReport(
        experiment_id="section64",
        title="Repackaged malware share (Section 6.4)",
        data={
            "repackaged_share": share,
            "via_signature_clones": sb_only,
            "via_code_clones": cb_only,
            "malware_units": len(result.vt_scan.flagged_units(10)),
        },
    )
    figure.notes.append(
        "paper: only 38.3% of malware samples are repackaged apps — "
        "repackaging is no longer the dominant spreading strategy (contrast "
        "with the Android Genome Project's 86% in 2011)"
    )
    return figure
