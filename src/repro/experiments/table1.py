"""Table 1: dataset size and market features.

Measured columns (catalog size, aggregated downloads, developer counts,
unique-developer shares) come from the crawl snapshot; policy feature
flags come from the market profiles (they describe store behavior, not
measurements).  Paper values are attached for side-by-side comparison —
sizes are expected to match the paper's *proportions* at the configured
scale, not its absolute counts.
"""

from __future__ import annotations

from repro.analysis.downloads import aggregated_downloads
from repro.analysis.publishing import market_developer_counts
from repro.core.reports import TableReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, get_profile

__all__ = ["run"]

_KIND_LABEL = {
    "official": "Official",
    "web": "Web Co.",
    "vendor": "HW Vendor",
    "specialized": "Specialized",
}


def _flags(profile) -> str:
    parts = []
    parts.append("C" if profile.copyright_check else "-")
    parts.append("V" if profile.app_vetting else "-")
    parts.append("S" if profile.security_check else "-")
    parts.append("H" if profile.human_inspection else "-")
    return "".join(parts)


def _incentives(profile) -> str:
    """Table 1's three publishing-incentive columns plus transparency."""
    parts = []
    parts.append("E" if profile.incentive_exclusive else "-")  # exclusivity promo
    parts.append("Q" if profile.incentive_quality else "-")  # quality promo
    parts.append("C" if profile.incentive_editors else "-")  # editors' choice
    parts.append("P" if profile.privacy_policy_required else "-")
    parts.append("A" if profile.reports_ads else "-")
    parts.append("I" if profile.reports_iap else "-")
    return "".join(parts)


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="table1",
        title="Dataset size and market features",
        columns=(
            "market", "type", "apps", "paper_share", "downloads_B",
            "developers", "unique_dev_pct", "paper_unique_pct",
            "checks(CVSH)", "incentives(EQCPAI)", "vetting_days",
        ),
    )
    dev_stats = market_developer_counts(result.units)
    snapshot = result.snapshot
    total_listings = max(1, len(snapshot))
    paper_total = sum(get_profile(m).paper_size for m in ALL_MARKET_IDS)
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        size = snapshot.market_size(market_id)
        downloads_b = aggregated_downloads(snapshot, market_id) / 1e9
        devs = dev_stats.get(market_id, {"developers": 0.0, "unique_share": 0.0})
        vetting = (
            "-" if profile.vetting_days is None
            else f"{profile.vetting_days[0]:g}-{profile.vetting_days[1]:g}"
        )
        table.add_row(
            profile.display_name,
            _KIND_LABEL[profile.kind],
            size,
            f"{size / total_listings:.3f} vs {profile.paper_size / paper_total:.3f}",
            round(downloads_b, 3) if downloads_b else None,
            int(devs["developers"]),
            round(100 * devs["unique_share"], 1),
            profile.paper_unique_dev_pct,
            _flags(profile),
            _incentives(profile),
            vetting,
        )
    table.notes.append(
        f"scale={result.config.scale}: sizes are paper-proportional, "
        f"not absolute (paper total: 6,267,247 listings)"
    )
    table.notes.append(
        "checks: C=copyright, V=vetting, S=security check, H=human inspection"
    )
    table.notes.append(
        "incentives/transparency: E=exclusive promo, Q=quality promo, "
        "C=editors' choice, P=privacy policy required, A=reports ads, "
        "I=reports in-app purchases"
    )
    return table
