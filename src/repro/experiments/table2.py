"""Table 2: top 10 third-party libraries, Google Play vs Chinese markets."""

from __future__ import annotations

from repro.analysis.libraries import top_libraries_table
from repro.core.reports import TableReport
from repro.core.study import StudyResult

__all__ = ["run", "PAPER_TOP_GP", "PAPER_TOP_CHINESE"]

#: The paper's Table 2 (package, type, usage %).
PAPER_TOP_GP = (
    ("com.google.android.gms", "Development", 66.1),
    ("com.google.ads", "Advertisement", 62.1),
    ("com.facebook", "Social Networking", 21.5),
    ("org.apache", "Development", 20.5),
    ("com.squareup", "Payment", 13.8),
    ("com.google.gson", "Development", 12.9),
    ("com.android.vending", "Payment", 12.5),
    ("com.unity3d", "Game Engine", 11.8),
    ("org.fmod", "Game Engine", 9.6),
    ("com.google.firebase", "Development", 9.0),
)

PAPER_TOP_CHINESE = (
    ("com.google.ads", "Advertisement", 25.7),
    ("org.apache", "Development", 24.1),
    ("com.google.android.gms", "Development", 20.5),
    ("com.tencent.mm", "Social Networking", 17.3),
    ("com.baidu", "Development, Map", 16.9),
    ("com.umeng", "Analytics, Advertisement", 16.5),
    ("com.google.gson", "Development", 16.3),
    ("com.alipay", "Payment", 11.0),
    ("com.facebook", "Social Networking", 10.7),
    ("com.nostra13", "Development", 10.6),
)


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="table2",
        title="Top 10 third-party libraries (LibRadar-style detection)",
        columns=("corpus", "rank", "library", "category", "usage_pct"),
    )
    tops = top_libraries_table(result.units, result.library_detection, top_n=10)
    for corpus_name, rows in (("google_play", tops["google_play"]),
                              ("chinese", tops["chinese"])):
        for rank, (identity, usage, category) in enumerate(rows, start=1):
            table.add_row(corpus_name, rank, identity, category,
                          round(100 * usage, 1))
    table.notes.append(
        "paper top-10 (GP): " + ", ".join(f"{p} {u}%" for p, _, u in PAPER_TOP_GP)
    )
    table.notes.append(
        "paper top-10 (CN): "
        + ", ".join(f"{p} {u}%" for p, _, u in PAPER_TOP_CHINESE)
    )
    return table
