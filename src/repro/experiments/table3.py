"""Table 3: fake and cloned apps across stores."""

from __future__ import annotations

from repro.core.reports import TableReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, get_profile

__all__ = ["run"]


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="table3",
        title="Fake and cloned apps across stores (%)",
        columns=(
            "market", "fake_pct", "paper_fake", "sb_pct", "paper_sb",
            "cb_pct", "paper_cb",
        ),
    )
    fake_rates = result.fakes.market_rates(result.snapshot)
    sb_rates = result.signature_clones.market_rates(result.snapshot)
    cb_rates = result.code_clones.market_rates(result.snapshot)
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        table.add_row(
            profile.display_name,
            round(100 * fake_rates.get(market_id, 0.0), 2),
            profile.fake_rate,
            round(100 * sb_rates.get(market_id, 0.0), 2),
            profile.sb_clone_rate,
            round(100 * cb_rates.get(market_id, 0.0), 2),
            profile.cb_clone_rate,
        )
    def avg(rates):
        return round(
            100 * sum(rates.get(m, 0.0) for m in ALL_MARKET_IDS) / len(ALL_MARKET_IDS), 2
        )

    table.add_row("Average", avg(fake_rates), 0.60, avg(sb_rates), 7.24,
                  avg(cb_rates), 19.61)
    table.notes.append("SB = signature-based clones, CB = code-based (WuKong)")
    return table
