"""Table 4: percentage of apps labeled as malware, by AV-rank."""

from __future__ import annotations

from repro.analysis.malware import av_rank_rates
from repro.core.reports import TableReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, get_profile

__all__ = ["run"]


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="table4",
        title="Apps flagged as malware by AV-rank (%)",
        columns=(
            "market", "ge1_pct", "paper_ge1", "ge10_pct", "paper_ge10",
            "ge20_pct", "paper_ge20",
        ),
    )
    rates = av_rank_rates(result.snapshot, result.units, result.vt_scan)
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        market = rates.get(market_id, {1: 0.0, 10: 0.0, 20: 0.0})
        table.add_row(
            profile.display_name,
            round(100 * market[1], 2),
            profile.av1_rate,
            round(100 * market[10], 2),
            profile.av10_rate,
            round(100 * market[20], 2),
            profile.av20_rate,
        )

    def avg(threshold: int) -> float:
        return round(
            100
            * sum(rates.get(m, {threshold: 0.0})[threshold] for m in ALL_MARKET_IDS)
            / len(ALL_MARKET_IDS),
            2,
        )

    table.add_row("Average", avg(1), 36.49, avg(10), 12.30, avg(20), 3.69)
    return table
