"""Table 5: top malicious apps by AV-rank."""

from __future__ import annotations

from repro.analysis.malware import top_malware
from repro.core.reports import TableReport
from repro.core.study import StudyResult
from repro.markets.profiles import get_profile

__all__ = ["run"]

#: The paper's Table 5 families, for shape comparison.
PAPER_TOP_FAMILIES = ("eicar", "mofin", "ramnit")


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="table5",
        title="Top 10 malicious apps by AV-rank",
        columns=("package", "family", "av_rank", "markets"),
    )
    for row in top_malware(result.units, result.vt_scan, top_n=10):
        markets = ", ".join(
            get_profile(m).display_name for m in row["markets"]
        )
        table.add_row(row["package"], row["family"], row["av_rank"], markets)
    table.notes.append(
        "paper's top-10 are EICAR test files plus ramnit/mofin samples "
        "with AV-rank 44-48"
    )
    return table
