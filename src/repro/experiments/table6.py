"""Table 6: malware removal between the two crawls."""

from __future__ import annotations

from repro.core.reports import TableReport
from repro.core.study import StudyResult
from repro.markets.profiles import ALL_MARKET_IDS, get_profile

__all__ = ["run"]


def run(result: StudyResult) -> TableReport:
    table = TableReport(
        experiment_id="table6",
        title="Malware removed between crawls (%)",
        columns=(
            "market", "removed_pct", "paper_removed", "gprm_overlap",
            "gprm_removed_pct",
        ),
    )
    removal = result.removal
    for market_id in ALL_MARKET_IDS:
        profile = get_profile(market_id)
        if market_id in removal.excluded_markets:
            continue
        removed = removal.removal_share.get(market_id)
        table.add_row(
            profile.display_name,
            None if removed is None else round(100 * removed, 2),
            profile.malware_removal_rate,
            removal.gprm_overlap.get(market_id),
            (
                None
                if market_id not in removal.gprm_removed_share
                else round(100 * removal.gprm_removed_share[market_id], 2)
            ),
        )
    table.notes.append(
        f"excluded (web interface gone at 2nd crawl): "
        f"{', '.join(removal.excluded_markets) or 'none'}"
    )
    table.notes.append(
        f"GP-removed malware still hosted in >=1 Chinese market: "
        f"{100 * removal.gprm_survivor_share:.1f}% (paper: over 70%)"
    )
    return table
