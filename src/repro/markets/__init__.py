"""Market substrate: profiles, taxonomies, stores, vetting, and servers."""

from repro.markets.profiles import (
    ALL_MARKET_IDS,
    CHINESE_MARKET_IDS,
    GOOGLE_PLAY,
    MarketProfile,
    get_profile,
    iter_profiles,
)
from repro.markets.categories import (
    CANONICAL_CATEGORIES,
    MarketTaxonomy,
    taxonomy_for,
)
from repro.markets.store import Listing, MarketStore
from repro.markets.server import MarketServer
from repro.markets.vetting import VettingPipeline, VettingVerdict
from repro.markets.removal import RemovalPolicy

__all__ = [
    "ALL_MARKET_IDS",
    "CHINESE_MARKET_IDS",
    "GOOGLE_PLAY",
    "MarketProfile",
    "get_profile",
    "iter_profiles",
    "CANONICAL_CATEGORIES",
    "MarketTaxonomy",
    "taxonomy_for",
    "Listing",
    "MarketStore",
    "MarketServer",
    "VettingPipeline",
    "VettingVerdict",
    "RemovalPolicy",
]
