"""Category taxonomies.

Each market implements its own taxonomy (Google Play has 33 categories,
Huawei only 18, ...).  The paper manually consolidates them into 22
canonical categories (Figure 1).  Here the forward direction lives in
:class:`MarketTaxonomy` (canonical -> market label, used when stores
list apps) and :mod:`repro.analysis.taxonomy` implements the paper's
consolidation (market label -> canonical, used by the analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.markets.profiles import MarketProfile, get_profile

__all__ = [
    "CANONICAL_CATEGORIES",
    "OTHER_CATEGORY",
    "CANONICAL_WEIGHTS",
    "VENDOR_WEIGHTS",
    "MarketTaxonomy",
    "taxonomy_for",
]

#: The paper's consolidated taxonomy of Figure 1 (22 categories).
CANONICAL_CATEGORIES: Tuple[str, ...] = (
    "Books", "Browsers", "Business", "Communication", "Education",
    "Entertainment", "Finance", "Health", "InputMethods", "Lifestyle",
    "Location", "News", "Music", "Personalization", "Photography",
    "Security", "Shopping", "Social", "Tools", "Video", "Game",
    "Null/Other",
)

OTHER_CATEGORY = "Null/Other"

#: Baseline category mix: Games dominate (~50% in the paper across
#: markets), Lifestyle and Personalization are next; Browsers,
#: InputMethods and Security are the least popular.
CANONICAL_WEIGHTS: Dict[str, float] = {
    "Game": 0.48,
    "Lifestyle": 0.08,
    "Personalization": 0.07,
    "Tools": 0.06,
    "Education": 0.05,
    "Entertainment": 0.045,
    "Books": 0.03,
    "Video": 0.03,
    "Music": 0.025,
    "Photography": 0.02,
    "News": 0.02,
    "Shopping": 0.02,
    "Social": 0.02,
    "Business": 0.015,
    "Finance": 0.015,
    "Health": 0.015,
    "Communication": 0.015,
    "Location": 0.01,
    "Browsers": 0.005,
    "InputMethods": 0.005,
    "Security": 0.005,
    "Null/Other": 0.0,
}

#: Vendor stores (Meizu, Huawei, Lenovo) skew away from games toward
#: device-oriented utility apps, the divergence visible in Figure 1.
VENDOR_WEIGHTS: Dict[str, float] = {
    **CANONICAL_WEIGHTS,
    "Game": 0.30,
    "Tools": 0.14,
    "Personalization": 0.11,
    "Lifestyle": 0.10,
    "Communication": 0.03,
}

# Alternative market-facing label spellings keyed by canonical name.
# Chinese markets often use localized or split labels; the analysis-side
# consolidation table knows how to map every alias back.
_LABEL_ALIASES: Dict[str, Tuple[str, ...]] = {
    "Books": ("Books", "Books & Reference", "Reading", "Novels"),
    "Browsers": ("Browsers", "Browser"),
    "Business": ("Business", "Office", "Efficiency"),
    "Communication": ("Communication", "Calls & Contacts"),
    "Education": ("Education", "Learning", "Kids Education"),
    "Entertainment": ("Entertainment", "Fun", "Live Show"),
    "Finance": ("Finance", "Financial", "Investment"),
    "Health": ("Health", "Health & Fitness", "Medical"),
    "InputMethods": ("InputMethods", "Input Method", "Keyboard"),
    "Lifestyle": ("Lifestyle", "Life", "Daily Life", "Food & Drink"),
    "Location": ("Location", "Maps & Navigation", "Travel & Local"),
    "News": ("News", "News & Magazines", "Information"),
    "Music": ("Music", "Music & Audio"),
    "Personalization": ("Personalization", "Themes", "Wallpaper", "Ringtone"),
    "Photography": ("Photography", "Camera", "Photo & Video"),
    "Security": ("Security", "Antivirus", "Safety"),
    "Shopping": ("Shopping", "Online Shopping", "Group Buy"),
    "Social": ("Social", "Social Network", "Dating"),
    "Tools": ("Tools", "Utilities", "System Tools", "Productivity"),
    "Video": ("Video", "Media & Video", "Video Players"),
    "Game": ("Game", "Games", "Casual Games", "Online Games", "Arcade",
             "Puzzle", "Racing", "Strategy", "Role Playing", "Action",
             "Card", "Simulation", "Sports Games"),
}

#: Non-descriptive labels some Chinese markets report (Section 4.1's
#: "NULL or non-descriptive categories" footnote).
NULL_LABELS: Tuple[str, ...] = ("", "NULL", "Unclassified", "102229", "9999", "Other")


@dataclass(frozen=True)
class MarketTaxonomy:
    """One market's category label set and its canonical mapping."""

    market_id: str
    labels: Tuple[str, ...]
    canonical_of_label: Dict[str, str]
    label_of_canonical: Dict[str, str]

    def market_label(self, canonical: str) -> str:
        """Translate a canonical category to this market's label."""
        try:
            return self.label_of_canonical[canonical]
        except KeyError:
            raise KeyError(
                f"{self.market_id} has no label for canonical {canonical!r}"
            ) from None

    def null_label(self, rng: np.random.Generator) -> str:
        """A NULL/non-descriptive label as reported by lax markets."""
        return NULL_LABELS[int(rng.integers(0, len(NULL_LABELS)))]


def _build_taxonomy(profile: MarketProfile) -> MarketTaxonomy:
    """Deterministically derive a market's taxonomy from its profile.

    The market picks one alias per canonical category (seeded by its id),
    and markets with many categories expose extra split labels for Game.
    """
    seed_rng = np.random.default_rng(abs(hash_stable(profile.market_id)) % 2**32)
    label_of_canonical: Dict[str, str] = {}
    canonical_of_label: Dict[str, str] = {}
    for canonical in CANONICAL_CATEGORIES:
        if canonical == OTHER_CATEGORY:
            continue
        aliases = _LABEL_ALIASES[canonical]
        # Google Play uses the canonical spelling; others sample an alias.
        if profile.is_google_play:
            label = aliases[0]
        else:
            label = aliases[int(seed_rng.integers(0, len(aliases)))]
        label_of_canonical[canonical] = label
        canonical_of_label[label] = canonical
    labels = tuple(label_of_canonical.values())
    return MarketTaxonomy(
        market_id=profile.market_id,
        labels=labels,
        canonical_of_label=canonical_of_label,
        label_of_canonical=label_of_canonical,
    )


def hash_stable(text: str) -> int:
    from repro.util.rng import stable_hash64

    return stable_hash64("taxonomy", text)


_TAXONOMY_CACHE: Dict[str, MarketTaxonomy] = {}


def taxonomy_for(market_id: str) -> MarketTaxonomy:
    """Return (and cache) the taxonomy of one market."""
    if market_id not in _TAXONOMY_CACHE:
        _TAXONOMY_CACHE[market_id] = _build_taxonomy(get_profile(market_id))
    return _TAXONOMY_CACHE[market_id]


def consolidation_table() -> Dict[str, str]:
    """Full alias -> canonical table across every market and alias.

    This is the analysis-side knowledge base mirroring the paper's manual
    consolidation work; NULL-ish labels map to ``Null/Other``.
    """
    table: Dict[str, str] = {}
    for canonical, aliases in _LABEL_ALIASES.items():
        for alias in aliases:
            table[alias] = canonical
    for null_label in NULL_LABELS:
        table[null_label] = OTHER_CATEGORY
    return table
