"""Catalog evolution between crawls.

Besides removing flagged apps (see :mod:`repro.markets.removal_apply`),
stores change between the two campaigns in a mundane way: listings that
lagged behind the developer's newest release catch up as developers
re-submit.  This is what makes the second snapshot's *version upgrades*
measurable by :mod:`repro.analysis.longitudinal`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping

from repro.markets.store import MarketStore
from repro.util.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.ecosystem.world import World

__all__ = ["apply_catalog_updates", "DEFAULT_CATCHUP_PROBABILITY"]

#: Chance that a lagged listing catches up to the newest version over
#: the eight months between campaigns.
DEFAULT_CATCHUP_PROBABILITY = 0.35


def apply_catalog_updates(
    stores: Mapping[str, MarketStore],
    world: "World",
    rngs: RngFactory,
    catchup_probability: float = DEFAULT_CATCHUP_PROBABILITY,
) -> Dict[str, int]:
    """Advance lagged listings to the latest version; returns per-market
    counts of updated listings."""
    updated: Dict[str, int] = {}
    for market_id, store in stores.items():
        rng = rngs.stream("catalog-updates", market_id)
        count = 0
        for app in world.apps:
            placement = app.placements.get(market_id)
            if placement is None:
                continue
            latest = app.latest_version_index
            if placement.version_index >= latest:
                continue
            if rng.random() >= catchup_probability:
                continue
            version = app.versions[latest]
            if store.update_listing_version(app.package, latest, version):
                placement.version_index = latest
                count += 1
        updated[market_id] = count
    return updated
