"""Catalog evolution between crawls.

Besides removing flagged apps (see :mod:`repro.markets.removal_apply`),
stores change between the two campaigns in a mundane way: listings that
lagged behind the developer's newest release catch up as developers
re-submit.  This is what makes the second snapshot's *version upgrades*
measurable by :mod:`repro.analysis.longitudinal`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping

from repro.markets.store import MarketStore
from repro.util.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.ecosystem.world import World

__all__ = ["apply_catalog_updates", "DEFAULT_CATCHUP_PROBABILITY"]

#: Chance that a lagged listing catches up to the newest version over
#: the eight months between campaigns.
DEFAULT_CATCHUP_PROBABILITY = 0.35


def apply_catalog_updates(
    stores: Mapping[str, MarketStore],
    world: "World",
    rngs: RngFactory,
    catchup_probability: float = DEFAULT_CATCHUP_PROBABILITY,
) -> Dict[str, int]:
    """Advance lagged listings to the latest version; returns per-market
    counts of updated listings.

    One pass over ``world.apps`` (a streaming cursor on the spilled
    backend) visits every placement; each market draws from its own
    named RNG stream in app order, so the catch-up decisions are
    bit-identical to the older one-scan-per-market formulation at any
    backend.  Mutated blueprints are written back through the world so
    the change persists on the spilled backend (in-memory lists alias,
    making write-back a no-op there).
    """
    updated: Dict[str, int] = {m: 0 for m in stores}
    streams = {m: rngs.stream("catalog-updates", m) for m in stores}
    for app in world.apps:
        latest = app.latest_version_index
        dirty = False
        for market_id in app.placements:
            store = stores.get(market_id)
            if store is None:
                continue
            placement = app.placements[market_id]
            if placement.version_index >= latest:
                continue
            if streams[market_id].random() >= catchup_probability:
                continue
            version = app.versions[latest]
            if store.update_listing_version(app.package, latest, version):
                placement.version_index = latest
                updated[market_id] += 1
                dirty = True
        if dirty:
            world.write_back(app)
    return updated
