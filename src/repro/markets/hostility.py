"""Composable hostile-market behaviors.

The paper's crawl was hardest where markets fought back: Google Play's
rate limiting forced the AndroZoo backfill, Tencent's API speaks
protobuf behind a login token, and several stores ban scraper IPs
outright.  :class:`HostilityPolicy` describes which of four behaviors a
market enables and :class:`HostileGate` enforces them in front of the
normal endpoint dispatch:

``auth``
    ``/login`` issues expiring session tokens; every other endpoint
    answers 401 to a missing, stale, or expired ``authorization``
    header.
``binary``
    Successful JSON endpoint payloads are re-encoded with the
    deterministic binary wire format (:mod:`repro.net.wire`); the
    client transparently decodes them.
``antibot``
    Request velocity is tracked per client identity (the
    ``x-client-ip``/``user-agent`` header pair).  Exceeding the window
    limit escalates: first *tarpit* 429s with growing ``retry_after``
    hints, then 403 bans whose windows double with every repeat
    offense (see DESIGN.md's ban-escalation state machine).
``package_list``
    Catalog browsing (``/categories``, ``/category``, ``/index``,
    ``/index_size``) answers a policy 403 (no ``retry_after``); the
    only enumeration offered is the paged ``/packages`` name list.

Time: the gate reads the client's ``x-sim-time`` header (its lane-clock
``now``) and falls back to the server's shared clock.  The shared
campaign clock is frozen mid-campaign — lane back-off is what moves
simulated time — so keying velocity windows, token expiry, and ban
windows on lane time is what lets a tarpitted client *wait its way
back to good standing* deterministically.

All gate state (sessions, per-identity velocity/ban records, counters)
exports to and restores from the checkpoint journal, so a campaign
killed mid-ban resumes bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.net import wire
from repro.net.http import HTTP_OK, Request, Response
from repro.util.rng import stable_hash32

__all__ = ["HostilityPolicy", "HostileGate", "HOSTILITY_BEHAVIORS"]

#: The composable behavior names (profile archetypes / CLI spec tokens).
HOSTILITY_BEHAVIORS = ("auth", "binary", "antibot", "package_list")

#: Default session-token lifetime (simulated days).
DEFAULT_TOKEN_TTL = 3.0


@dataclass(frozen=True)
class HostilityPolicy:
    """Which hostile behaviors one market enables, and their tuning."""

    auth: bool = False
    token_ttl: float = DEFAULT_TOKEN_TTL
    binary: bool = False
    antibot: bool = False
    #: Requests one identity may issue per ``velocity_window`` sim-days.
    velocity_limit: int = 25
    velocity_window: float = 0.02
    #: Over-limit strikes answered with tarpit 429s before bans begin.
    tarpit_strikes: int = 2
    #: Base tarpit ``retry_after`` (scaled by the strike count).  The
    #: default equals the window so an honored tarpit clears it.
    tarpit_delay: float = 0.02
    #: First ban window (sim days); doubles per repeat, capped.
    ban_base: float = 0.25
    ban_cap: float = 8.0
    #: Quiet period (sim days) after which an identity's offense record
    #: decays back to zero: a crawler that honors its bans restarts
    #: escalation at tarpits instead of compounding toward ``ban_cap``.
    #: ``None`` means one ``ban_base`` window.
    ban_decay: Optional[float] = None
    package_list_only: bool = False
    package_page_size: int = 50

    def __post_init__(self) -> None:
        if self.token_ttl <= 0:
            raise ValueError(f"token_ttl must be positive, got {self.token_ttl}")
        if self.velocity_limit < 1:
            raise ValueError("velocity_limit must be positive")
        if self.velocity_window <= 0 or self.tarpit_delay <= 0:
            raise ValueError("velocity_window and tarpit_delay must be positive")
        if self.tarpit_strikes < 0:
            raise ValueError("tarpit_strikes must be non-negative")
        if self.ban_base <= 0 or self.ban_cap < self.ban_base:
            raise ValueError("need 0 < ban_base <= ban_cap")
        if self.ban_decay is not None and self.ban_decay <= 0:
            raise ValueError(f"ban_decay must be positive, got {self.ban_decay}")
        if self.package_page_size < 1:
            raise ValueError("package_page_size must be positive")

    @property
    def offense_decay(self) -> float:
        """The effective decay period (``ban_decay`` or ``ban_base``)."""
        return self.ban_decay if self.ban_decay is not None else self.ban_base

    @property
    def active(self) -> bool:
        return self.auth or self.binary or self.antibot or self.package_list_only

    @property
    def behaviors(self) -> Tuple[str, ...]:
        """The enabled behavior names, in canonical order."""
        flags = {
            "auth": self.auth,
            "binary": self.binary,
            "antibot": self.antibot,
            "package_list": self.package_list_only,
        }
        return tuple(name for name in HOSTILITY_BEHAVIORS if flags[name])

    def describe(self) -> str:
        return "+".join(self.behaviors) or "none"

    @classmethod
    def full(cls, **overrides) -> "HostilityPolicy":
        """All four behaviors on (the fully hostile market)."""
        base = cls(auth=True, binary=True, antibot=True, package_list_only=True)
        return replace(base, **overrides) if overrides else base

    @classmethod
    def for_behaviors(cls, names, **overrides) -> "HostilityPolicy":
        """A policy enabling exactly the named behaviors."""
        names = tuple(names)
        unknown = [n for n in names if n not in HOSTILITY_BEHAVIORS]
        if unknown:
            raise ValueError(
                f"unknown hostility behaviors {unknown}; "
                f"valid: {HOSTILITY_BEHAVIORS}"
            )
        return replace(
            cls(
                auth="auth" in names,
                binary="binary" in names,
                antibot="antibot" in names,
                package_list_only="package_list" in names,
            ),
            **overrides,
        )

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> Optional["HostilityPolicy"]:
        """Parse a CLI spec: comma-separated behaviors, ``full``/``all``,
        or ``none``/empty for no hostility.  ``bans`` and ``package-list``
        are accepted aliases."""
        if spec is None:
            return None
        tokens = [t.strip() for t in spec.split(",") if t.strip()]
        if not tokens or tokens == ["none"]:
            return None
        if tokens in (["full"], ["all"]):
            return cls.full()
        aliases = {"bans": "antibot", "package-list": "package_list"}
        return cls.for_behaviors(tuple(aliases.get(t, t) for t in tokens))


class HostileGate:
    """Enforces one market's :class:`HostilityPolicy` per request.

    Owned by the :class:`~repro.markets.server.MarketServer`, consulted
    after fault injection and before endpoint dispatch.  Deterministic:
    its decisions depend only on the policy, the request stream (paths,
    identity headers, client-stamped sim time), and its own exported
    state — never on wall clocks or iteration order.
    """

    LOGIN_PATH = "/login"

    #: Browsing endpoints a package-list-only market refuses outright.
    ENUMERATION_PATHS = frozenset(
        {"/categories", "/category", "/index", "/index_size"}
    )

    def __init__(self, market_id: str, policy: HostilityPolicy):
        self._market_id = market_id
        self.policy = policy
        #: token -> expiry (sim day)
        self._sessions: Dict[str, float] = {}
        self._login_seq = 0
        #: identity key -> velocity/ban record (JSON-safe dict)
        self._clients: Dict[str, Dict[str, float]] = {}
        self.logins = 0
        self.rejected_401 = 0
        self.tarpits = 0
        self.bans = 0
        self.rejected_403 = 0
        self.served_binary = 0

    # -- identity ----------------------------------------------------------

    @staticmethod
    def client_key(request: Request) -> str:
        """The identity anti-bot velocity is keyed on (IP + UA pair)."""
        return (
            f"{request.header('x-client-ip', '-')}"
            f"|{request.header('user-agent', '-')}"
        )

    def _fresh_client(self, now: float) -> Dict[str, float]:
        return {
            "window_start": now,
            "count": 0,
            "strikes": 0,
            "ban_until": -1.0,
            "ban_count": 0,
            "last_offense": -1.0,
        }

    # -- the request path --------------------------------------------------

    def screen(self, request: Request, now: float) -> Optional[Response]:
        """The pre-dispatch check: a denial response, or None to pass."""
        if self.policy.antibot:
            denied = self._antibot(request, now)
            if denied is not None:
                return denied
        if request.path == self.LOGIN_PATH:
            return None  # the login endpoint is the auth bootstrap
        if self.policy.package_list_only and request.path in self.ENUMERATION_PATHS:
            self.rejected_403 += 1
            return Response.forbidden()  # policy 403: waiting never helps
        if self.policy.auth:
            token = request.header("authorization")
            expiry = self._sessions.get(token) if token else None
            if expiry is None or now >= expiry:
                self.rejected_401 += 1
                return Response.unauthorized()
        return None

    def _antibot(self, request: Request, now: float) -> Optional[Response]:
        policy = self.policy
        key = self.client_key(request)
        state = self._clients.get(key)
        if state is None:
            state = self._clients[key] = self._fresh_client(now)
        if now < state["ban_until"]:
            self.rejected_403 += 1
            return Response.forbidden(retry_after=state["ban_until"] - now)
        if now - state["window_start"] >= policy.velocity_window:
            state["window_start"] = now
            state["count"] = 0
        state["count"] += 1
        if state["count"] <= policy.velocity_limit:
            return None
        # Over the velocity limit: escalate, and reset the window so the
        # next over-limit requires another full burst.
        state["count"] = 0
        state["window_start"] = now
        last_offense = state["last_offense"]
        state["last_offense"] = now
        if last_offense >= 0 and now - last_offense >= policy.offense_decay:
            # The identity stayed clean for a full decay period (e.g. it
            # honored its last ban): reputation recovers and escalation
            # restarts at tarpits rather than compounding forever.
            state["strikes"] = 0
            state["ban_count"] = 0
        if state["ban_count"] == 0 and state["strikes"] < policy.tarpit_strikes:
            state["strikes"] += 1
            self.tarpits += 1
            return Response.rate_limited(
                retry_after=policy.tarpit_delay * state["strikes"]
            )
        # Tarpits exhausted (or a prior ban): ban, doubling per offense.
        state["strikes"] = 0
        state["ban_count"] += 1
        window = min(
            policy.ban_base * (2.0 ** (state["ban_count"] - 1)), policy.ban_cap
        )
        state["ban_until"] = now + window
        self.bans += 1
        return Response.forbidden(retry_after=window)

    def login(self, request: Request, now: float) -> Response:
        """Issue a fresh session token (the ``/login`` endpoint)."""
        if not self.policy.auth:
            return Response.not_found()
        # Prune expired sessions so the table stays bounded; iteration
        # order does not matter (pure filter), determinism is safe.
        self._sessions = {
            token: expiry for token, expiry in self._sessions.items()
            if expiry > now
        }
        self._login_seq += 1
        token = (
            f"{self._market_id}-{self._login_seq:06d}-"
            f"{stable_hash32('session', self._market_id, self._login_seq):08x}"
        )
        self._sessions[token] = now + self.policy.token_ttl
        self.logins += 1
        return Response.json_ok({"token": token, "ttl": self.policy.token_ttl})

    def finalize(self, path: str, response: Response) -> Response:
        """Post-dispatch: binary-encode successful JSON payloads."""
        if (
            self.policy.binary
            and path != self.LOGIN_PATH
            and response.status == HTTP_OK
            and not response.malformed
            and response.body is None
        ):
            self.served_binary += 1
            return Response(status=HTTP_OK, body=wire.encode(response.json))
        return response

    # -- checkpoint plumbing ----------------------------------------------

    def export_state(self) -> dict:
        return {
            "sessions": dict(self._sessions),
            "login_seq": self._login_seq,
            "clients": {key: dict(state) for key, state in self._clients.items()},
            "logins": self.logins,
            "rejected_401": self.rejected_401,
            "tarpits": self.tarpits,
            "bans": self.bans,
            "rejected_403": self.rejected_403,
            "served_binary": self.served_binary,
        }

    def restore_state(self, state: dict) -> None:
        self._sessions = {
            str(token): float(expiry)
            for token, expiry in state["sessions"].items()
        }
        self._login_seq = int(state["login_seq"])
        self._clients = {
            str(key): {
                "window_start": float(record["window_start"]),
                "count": int(record["count"]),
                "strikes": int(record["strikes"]),
                "ban_until": float(record["ban_until"]),
                "ban_count": int(record["ban_count"]),
                "last_offense": float(record["last_offense"]),
            }
            for key, record in state["clients"].items()
        }
        self.logins = int(state["logins"])
        self.rejected_401 = int(state["rejected_401"])
        self.tarpits = int(state["tarpits"])
        self.bans = int(state["bans"])
        self.rejected_403 = int(state["rejected_403"])
        self.served_binary = int(state["served_binary"])
