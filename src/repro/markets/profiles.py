"""Profiles of Google Play and the 16 Chinese app markets.

Each :class:`MarketProfile` combines two kinds of data:

* **Policy features** from the paper's Table 1 and Section 2 — openness,
  copyright checks, vetting, incentives, transparency — which drive the
  behavior of the simulated store (vetting pipeline, metadata reporting,
  the 360 obfuscation requirement, ...).
* **Calibration targets** from the paper's measurements (Figure 2's
  download matrix, Table 3/4/6 misbehavior and removal rates, Figure 9's
  version freshness, Section 5.2's single-store shares), used by the
  ecosystem generator to synthesize a world whose measured statistics
  land near the paper's.

The analysis code never reads these targets; it measures the crawled
corpus.  Experiments render paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "MarketProfile",
    "GOOGLE_PLAY",
    "ALL_MARKET_IDS",
    "CHINESE_MARKET_IDS",
    "get_profile",
    "iter_profiles",
    "DOWNLOAD_BIN_LABELS",
    "DOWNLOAD_BIN_EDGES",
]

#: Download bins used by Google Play's install ranges and Figure 2.
DOWNLOAD_BIN_LABELS = ("0-10", "10-100", "100-1K", "1K-10K", "10K-100K", "100K-1M", ">1M")
DOWNLOAD_BIN_EDGES = (0, 10, 100, 1_000, 10_000, 100_000, 1_000_000)

GOOGLE_PLAY = "google_play"


@dataclass(frozen=True)
class MarketProfile:
    """Static description of one app market."""

    market_id: str
    display_name: str
    kind: str  # "official" | "web" | "vendor" | "specialized"

    # ---- Table 1: dataset size & policy features -------------------------
    paper_size: int
    paper_downloads_billions: Optional[float]
    paper_developers: int
    paper_unique_dev_pct: float
    openness: str  # "open" | "partial" | "companies_only"
    copyright_check: bool
    app_vetting: bool
    security_check: bool
    human_inspection: bool
    vetting_days: Optional[Tuple[float, float]]
    quality_rating: bool
    incentive_exclusive: bool
    incentive_quality: bool
    incentive_editors: bool
    privacy_policy_required: bool
    reports_ads: bool
    reports_iap: bool

    # ---- metadata reporting behavior -------------------------------------
    reports_downloads: bool
    download_style: str  # "bins" | "exact"
    download_bin_shares: Tuple[float, ...]  # Figure 2 row (7 shares, sum<=1)
    unrated_share: float  # share of listings without user ratings
    default_rating: Optional[float]  # PC Online reports 3.0 for unrated apps
    rating_high_bias: float  # 0..1, how top-heavy nonzero ratings are
    category_null_share: float  # share of listings with NULL/garbage category
    n_categories: int  # size of the market's own taxonomy

    # ---- store behavior ----------------------------------------------------
    requires_obfuscation: bool  # 360 Jiagubao requirement
    channel_file: Optional[str]  # META-INF channel marker name
    crawl_strategy: str  # "bfs_related" | "int_index" | "category_pages"
    apk_rate_limited: bool  # Google Play limited APK downloads
    discontinued_at_second_crawl: bool  # HiApk shut down by end of 2017
    app_only_at_second_crawl: bool  # OPPO became app-only

    # ---- calibration targets (paper measurements) -------------------------
    highest_version_share: float  # Figure 9
    single_store_share: float  # Section 5.2
    fake_rate: float  # Table 3, %
    sb_clone_rate: float  # Table 3, %
    cb_clone_rate: float  # Table 3, %
    av1_rate: float  # Table 4, % flagged by >=1 engines
    av10_rate: float  # Table 4, % flagged by >=10
    av20_rate: float  # Table 4, % flagged by >=20
    malware_removal_rate: Optional[float]  # Table 6, % (None if excluded)
    tpl_presence: float  # Figure 5a, share of apps with any TPL
    tpl_avg_count: float  # Figure 5a, average #TPLs per app
    adlib_presence: float  # Figure 5b
    vet_catch: float  # share of overtly malicious submissions rejected

    #: Hostility behaviors this market exhibits toward crawlers when the
    #: study opts in (``--hostility profile``); names from
    #: :data:`repro.markets.hostility.HOSTILITY_BEHAVIORS`.  Markets
    #: stay perfectly polite unless the study turns hostility on.
    hostility: Tuple[str, ...] = ()

    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def is_google_play(self) -> bool:
        return self.market_id == GOOGLE_PLAY

    @property
    def is_chinese(self) -> bool:
        return not self.is_google_play

    def __post_init__(self) -> None:
        if len(self.download_bin_shares) != len(DOWNLOAD_BIN_LABELS):
            raise ValueError(
                f"{self.market_id}: need {len(DOWNLOAD_BIN_LABELS)} bin shares"
            )
        total = sum(self.download_bin_shares)
        if total > 1.005:
            raise ValueError(f"{self.market_id}: bin shares sum to {total} > 1")
        if self.kind not in ("official", "web", "vendor", "specialized"):
            raise ValueError(f"{self.market_id}: bad kind {self.kind!r}")
        from repro.markets.hostility import HOSTILITY_BEHAVIORS

        for behavior in self.hostility:
            if behavior not in HOSTILITY_BEHAVIORS:
                raise ValueError(
                    f"{self.market_id}: unknown hostility behavior {behavior!r}"
                )


def _pct(*values: float) -> Tuple[float, ...]:
    """Convert Figure 2 percentages to shares."""
    return tuple(v / 100.0 for v in values)


_PROFILES: Dict[str, MarketProfile] = {}


def _register(profile: MarketProfile) -> None:
    if profile.market_id in _PROFILES:
        raise ValueError(f"duplicate market id {profile.market_id}")
    _PROFILES[profile.market_id] = profile


_register(MarketProfile(
    market_id=GOOGLE_PLAY, display_name="Google Play", kind="official",
    paper_size=2_031_946, paper_downloads_billions=193.0,
    paper_developers=538_283, paper_unique_dev_pct=57.04,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=True, vetting_days=(0.2, 0.5),
    quality_rating=True, incentive_exclusive=False, incentive_quality=True,
    incentive_editors=True, privacy_policy_required=True,
    reports_ads=True, reports_iap=True,
    reports_downloads=True, download_style="bins",
    download_bin_shares=_pct(4.05, 17.90, 30.52, 25.38, 15.15, 5.62, 1.21),
    unrated_share=0.093, default_rating=None, rating_high_bias=0.80,
    category_null_share=0.0, n_categories=33,
    requires_obfuscation=False, channel_file=None,
    crawl_strategy="bfs_related", apk_rate_limited=True,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.954, single_store_share=0.77,
    fake_rate=0.03, sb_clone_rate=4.01, cb_clone_rate=17.82,
    av1_rate=17.03, av10_rate=2.09, av20_rate=0.32,
    malware_removal_rate=84.0,
    tpl_presence=0.94, tpl_avg_count=8.0, adlib_presence=0.70,
    vet_catch=0.93,
))

_register(MarketProfile(
    market_id="tencent", display_name="Tencent Myapp", kind="web",
    paper_size=636_265, paper_downloads_billions=82.0,
    paper_developers=294_950, paper_unique_dev_pct=10.61,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=True, vetting_days=(1.0, 1.0),
    quality_rating=True, incentive_exclusive=True, incentive_quality=True,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=True, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(55.87, 12.37, 15.50, 10.38, 4.21, 1.21, 0.35),
    unrated_share=0.82, default_rating=None, rating_high_bias=0.55,
    category_null_share=0.40, n_categories=24,
    requires_obfuscation=False, channel_file="META-INF/txchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.894, single_store_share=0.15,
    fake_rate=0.53, sb_clone_rate=8.24, cb_clone_rate=22.73,
    av1_rate=34.15, av10_rate=11.16, av20_rate=3.45,
    malware_removal_rate=8.75,
    tpl_presence=0.92, tpl_avg_count=13.0, adlib_presence=0.55,
    vet_catch=0.30,
    hostility=("auth", "binary"),
))

_register(MarketProfile(
    market_id="baidu", display_name="Baidu Market", kind="web",
    paper_size=227_454, paper_downloads_billions=94.0,
    paper_developers=107_698, paper_unique_dev_pct=15.10,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=False, vetting_days=(1.0, 3.0),
    quality_rating=False, incentive_exclusive=True, incentive_quality=False,
    incentive_editors=False, privacy_policy_required=False,
    reports_ads=True, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.00, 34.98, 25.91, 23.21, 7.65, 5.40, 2.26),
    unrated_share=0.55, default_rating=None, rating_high_bias=0.60,
    category_null_share=0.0, n_categories=22,
    requires_obfuscation=False, channel_file="META-INF/bdchannel",
    crawl_strategy="int_index", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.529, single_store_share=0.10,
    fake_rate=0.48, sb_clone_rate=10.98, cb_clone_rate=17.38,
    av1_rate=42.77, av10_rate=12.24, av20_rate=3.30,
    malware_removal_rate=23.99,
    tpl_presence=0.91, tpl_avg_count=12.0, adlib_presence=0.54,
    vet_catch=0.28,
    hostility=("antibot",),
    extra={"crawls_google_play": True},
))

_register(MarketProfile(
    market_id="market360", display_name="360 Market", kind="web",
    paper_size=163_121, paper_downloads_billions=50.0,
    paper_developers=90_226, paper_unique_dev_pct=6.80,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=False, vetting_days=(1.0, 1.0),
    quality_rating=True, incentive_exclusive=True, incentive_quality=True,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=True, reports_iap=True,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(16.54, 16.08, 19.25, 25.79, 12.78, 7.24, 1.97),
    unrated_share=0.50, default_rating=None, rating_high_bias=0.60,
    category_null_share=0.40, n_categories=20,
    requires_obfuscation=True, channel_file="META-INF/qhchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.825, single_store_share=0.08,
    fake_rate=0.50, sb_clone_rate=5.43, cb_clone_rate=23.26,
    av1_rate=41.40, av10_rate=12.35, av20_rate=3.10,
    malware_removal_rate=43.0,
    tpl_presence=0.93, tpl_avg_count=20.0, adlib_presence=0.58,
    vet_catch=0.30,
    hostility=("auth", "antibot"),
))

_register(MarketProfile(
    market_id="oppo", display_name="OPPO Market", kind="vendor",
    paper_size=426_419, paper_downloads_billions=57.0,
    paper_developers=209_197, paper_unique_dev_pct=14.37,
    openness="partial", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=True, vetting_days=(1.0, 3.0),
    quality_rating=False, incentive_exclusive=True, incentive_quality=False,
    incentive_editors=False, privacy_policy_required=False,
    reports_ads=True, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.00, 0.00, 84.31, 10.47, 3.16, 1.55, 0.43),
    unrated_share=0.83, default_rating=None, rating_high_bias=0.55,
    category_null_share=0.40, n_categories=19,
    requires_obfuscation=False, channel_file="META-INF/oppochannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=True,
    highest_version_share=0.902, single_store_share=0.22,
    fake_rate=0.38, sb_clone_rate=5.85, cb_clone_rate=20.94,
    av1_rate=42.97, av10_rate=16.43, av20_rate=6.00,
    malware_removal_rate=None,
    tpl_presence=0.90, tpl_avg_count=12.0, adlib_presence=0.52,
    vet_catch=0.20,
))

_register(MarketProfile(
    market_id="xiaomi", display_name="Xiaomi Market", kind="vendor",
    paper_size=91_190, paper_downloads_billions=None,
    paper_developers=55_669, paper_unique_dev_pct=5.78,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=True, vetting_days=(1.0, 3.0),
    quality_rating=False, incentive_exclusive=False, incentive_quality=False,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=False, reports_iap=False,
    reports_downloads=False, download_style="exact",
    download_bin_shares=_pct(0, 0, 0, 0, 0, 0, 0),
    unrated_share=0.45, default_rating=None, rating_high_bias=0.62,
    category_null_share=0.0, n_categories=20,
    requires_obfuscation=False, channel_file="META-INF/michannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.639, single_store_share=0.06,
    fake_rate=0.0, sb_clone_rate=8.00, cb_clone_rate=20.11,
    av1_rate=55.11, av10_rate=9.12, av20_rate=1.82,
    malware_removal_rate=32.50,
    tpl_presence=0.91, tpl_avg_count=13.0, adlib_presence=0.53,
    vet_catch=0.35,
    hostility=("binary",),
))

_register(MarketProfile(
    market_id="meizu", display_name="MeiZu Market", kind="vendor",
    paper_size=80_573, paper_downloads_billions=19.0,
    paper_developers=50_451, paper_unique_dev_pct=0.58,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=True, vetting_days=(1.0, 3.0),
    quality_rating=False, incentive_exclusive=False, incentive_quality=False,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=False, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(7.63, 13.50, 45.37, 19.54, 7.97, 4.28, 1.42),
    unrated_share=0.50, default_rating=None, rating_high_bias=0.62,
    category_null_share=0.0, n_categories=18,
    requires_obfuscation=False, channel_file="META-INF/mzchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.691, single_store_share=0.008,
    fake_rate=1.14, sb_clone_rate=6.65, cb_clone_rate=18.42,
    av1_rate=51.40, av10_rate=10.70, av20_rate=3.14,
    malware_removal_rate=29.18,
    tpl_presence=0.90, tpl_avg_count=12.0, adlib_presence=0.52,
    vet_catch=0.30,
))

_register(MarketProfile(
    market_id="huawei", display_name="Huawei Market", kind="vendor",
    paper_size=51_303, paper_downloads_billions=83.0,
    paper_developers=32_927, paper_unique_dev_pct=5.66,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=True, vetting_days=(3.0, 5.0),
    quality_rating=False, incentive_exclusive=True, incentive_quality=True,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=True, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.10, 0.00, 38.05, 27.33, 17.64, 11.73, 4.16),
    unrated_share=0.35, default_rating=None, rating_high_bias=0.68,
    category_null_share=0.0, n_categories=18,
    requires_obfuscation=False, channel_file="META-INF/hwchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.727, single_store_share=0.05,
    fake_rate=0.33, sb_clone_rate=11.54, cb_clone_rate=18.76,
    av1_rate=57.48, av10_rate=4.71, av20_rate=0.57,
    malware_removal_rate=26.92,
    tpl_presence=0.92, tpl_avg_count=13.0, adlib_presence=0.54,
    vet_catch=0.62,
    hostility=("package_list",),
))

_register(MarketProfile(
    market_id="lenovo", display_name="Lenovo MM", kind="vendor",
    paper_size=37_716, paper_downloads_billions=24.0,
    paper_developers=24_565, paper_unique_dev_pct=0.79,
    openness="companies_only", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=False, vetting_days=(2.0, 2.0),
    quality_rating=False, incentive_exclusive=False, incentive_quality=False,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=False, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.04, 14.70, 0.00, 53.54, 16.78, 11.02, 3.19),
    unrated_share=0.40, default_rating=None, rating_high_bias=0.64,
    category_null_share=0.0, n_categories=19,
    requires_obfuscation=False, channel_file="META-INF/lnchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.604, single_store_share=0.04,
    fake_rate=0.67, sb_clone_rate=7.81, cb_clone_rate=16.37,
    av1_rate=54.20, av10_rate=7.53, av20_rate=1.52,
    malware_removal_rate=22.75,
    tpl_presence=0.90, tpl_avg_count=12.0, adlib_presence=0.52,
    vet_catch=0.50,
))

_register(MarketProfile(
    market_id="pp25", display_name="25PP", kind="specialized",
    paper_size=1_013_208, paper_downloads_billions=56.0,
    paper_developers=470_073, paper_unique_dev_pct=19.06,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=False, vetting_days=(1.0, 3.0),
    quality_rating=False, incentive_exclusive=True, incentive_quality=True,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=True, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.27, 4.63, 68.02, 20.34, 4.82, 1.49, 0.37),
    unrated_share=0.85, default_rating=None, rating_high_bias=0.55,
    category_null_share=0.40, n_categories=23,
    requires_obfuscation=False, channel_file="META-INF/ppchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.918, single_store_share=0.21,
    fake_rate=0.35, sb_clone_rate=7.16, cb_clone_rate=24.08,
    av1_rate=32.36, av10_rate=8.26, av20_rate=2.06,
    malware_removal_rate=19.63,
    tpl_presence=0.89, tpl_avg_count=12.0, adlib_presence=0.52,
    vet_catch=0.22,
))

_register(MarketProfile(
    market_id="wandoujia", display_name="Wandoujia", kind="specialized",
    paper_size=554_138, paper_downloads_billions=38.0,
    paper_developers=291_114, paper_unique_dev_pct=0.97,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=False, vetting_days=(1.0, 3.0),
    quality_rating=False, incentive_exclusive=True, incentive_quality=False,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=False, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(1.96, 4.74, 43.66, 35.24, 12.17, 1.77, 0.38),
    unrated_share=0.60, default_rating=None, rating_high_bias=0.60,
    category_null_share=0.0, n_categories=21,
    requires_obfuscation=False, channel_file="META-INF/wdjchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.900, single_store_share=0.008,
    fake_rate=0.39, sb_clone_rate=5.98, cb_clone_rate=21.23,
    av1_rate=31.99, av10_rate=7.98, av20_rate=2.19,
    malware_removal_rate=34.51,
    tpl_presence=0.91, tpl_avg_count=12.0, adlib_presence=0.53,
    vet_catch=0.30,
))

_register(MarketProfile(
    market_id="hiapk", display_name="HiApk", kind="specialized",
    paper_size=246_023, paper_downloads_billions=17.0,
    paper_developers=115_191, paper_unique_dev_pct=3.65,
    openness="open", copyright_check=False, app_vetting=False,
    security_check=False, human_inspection=False, vetting_days=None,
    quality_rating=False, incentive_exclusive=False, incentive_quality=False,
    incentive_editors=False, privacy_policy_required=False,
    reports_ads=False, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.00, 0.00, 78.24, 13.15, 5.93, 2.05, 0.53),
    unrated_share=0.65, default_rating=None, rating_high_bias=0.58,
    category_null_share=0.0, n_categories=20,
    requires_obfuscation=False, channel_file="META-INF/hichannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=True, app_only_at_second_crawl=False,
    highest_version_share=0.666, single_store_share=0.09,
    fake_rate=0.64, sb_clone_rate=7.51, cb_clone_rate=20.08,
    av1_rate=41.89, av10_rate=11.12, av20_rate=2.72,
    malware_removal_rate=None,
    tpl_presence=0.89, tpl_avg_count=12.0, adlib_presence=0.52,
    vet_catch=0.0,
))

_register(MarketProfile(
    market_id="anzhi", display_name="AnZhi Market", kind="specialized",
    paper_size=223_043, paper_downloads_billions=12.0,
    paper_developers=74_145, paper_unique_dev_pct=21.93,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=True, vetting_days=(1.0, 3.0),
    quality_rating=False, incentive_exclusive=False, incentive_quality=False,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=False, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.10, 1.35, 49.72, 42.83, 4.86, 0.84, 0.23),
    unrated_share=0.70, default_rating=None, rating_high_bias=0.58,
    category_null_share=0.0, n_categories=21,
    requires_obfuscation=False, channel_file="META-INF/azchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.759, single_store_share=0.22,
    fake_rate=0.57, sb_clone_rate=4.92, cb_clone_rate=20.71,
    av1_rate=55.32, av10_rate=11.37, av20_rate=2.41,
    malware_removal_rate=27.61,
    tpl_presence=0.90, tpl_avg_count=12.0, adlib_presence=0.52,
    vet_catch=0.18,
))

_register(MarketProfile(
    market_id="liqu", display_name="LIQU", kind="specialized",
    paper_size=179_147, paper_downloads_billions=26.0,
    paper_developers=101_336, paper_unique_dev_pct=6.10,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=False, vetting_days=None,
    quality_rating=False, incentive_exclusive=False, incentive_quality=False,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=False, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.01, 0.03, 0.01, 71.83, 22.32, 5.14, 0.61),
    unrated_share=0.60, default_rating=None, rating_high_bias=0.58,
    category_null_share=0.0, n_categories=20,
    requires_obfuscation=False, channel_file="META-INF/lqchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.797, single_store_share=0.09,
    fake_rate=0.40, sb_clone_rate=5.32, cb_clone_rate=16.68,
    av1_rate=45.91, av10_rate=13.00, av20_rate=4.27,
    malware_removal_rate=14.08,
    tpl_presence=0.89, tpl_avg_count=12.0, adlib_presence=0.52,
    vet_catch=0.12,
))

_register(MarketProfile(
    market_id="pconline", display_name="PC Online", kind="specialized",
    paper_size=134_863, paper_downloads_billions=0.2,
    paper_developers=65_225, paper_unique_dev_pct=2.58,
    openness="open", copyright_check=False, app_vetting=False,
    security_check=False, human_inspection=False, vetting_days=None,
    quality_rating=False, incentive_exclusive=False, incentive_quality=False,
    incentive_editors=False, privacy_policy_required=False,
    reports_ads=False, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(13.07, 74.19, 8.62, 2.98, 0.91, 0.21, 0.02),
    unrated_share=0.75, default_rating=3.0, rating_high_bias=0.50,
    category_null_share=0.0, n_categories=19,
    requires_obfuscation=False, channel_file="META-INF/pcchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.841, single_store_share=0.12,
    fake_rate=1.89, sb_clone_rate=8.60, cb_clone_rate=23.34,
    av1_rate=55.93, av10_rate=24.01, av20_rate=8.37,
    malware_removal_rate=0.01,
    tpl_presence=0.85, tpl_avg_count=11.0, adlib_presence=0.50,
    vet_catch=0.0,
))

_register(MarketProfile(
    market_id="sougou", display_name="Sougou", kind="specialized",
    paper_size=128_403, paper_downloads_billions=3.0,
    paper_developers=66_759, paper_unique_dev_pct=4.04,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=False, vetting_days=(1.0, 1.0),
    quality_rating=False, incentive_exclusive=True, incentive_quality=True,
    incentive_editors=False, privacy_policy_required=False,
    reports_ads=True, reports_iap=False,
    reports_downloads=True, download_style="exact",
    download_bin_shares=_pct(0.77, 17.83, 55.13, 22.27, 2.51, 1.15, 0.31),
    unrated_share=0.65, default_rating=None, rating_high_bias=0.56,
    category_null_share=0.0, n_categories=20,
    requires_obfuscation=False, channel_file="META-INF/sgchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.693, single_store_share=0.08,
    fake_rate=1.83, sb_clone_rate=4.86, cb_clone_rate=18.28,
    av1_rate=52.41, av10_rate=16.53, av20_rate=4.59,
    malware_removal_rate=24.24,
    tpl_presence=0.90, tpl_avg_count=12.0, adlib_presence=0.52,
    vet_catch=0.10,
))

_register(MarketProfile(
    market_id="appchina", display_name="App China", kind="specialized",
    paper_size=42_435, paper_downloads_billions=None,
    paper_developers=23_699, paper_unique_dev_pct=3.22,
    openness="open", copyright_check=True, app_vetting=True,
    security_check=True, human_inspection=True, vetting_days=(1.0, 3.0),
    quality_rating=False, incentive_exclusive=False, incentive_quality=False,
    incentive_editors=True, privacy_policy_required=False,
    reports_ads=True, reports_iap=False,
    reports_downloads=False, download_style="exact",
    download_bin_shares=_pct(0, 0, 0, 0, 0, 0, 0),
    unrated_share=0.60, default_rating=None, rating_high_bias=0.56,
    category_null_share=0.0, n_categories=20,
    requires_obfuscation=False, channel_file="META-INF/acchannel",
    crawl_strategy="category_pages", apk_rate_limited=False,
    discontinued_at_second_crawl=False, app_only_at_second_crawl=False,
    highest_version_share=0.772, single_store_share=0.07,
    fake_rate=0.0, sb_clone_rate=10.17, cb_clone_rate=13.23,
    av1_rate=48.55, av10_rate=14.13, av20_rate=4.27,
    malware_removal_rate=20.51,
    tpl_presence=0.88, tpl_avg_count=11.0, adlib_presence=0.51,
    vet_catch=0.15,
    extra={"max_apk_mb": 50},
))

#: All 17 market ids in the paper's Table 1 order.
ALL_MARKET_IDS: Tuple[str, ...] = (
    GOOGLE_PLAY, "tencent", "baidu", "market360", "oppo", "xiaomi",
    "meizu", "huawei", "lenovo", "pp25", "wandoujia", "hiapk", "anzhi",
    "liqu", "pconline", "sougou", "appchina",
)

#: The 16 alternative Chinese markets.
CHINESE_MARKET_IDS: Tuple[str, ...] = tuple(
    m for m in ALL_MARKET_IDS if m != GOOGLE_PLAY
)

if set(ALL_MARKET_IDS) != set(_PROFILES):
    raise AssertionError("market id list out of sync with registered profiles")


def get_profile(market_id: str) -> MarketProfile:
    """Look up a market profile by id."""
    try:
        return _PROFILES[market_id]
    except KeyError:
        raise KeyError(f"unknown market id: {market_id!r}") from None


def iter_profiles() -> Iterable[MarketProfile]:
    """Iterate over all 17 profiles in Table 1 order."""
    return (get_profile(m) for m in ALL_MARKET_IDS)
