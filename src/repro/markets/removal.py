"""Catalog cleanup between the two crawls.

Section 7: eight months after the first crawl, Google Play had removed
over 84% of its flagged apps while Chinese markets removed between 0.01%
(PC Online) and 34.51% (Wandoujia).  :class:`RemovalPolicy` models each
market's cleanup as a per-listing Bernoulli removal over the apps the
market's own security feed flags, applied at a random day between the
crawls.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.markets.profiles import MarketProfile
from repro.util.simtime import FIRST_CRAWL_DAY, SECOND_CRAWL_DAY

__all__ = ["RemovalPolicy"]


class RemovalPolicy:
    """One market's malware-removal behavior between crawls."""

    def __init__(self, profile: MarketProfile, rng: np.random.Generator):
        self._profile = profile
        self._rng = rng

    @property
    def removal_probability(self) -> float:
        """Per-flagged-listing removal probability."""
        rate = self._profile.malware_removal_rate
        if rate is None:
            # Markets excluded from the paper's Table 6 (HiApk shut down,
            # OPPO went app-only) still clean up a little.
            rate = 15.0
        return rate / 100.0

    def removal_day(self) -> float:
        """Pick the simulated day a removal takes effect."""
        return float(self._rng.uniform(FIRST_CRAWL_DAY + 7, SECOND_CRAWL_DAY - 1))

    def decide(self, flagged_packages: Iterable[str]) -> dict:
        """Map each flagged package to its removal day (or None if kept)."""
        decisions = {}
        p = self.removal_probability
        for package in flagged_packages:
            if self._rng.random() < p:
                decisions[package] = self.removal_day()
            else:
                decisions[package] = None
        return decisions
