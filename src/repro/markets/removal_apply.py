"""Applying removal policies to live stores between crawls.

Market operators react to security feeds: listings carrying known
malware payloads get removed with the market's Table 6 propensity.  The
"security feed" here is the operator's own knowledge of which apps carry
payloads — ground truth the *operators* legitimately hold about their
own catalogs (the measurement pipeline never reads it; it must
rediscover removals through the second crawl).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Tuple

from repro.markets.removal import RemovalPolicy
from repro.markets.store import MarketStore
from repro.util.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.ecosystem.world import World

__all__ = ["apply_store_removals"]


def apply_store_removals(
    stores: Mapping[str, MarketStore],
    world: "World",
    rngs: RngFactory,
) -> Dict[str, Tuple[int, int]]:
    """Run every market's cleanup; returns {market: (flagged, removed)}.

    The flagged lists for every market are gathered in one pass over
    ``world.apps`` (a streaming cursor on the spilled backend), so the
    corpus is scanned once instead of once per market.  Each market's
    flagged list is in app order, exactly as the per-market scans
    produced it, and each market draws from its own named RNG stream —
    the decisions are bit-identical to the per-market formulation.
    """
    flagged_by_market: Dict[str, List[str]] = {m: [] for m in stores}
    for app in world.apps:
        if app.threat is None:
            continue
        for market_id in app.placements:
            packages = flagged_by_market.get(market_id)
            if packages is not None:
                packages.append(app.package)
    outcome: Dict[str, Tuple[int, int]] = {}
    for market_id, store in stores.items():
        policy = RemovalPolicy(store.profile, rngs.stream("removal", market_id))
        flagged = flagged_by_market[market_id]
        decisions = policy.decide(flagged)
        removed = 0
        for package, day in decisions.items():
            if day is not None and store.remove_listing(package, day):
                removed += 1
        outcome[market_id] = (len(flagged), removed)
    return outcome
