"""Applying removal policies to live stores between crawls.

Market operators react to security feeds: listings carrying known
malware payloads get removed with the market's Table 6 propensity.  The
"security feed" here is the operator's own knowledge of which apps carry
payloads — ground truth the *operators* legitimately hold about their
own catalogs (the measurement pipeline never reads it; it must
rediscover removals through the second crawl).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Tuple

from repro.markets.removal import RemovalPolicy
from repro.markets.store import MarketStore
from repro.util.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.ecosystem.world import World

__all__ = ["apply_store_removals"]


def apply_store_removals(
    stores: Mapping[str, MarketStore],
    world: "World",
    rngs: RngFactory,
) -> Dict[str, Tuple[int, int]]:
    """Run every market's cleanup; returns {market: (flagged, removed)}."""
    outcome: Dict[str, Tuple[int, int]] = {}
    for market_id, store in stores.items():
        policy = RemovalPolicy(store.profile, rngs.stream("removal", market_id))
        flagged = [
            app.package
            for app in world.apps
            if app.threat is not None and market_id in app.placements
        ]
        decisions = policy.decide(flagged)
        removed = 0
        for package, day in decisions.items():
            if day is not None and store.remove_listing(package, day):
                removed += 1
        outcome[market_id] = (len(flagged), removed)
    return outcome
