"""HTTP-like market server.

Each market exposes the web interface the paper's crawlers scraped:

* ``/search?q=``       — exact package/app-name search (parallel search)
* ``/app?package=``    — one listing's metadata
* ``/related?package=``— recommendations (Google Play BFS expansion)
* ``/developer?name=`` — other apps by the same developer (BFS expansion)
* ``/categories`` and ``/category?name=&page=`` — browsing (Chinese stores)
* ``/index?i=``        — Baidu's incremental integer index
* ``/download?package=``— the APK binary

Google Play's ``/download`` is protected by a cumulative quota
(:class:`~repro.net.ratelimit.QuotaLimiter`): once the crawler's budget
is spent the endpoint answers 429 forever, reproducing the paper's need
to backfill APKs from AndroZoo.
"""

from __future__ import annotations

import datetime
import time
from typing import Optional

from repro.markets.hostility import HostileGate, HostilityPolicy
from repro.markets.store import MarketStore
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.http import Request, Response
from repro.net.ratelimit import QuotaLimiter
from repro.util.simtime import SimClock, date_to_day

__all__ = ["MarketServer", "DEFAULT_GP_APK_QUOTA_SHARE"]

#: HiApk discontinued its services by the end of 2017 (Section 7).
HIAPK_SHUTDOWN_DAY = date_to_day(datetime.date(2018, 1, 1))

#: OPPO's market became accessible only through its on-device app before
#: the second crawl (Section 7); its web interface went dark.
OPPO_WEB_SHUTDOWN_DAY = date_to_day(datetime.date(2018, 3, 1))

#: The paper's Google Play crawl obtained APKs for 287,110 of 2,031,946
#: listings (~14.1%) before rate limiting stopped it.
DEFAULT_GP_APK_QUOTA_SHARE = 0.141


class MarketServer:
    """Serves one market's store over the in-process HTTP layer."""

    def __init__(
        self,
        store: MarketStore,
        clock: SimClock,
        apk_quota: Optional[int] = None,
        flakiness: float = 0.0,
        faults: Optional[FaultPlan] = None,
        latency_s: float = 0.0,
        hostility: Optional[HostilityPolicy] = None,
    ):
        """``faults`` injects transient failures (500s, timeouts,
        malformed payloads, burst 429s) deterministically per request
        ordinal; ``flakiness`` is the legacy shorthand for a plain
        transient-500 plan.  ``latency_s`` adds a real (wall-clock)
        per-request service delay — it models network I/O for the
        parallel-crawl benchmarks and never touches simulated time.
        ``hostility`` attaches a :class:`HostileGate` enforcing the
        market's adversarial behaviors (auth sessions, binary wire
        payloads, anti-bot bans, package-list-only enumeration)."""
        if not 0.0 <= flakiness < 1.0:
            raise ValueError(f"flakiness must be in [0, 1), got {flakiness}")
        if faults is not None and flakiness:
            raise ValueError("pass either faults or flakiness, not both")
        if latency_s < 0:
            raise ValueError(f"latency_s must be non-negative, got {latency_s}")
        self._store = store
        self._clock = clock
        if apk_quota is None and store.profile.apk_rate_limited:
            apk_quota = max(1, int(len(store) * DEFAULT_GP_APK_QUOTA_SHARE))
        self._apk_quota = QuotaLimiter(apk_quota) if apk_quota is not None else None
        if faults is None:
            faults = FaultPlan(transient_500=flakiness)
        self._faults = FaultInjector(store.market_id, faults)
        self._latency_s = latency_s
        self.hostility: Optional[HostileGate] = (
            HostileGate(store.market_id, hostility)
            if hostility is not None and hostility.active
            else None
        )
        self.requests_served = 0

    @property
    def market_id(self) -> str:
        return self._store.market_id

    @property
    def store(self) -> MarketStore:
        return self._store

    @property
    def apk_quota_used(self) -> int:
        return self._apk_quota.used if self._apk_quota else 0

    @property
    def quota_limited(self) -> bool:
        """True when ``/download`` draws from a finite cumulative quota.

        Quota consumption is ordered — request N may be the one that
        exhausts it — so pipelined (out-of-order) downloading against a
        quota-limited market would break the determinism contract; the
        coordinator keeps such markets on the sequential path.
        """
        return self._apk_quota is not None

    @property
    def faults(self) -> FaultInjector:
        """The server's fault injector (counters + plan)."""
        return self._faults

    @property
    def transient_failures(self) -> int:
        """Injected transient 500s (legacy counter name)."""
        return self._faults.injected_500

    @property
    def web_available(self) -> bool:
        """Whether the market's web interface is still reachable."""
        profile = self._store.profile
        if profile.discontinued_at_second_crawl and self._clock.now >= HIAPK_SHUTDOWN_DAY:
            return False
        if profile.app_only_at_second_crawl and self._clock.now >= OPPO_WEB_SHUTDOWN_DAY:
            return False
        return True

    # -- checkpoint plumbing ----------------------------------------------

    def export_state(self) -> dict:
        """Serializable server-side state for the crawl journal.

        Fault injection depends on the per-server request ordinal and
        streak, and Google Play's download quota is cumulative; a
        resumed campaign restores all three so the remaining request
        stream sees exactly the responses the uninterrupted run did.
        """
        state = {
            "requests_served": self.requests_served,
            "faults": self._faults.export_state(),
            "quota_used": self._apk_quota.used if self._apk_quota else None,
        }
        if self.hostility is not None:
            state["hostility"] = self.hostility.export_state()
        return state

    def restore_state(self, state: dict) -> None:
        self.requests_served = int(state["requests_served"])
        self._faults.restore_state(state["faults"])
        if self._apk_quota is not None and state.get("quota_used") is not None:
            self._apk_quota.restore(int(state["quota_used"]))
        if self.hostility is not None and "hostility" in state:
            self.hostility.restore_state(state["hostility"])

    def _request_now(self, request: Request) -> float:
        """The request's time base: the client's lane-clock stamp.

        Lane clocks are what advance during a campaign (the shared
        campaign clock is frozen), so token expiry, velocity windows,
        and ban windows must be judged in the *client's* time for a
        tarpitted crawler to be able to wait its way back.  Falls back
        to the shared clock for bare requests (tests, legacy callers).
        """
        stamp = request.header("x-sim-time")
        return float(stamp) if stamp is not None else self._clock.now

    def handle(self, request: Request) -> Response:
        """Dispatch one request; the entry point clients are bound to."""
        self.requests_served += 1
        if self._latency_s:
            time.sleep(self._latency_s)
        if not self.web_available:
            return Response.not_found()
        fault = self._faults.inject(self.requests_served, now=self._clock.now)
        if fault is not None:
            return fault
        if self.hostility is None:
            return self._dispatch(request)
        now = self._request_now(request)
        denied = self.hostility.screen(request, now)
        if denied is not None:
            return denied
        if request.path == HostileGate.LOGIN_PATH:
            return self.hostility.login(request, now)
        return self.hostility.finalize(request.path, self._dispatch(request))

    def _dispatch(self, request: Request) -> Response:
        handler = getattr(self, "_endpoint_" + request.path.strip("/"), None)
        if handler is None:
            return Response.not_found()
        return handler(request)

    # -- endpoints ---------------------------------------------------------

    def _endpoint_search(self, request: Request) -> Response:
        query = request.param("q")
        if not query:
            return Response.not_found()
        listings = self._store.search(str(query), self._clock.now)
        return Response.json_ok([l.metadata() for l in listings])

    def _endpoint_app(self, request: Request) -> Response:
        package = request.param("package")
        listing = self._store.get(str(package), self._clock.now)
        if listing is None:
            return Response.not_found()
        return Response.json_ok(listing.metadata())

    def _endpoint_related(self, request: Request) -> Response:
        package = request.param("package")
        listings = self._store.related(str(package), self._clock.now)
        return Response.json_ok([l.metadata() for l in listings])

    def _endpoint_developer(self, request: Request) -> Response:
        name = request.param("name")
        listings = self._store.by_developer(str(name), self._clock.now)
        return Response.json_ok([l.metadata() for l in listings])

    def _endpoint_categories(self, request: Request) -> Response:
        return Response.json_ok(self._store.categories())

    def _endpoint_category(self, request: Request) -> Response:
        name = request.param("name")
        page = int(request.param("page", 0))
        listings = self._store.category_page(str(name), page, self._clock.now)
        return Response.json_ok([l.metadata() for l in listings])

    def _endpoint_index(self, request: Request) -> Response:
        index = int(request.param("i", -1))
        if index >= self._store.index_size:
            return Response.not_found()
        listing = self._store.by_index(index, self._clock.now)
        if listing is None:
            # The slot existed but the app was removed: markets answer
            # with an empty page rather than 404 (the index keeps growing).
            return Response.json_ok(None)
        return Response.json_ok(listing.metadata())

    def _endpoint_index_size(self, request: Request) -> Response:
        return Response.json_ok(self._store.index_size)

    def _endpoint_packages(self, request: Request) -> Response:
        """Paged bare package-name list (package-list-only markets).

        The one enumeration surface such markets offer: no metadata,
        just names — the crawler must ``/app`` each one afterwards.
        """
        gate = self.hostility
        if gate is None or not gate.policy.package_list_only:
            return Response.not_found()
        page = int(request.param("page", 0))
        if page < 0:
            return Response.not_found()
        size = gate.policy.package_page_size
        start = page * size
        total = self._store.index_size
        packages = []
        for index in range(start, min(start + size, total)):
            listing = self._store.by_index(index, self._clock.now)
            if listing is not None:
                packages.append(listing.package)
        return Response.json_ok({
            "packages": packages,
            "next": page + 1 if start + size < total else None,
        })

    def _endpoint_download(self, request: Request) -> Response:
        package = str(request.param("package"))
        if self._apk_quota is not None and not self._apk_quota.try_acquire():
            return Response.rate_limited(retry_after=30.0)
        blob = self._store.apk_bytes(package, self._clock.now)
        if blob is None:
            return Response.not_found()
        return Response.bytes_ok(blob)
