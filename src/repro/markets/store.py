"""Market store: the catalog one market serves.

A :class:`MarketStore` holds the listings a market exposes at crawl
time, translates ground truth into *market-reported* metadata (exact
installs vs Google Play's install ranges, default ratings, NULL
categories, per-market developer display names — including Baidu's
"crawled from Google Play" labels from Section 4.4), and builds APK
binaries on demand with the market's channel file and packing rules.

Construction happens through :func:`build_stores`; after that the store
only hands out serialized artifacts and plain metadata dictionaries, so
crawler and analysis never see blueprint objects.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.markets.profiles import (
    ALL_MARKET_IDS,
    DOWNLOAD_BIN_EDGES,
    MarketProfile,
    get_profile,
)
from repro.util.rng import stable_hash32

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apk.archive import SegmentCache
    from repro.ecosystem.world import World

__all__ = ["Listing", "MarketStore", "build_stores", "install_range_for"]


def install_range_for(downloads: int) -> Tuple[int, int]:
    """Google Play's install range for an exact install count.

    Above 1M the store keeps decade ranges (1M-5M reported as
    "1,000,000 - 10,000,000", a billion as "1,000,000,000+"), so the
    range lower bound preserves the head of the download distribution —
    which is what the paper's lower-bound aggregation (footnote 8) sums.
    """
    if downloads >= 1_000_000:
        import math

        lo = 10 ** int(math.log10(downloads))
        return (lo, lo * 10)
    edges = DOWNLOAD_BIN_EDGES
    for i in range(len(edges) - 1, -1, -1):
        if downloads >= edges[i]:
            lo = edges[i]
            hi = edges[i + 1] if i + 1 < len(edges) else edges[i] * 10
            return (lo, hi)
    return (0, edges[1])


@dataclass
class Listing:
    """One app listing in one market."""

    package: str
    app_name: str
    version_name: str
    version_code: int
    category: str
    downloads: Optional[int]
    install_range: Optional[Tuple[int, int]]
    rating: float
    update_day: int
    developer_name: str
    # internal handles (used only by the store itself to build APKs)
    app_id: int
    version_index: int
    removed_at: Optional[float] = None

    def live_at(self, day: float) -> bool:
        return self.removed_at is None or day < self.removed_at

    def metadata(self) -> Dict[str, object]:
        """The JSON payload a market endpoint returns."""
        return {
            "package": self.package,
            "name": self.app_name,
            "version_name": self.version_name,
            "version_code": self.version_code,
            "category": self.category,
            "downloads": self.downloads,
            "install_range": list(self.install_range) if self.install_range else None,
            "rating": self.rating,
            "updated_day": self.update_day,
            "developer": self.developer_name,
        }


class MarketStore:
    """The catalog one market serves, plus APK building."""

    PAGE_SIZE = 20
    #: Built-APK LRU bound.  Downloads sweep each market's catalog once
    #: per campaign, so an unbounded cache holds every APK the market
    #: ever served — at out-of-core scale that alone dwarfs the corpus.
    APK_CACHE_SIZE = 256

    def __init__(
        self,
        profile: MarketProfile,
        world: "World",
        segments: Optional["SegmentCache"] = None,
    ):
        self._profile = profile
        self._world = world
        self._segments = segments
        self._listings: Dict[str, Listing] = {}
        self._order: List[str] = []  # insertion order (incremental index)
        self._by_name: Dict[str, List[str]] = {}
        self._by_category: Dict[str, List[str]] = {}
        self._by_developer: Dict[str, List[str]] = {}
        self._apk_cache: "OrderedDict[str, bytes]" = OrderedDict()

    @property
    def profile(self) -> MarketProfile:
        return self._profile

    @property
    def market_id(self) -> str:
        return self._profile.market_id

    def __len__(self) -> int:
        return len(self._listings)

    # -- construction ---------------------------------------------------

    def add_listing(self, listing: Listing) -> None:
        if listing.package in self._listings:
            raise ValueError(
                f"{self.market_id}: duplicate package {listing.package}"
            )
        self._listings[listing.package] = listing
        self._order.append(listing.package)
        self._by_name.setdefault(listing.app_name, []).append(listing.package)
        self._by_category.setdefault(listing.category, []).append(listing.package)
        self._by_developer.setdefault(listing.developer_name, []).append(listing.package)

    # -- catalog maintenance ---------------------------------------------

    def update_listing_version(self, package: str, version_index: int, version) -> bool:
        """Advance a live listing to a newer app version.

        ``version`` carries ``version_code``/``version_name``/
        ``release_day`` (an ecosystem ``AppVersion``); the cached APK for
        the package is invalidated so the next download serves the new
        build.
        """
        listing = self._listings.get(package)
        if listing is None or listing.removed_at is not None:
            return False
        if version.version_code <= listing.version_code:
            return False
        listing.version_index = version_index
        listing.version_code = version.version_code
        listing.version_name = version.version_name
        listing.update_day = version.release_day
        self._apk_cache.pop(package, None)
        return True

    def remove_listing(self, package: str, day: float) -> bool:
        """Mark a listing removed as of ``day`` (post-analysis cleanup)."""
        listing = self._listings.get(package)
        if listing is None or listing.removed_at is not None:
            return False
        listing.removed_at = day
        return True

    # -- lookups ----------------------------------------------------------

    def get(self, package: str, day: float) -> Optional[Listing]:
        listing = self._listings.get(package)
        if listing is None or not listing.live_at(day):
            return None
        return listing

    def get_any(self, package: str) -> Optional[Listing]:
        """Lookup ignoring removal state (for ground-truth bookkeeping)."""
        return self._listings.get(package)

    def by_index(self, index: int, day: float) -> Optional[Listing]:
        """Baidu-style incremental index: the i-th listing ever published."""
        if not 0 <= index < len(self._order):
            return None
        return self.get(self._order[index], day)

    @property
    def index_size(self) -> int:
        return len(self._order)

    def search(self, query: str, day: float, limit: int = 50) -> List[Listing]:
        """Search by exact package or exact app name."""
        results: List[Listing] = []
        direct = self.get(query, day)
        if direct is not None:
            results.append(direct)
        for package in self._by_name.get(query, ()):
            listing = self.get(package, day)
            if listing is not None and listing.package != query:
                results.append(listing)
        return results[:limit]

    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def category_page(self, category: str, page: int, day: float) -> List[Listing]:
        packages = self._by_category.get(category, ())
        start = page * self.PAGE_SIZE
        chunk = packages[start : start + self.PAGE_SIZE]
        return [l for l in (self.get(p, day) for p in chunk) if l is not None]

    def related(self, package: str, day: float, limit: int = 10) -> List[Listing]:
        """Recommendations: same category, similar popularity (BFS food)."""
        listing = self.get(package, day)
        if listing is None:
            return []
        peers = self._by_category.get(listing.category, ())
        if not peers:
            return []
        anchor = stable_hash32("related", self.market_id, package) % max(len(peers), 1)
        out: List[Listing] = []
        for offset in range(1, len(peers)):
            peer = peers[(anchor + offset) % len(peers)]
            if peer == package:
                continue
            peer_listing = self.get(peer, day)
            if peer_listing is not None:
                out.append(peer_listing)
            if len(out) >= limit:
                break
        return out

    def by_developer(self, developer_name: str, day: float) -> List[Listing]:
        packages = self._by_developer.get(developer_name, ())
        return [l for l in (self.get(p, day) for p in packages) if l is not None]

    def iter_live(self, day: float):
        for package in self._order:
            listing = self.get(package, day)
            if listing is not None:
                yield listing

    # -- artifacts ----------------------------------------------------------

    def apk_bytes(self, package: str, day: float) -> Optional[bytes]:
        listing = self.get(package, day)
        if listing is None:
            return None
        blob = self._apk_cache.get(package)
        if blob is None:
            from repro.ecosystem.apps import build_apk

            blueprint = self._world.app(listing.app_id)
            blob = build_apk(
                blueprint,
                listing.version_index,
                self._profile,
                self._world.catalog,
                segments=self._segments,
            )
            self._apk_cache[package] = blob
            while len(self._apk_cache) > self.APK_CACHE_SIZE:
                self._apk_cache.popitem(last=False)
        else:
            self._apk_cache.move_to_end(package)
        return blob


def _developer_display_name(profile: MarketProfile, app, market_id: str) -> str:
    name = app.developer.name_for_market(market_id)
    if (
        profile.extra.get("crawls_google_play")
        and app.scope == "mixed"
        and stable_hash32("gp-crawled", app.package) % 100 < 15
    ):
        # Section 4.4: >30,000 Baidu listings are explicitly labeled as
        # crawled from Google Play in the developer-name field.
        return f"{name} (crawled from Google Play)"
    return name


def build_stores(
    world: "World",
    segments: Optional["SegmentCache"] = None,
    segment_cache: bool = True,
) -> Dict[str, MarketStore]:
    """Materialize every market's store from the generated world.

    One :class:`~repro.apk.archive.SegmentCache` is shared across all
    stores (code segments recur across markets, not just within one);
    pass ``segments`` to share it wider still, or ``segment_cache=False``
    to build every blob cold.
    """
    if segments is None and segment_cache:
        from repro.apk.archive import SegmentCache

        segments = SegmentCache()
    stores = {
        m: MarketStore(get_profile(m), world, segments=segments)
        for m in ALL_MARKET_IDS
    }
    for app in world.apps:
        for market_id, placement in app.placements.items():
            profile = stores[market_id].profile
            version = app.versions[placement.version_index]
            if profile.download_style == "bins" and placement.downloads is not None:
                install_range = install_range_for(placement.downloads)
                downloads = None
            else:
                install_range = None
                downloads = placement.downloads
            listing = Listing(
                package=app.package,
                app_name=app.display_name,
                version_name=version.version_name,
                version_code=version.version_code,
                category=placement.category_label,
                downloads=downloads,
                install_range=install_range,
                rating=placement.rating if placement.rating is not None else 0.0,
                update_day=version.release_day,
                developer_name=_developer_display_name(profile, app, market_id),
                app_id=app.app_id,
                version_index=placement.version_index,
                removed_at=placement.removed_at,
            )
            stores[market_id].add_listing(listing)
    return stores
