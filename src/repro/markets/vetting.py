"""App vetting at submission time.

Section 2 describes each market's auditing process: automated security
analysis first, then (for eight markets) human inspection of suspicious
submissions; copyright checks gate fake and cloned apps.  HiApk and PC
Online perform no vetting at all.

The pipeline operates on :class:`Submission` facts rather than on
ecosystem ground truth objects, so the same code paths can be exercised
standalone (see ``examples/market_vetting.py``).  Catch rates derive
from the profile's ``vet_catch`` strictness, scaled by how overt the
misbehavior is — trojans are easier to spot than SDK adware, and fake
apps are mainly caught by copyright paperwork checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.markets.profiles import MarketProfile

__all__ = ["Submission", "VettingVerdict", "VettingPipeline"]

#: How visible each threat class is to a market's security tooling,
#: relative to the market's overall strictness.
_THREAT_VISIBILITY = {
    "trojan": 1.0,
    "high_profile": 1.0,
    "test": 1.0,
    "adware": 0.5,
    "grayware": 0.2,
}

_FAKE_VISIBILITY = 0.6
_CLONE_VISIBILITY = 0.4


@dataclass(frozen=True)
class Submission:
    """Facts about one app submitted to one market."""

    package: str
    developer_is_company: bool = True
    apk_size_mb: float = 20.0
    threat_kind: Optional[str] = None  # key into _THREAT_VISIBILITY
    is_fake: bool = False
    is_clone: bool = False
    forced: bool = False  # bypass vetting (seeded celebrity apps)


@dataclass(frozen=True)
class VettingVerdict:
    accepted: bool
    reason: str
    human_inspected: bool = False


class VettingPipeline:
    """One market's submission review process."""

    def __init__(self, profile: MarketProfile, rng: np.random.Generator):
        self._profile = profile
        self._rng = rng

    @property
    def profile(self) -> MarketProfile:
        return self._profile

    def review(self, submission: Submission) -> VettingVerdict:
        """Review a submission; returns acceptance and the deciding check."""
        if submission.forced:
            return VettingVerdict(True, "accepted")
        profile = self._profile

        # Openness gates: Lenovo only accepts registered companies;
        # App China enforces a 50 MB APK cap.
        if profile.openness == "companies_only" and not submission.developer_is_company:
            return VettingVerdict(False, "individual developers not allowed")
        max_mb = profile.extra.get("max_apk_mb")
        if max_mb is not None and submission.apk_size_mb > float(max_mb):
            return VettingVerdict(False, f"APK exceeds {max_mb} MB limit")

        if not profile.app_vetting:
            return VettingVerdict(True, "no vetting performed")

        human = profile.human_inspection and self._rng.random() < 0.3

        if submission.threat_kind is not None and profile.security_check:
            visibility = _THREAT_VISIBILITY.get(submission.threat_kind, 0.5)
            catch = profile.vet_catch * visibility
            if human:
                catch = min(1.0, catch * 1.3)
            if self._rng.random() < catch:
                return VettingVerdict(False, "security check flagged payload", human)

        if submission.is_fake and profile.copyright_check:
            if self._rng.random() < profile.vet_catch * _FAKE_VISIBILITY:
                return VettingVerdict(False, "copyright check failed", human)

        if submission.is_clone and profile.copyright_check:
            if self._rng.random() < profile.vet_catch * _CLONE_VISIBILITY:
                return VettingVerdict(False, "copyright check flagged repackaging", human)

        return VettingVerdict(True, "accepted", human)

    def vetting_delay_days(self) -> float:
        """Simulated review latency (Table 1's 'Vetting Time' column)."""
        window = self._profile.vetting_days
        if window is None:
            return 0.0
        lo, hi = window
        if hi <= lo:
            return float(lo)
        return float(self._rng.uniform(lo, hi))
