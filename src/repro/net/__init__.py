"""In-process network substrate.

The crawler talks to market servers through an HTTP-like request/response
layer with status codes, a token-bucket rate limiter driven by simulated
time, and a retry policy with exponential back-off.  Nothing here touches
a real socket; the point is that the crawler exercises exactly the logic
it would need against the 2017 market web interfaces.
"""

from repro.net.http import (
    HTTP_NOT_FOUND,
    HTTP_OK,
    HTTP_TOO_MANY_REQUESTS,
    HttpError,
    NotFoundError,
    RateLimitedError,
    Request,
    Response,
)
from repro.net.client import HttpClient
from repro.net.ratelimit import TokenBucket
from repro.net.retry import RetryPolicy

__all__ = [
    "HTTP_OK",
    "HTTP_NOT_FOUND",
    "HTTP_TOO_MANY_REQUESTS",
    "HttpError",
    "NotFoundError",
    "RateLimitedError",
    "Request",
    "Response",
    "HttpClient",
    "TokenBucket",
    "RetryPolicy",
]
