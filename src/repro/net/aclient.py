"""Asyncio crawl client: the :class:`~repro.net.client.HttpClient`
retry/backoff/countermeasure loop over an async transport.

``AsyncHttpClient`` mirrors the sync client decision-for-decision —
429 wait budgets and jitter, 5xx/timeout/malformed retry schedules,
401 re-login bounded by :data:`~repro.net.client.MAX_AUTH_RETRIES`,
anti-bot ban rotation, circuit-breaker accounting, token-bucket pacing
— so a campaign driven through it lands on the same snapshot digest.
The differences are exactly the ones asyncio forces:

* The transport is awaited (``await transport.send(request)``); an
  object with an async ``send`` method, usually an
  :class:`~repro.net.transport.AsyncSocketTransport` pool or an
  :class:`~repro.net.transport.AsyncInProcessTransport` wrapper.
* Auth single-flight uses an :class:`asyncio.Lock` instead of the
  credential manager's threading lock — coroutines sharing one loop
  must never block the thread they all run on.
* ``CancelledError`` is classified: a request torn down mid-flight
  increments ``stats.cancelled`` and re-raises.  It is *not* a retry
  and *not* a failure — without the classification a cancelled await
  inside the retry loop would be indistinguishable from transport
  trouble and double-counted when the engine shuts lanes down.
* Observability records the request-wall and backoff histograms plus
  countermeasure events, but no spans: the span tracer's stack is
  thread-local, and interleaved coroutines on one loop thread would
  mis-nest parents.  (The thread engine keeps full span coverage.)

What the async client adds over the sync one is **intra-lane
pipelining**: :meth:`get_json_many` / :meth:`get_bytes_many` run a
batch of requests with up to ``depth`` in flight at once and return
results in submission order (exceptions in place, so callers classify
per item).  A thread-engine lane is structurally one-request-in-flight;
this is where the asyncio engine's throughput win comes from.

Pipelining keeps the digest oracle only on *polite* traffic: fault
injection, quotas, and hostility screening key on server-side request
ordinals, which concurrent in-flight requests reorder.  The
coordinator enforces depth 1 for journaled, hostile, and quota-bound
work (see :mod:`repro.crawler.crawler`).
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Any, List, Mapping, Optional, Sequence, Tuple

from repro.net import wire
from repro.net.client import (
    MAX_AUTH_RETRIES,
    RATE_LIMIT_JITTER_MAX,
    ClientStats,
)
from repro.net.http import (
    HTTP_FORBIDDEN,
    HTTP_NOT_FOUND,
    HTTP_SERVER_ERROR,
    HTTP_TIMEOUT,
    HTTP_TOO_MANY_REQUESTS,
    HTTP_UNAUTHORIZED,
    AuthError,
    ForbiddenError,
    MalformedPayloadError,
    NotFoundError,
    RateLimitedError,
    Request,
    RequestTimeoutError,
    Response,
    ServerError,
)
from repro.net.retry import RetryPolicy
from repro.util.rng import stable_hash32

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.breaker import CircuitBreaker
    from repro.net.credentials import CredentialManager
    from repro.net.identity import IdentityPool
    from repro.obs import LaneObs

__all__ = ["AsyncHttpClient", "DEFAULT_PIPELINE_DEPTH"]

#: In-flight requests per lane a bulk call allows by default.
DEFAULT_PIPELINE_DEPTH = 8


class AsyncHttpClient:
    """The retrying crawl client, asyncio edition.

    Constructor parameters match :class:`~repro.net.client.HttpClient`
    except the first: ``transport`` is an object with
    ``async send(Request) -> Response`` rather than a sync callable.
    """

    def __init__(
        self,
        transport,
        clock,
        retry_policy: Optional[RetryPolicy] = None,
        max_rate_limit_waits: int = 2,
        max_rate_limit_wait: Optional[float] = None,
        pacer=None,
        jitter_key: str = "",
        breaker: Optional["CircuitBreaker"] = None,
        credentials: Optional["CredentialManager"] = None,
        identities: Optional["IdentityPool"] = None,
        auth_path: str = "/login",
        obs: Optional["LaneObs"] = None,
    ):
        self._transport = transport
        self._clock = clock
        self._retry_policy = retry_policy or RetryPolicy()
        self._max_rate_limit_waits = max_rate_limit_waits
        self._max_rate_limit_wait = max_rate_limit_wait
        self._pacer = pacer
        self._jitter_key = jitter_key
        self.breaker = breaker
        self.credentials = credentials
        self.identities = identities
        self._auth_path = auth_path
        self.obs = obs
        self.stats = ClientStats()
        self._auth_lock = asyncio.Lock()

    # -- shared mechanics (mirrors of the sync client) ---------------------

    def _sleep(self, duration: float) -> None:
        """Advance simulated lane time; instantaneous in wall time."""
        self._clock.advance(duration)
        self.stats.sim_days_slept += duration

    def _jittered(self, base: float) -> float:
        roll = stable_hash32("rl-jitter", self._jitter_key, self.stats.requests) % 1000
        return base * (1.0 + RATE_LIMIT_JITTER_MAX * roll / 1000.0)

    def _event(self, name: str, **attrs: object) -> None:
        obs = self.obs
        if obs is not None and obs.tracer is not None:
            obs.tracer.event(
                name, market=obs.market, sim_time=self._clock.now, **attrs
            )

    async def _build_request(self, path: str, params: dict) -> Request:
        now = self._clock.now
        headers = {"x-sim-time": repr(now)}
        if self.identities is not None:
            identity, rotated = self.identities.checkout(now)
            if rotated:
                self.stats.identity_rotations += 1
                self._event("identity.rotate", reason="checkout",
                            identity=identity.ip)
            headers.update(identity.headers())
        if self.credentials is not None and path != self._auth_path:
            headers["authorization"] = await self._ensure_token(now)
        return Request(path=path, params=params, headers=headers)

    async def _ensure_token(self, now: float) -> str:
        """A valid session token, logging in when needed (single-flight).

        The asyncio lock plays the role the credential manager's
        threading lock plays for the sync client: concurrent pipelined
        requests on an expired token elect one login; the rest await it
        and reuse the installed token.
        """
        creds = self.credentials
        async with self._auth_lock:
            token = creds.token_if_valid(now)
            if token is not None:
                return token
            refreshing = creds.ever_logged_in
            resp = await self._request(self._auth_path, None)
            payload = resp.json
            if payload is None and resp.body is not None and wire.is_wire(resp.body):
                payload = wire.decode(resp.body)
            token = payload["token"]
            creds.install(token, float(payload["ttl"]), self._clock.now)
            self.stats.logins += 1
            if refreshing:
                self.stats.token_refreshes += 1
            self._event("auth.login", refresh=refreshing)
            return token

    # -- the retry loop ----------------------------------------------------

    async def request(
        self, path: str, params: Optional[Mapping[str, Any]] = None
    ) -> Response:
        """Issue one logical request; raises as the sync client does.

        ``asyncio.CancelledError`` additionally lands in
        ``stats.cancelled`` before re-raising — cancellation is caller
        intent, not transport trouble, and must not inflate the retry
        or failure accounting.
        """
        try:
            if self.obs is None:
                return await self._request(path, params)
            return await self._observed_request(path, params)
        except asyncio.CancelledError:
            self.stats.cancelled += 1
            raise

    async def _observed_request(
        self, path: str, params: Optional[Mapping[str, Any]]
    ) -> Response:
        """Histogram-recording wrapper (no spans; see module docstring)."""
        obs = self.obs
        stats = self.stats
        slept0 = stats.sim_days_slept
        start = time.perf_counter()
        try:
            return await self._request(path, params)
        finally:
            if obs.hist_request is not None:
                obs.hist_request.observe(time.perf_counter() - start)
                backoff = stats.sim_days_slept - slept0
                if backoff > 0:
                    obs.hist_backoff.observe(backoff)

    async def _request(
        self, path: str, params: Optional[Mapping[str, Any]]
    ) -> Response:
        if self.breaker is not None:
            try:
                self.breaker.before_request()
            except Exception:
                self.stats.failures += 1
                self.stats.breaker_fast_fails += 1
                raise
        base_params = dict(params or {})
        rate_limit_waits = 0
        ban_waits = 0
        transient_retries = 0
        auth_retries = 0
        while True:
            if self._pacer is not None:
                pace = self._pacer()
                if pace > 0:
                    self._sleep(pace)
            req = await self._build_request(path, base_params)
            self.stats.requests += 1
            resp = await self._transport.send(req)
            if resp.ok:
                if self.breaker is not None:
                    self.breaker.record_success()
                return resp
            if resp.status == HTTP_NOT_FOUND:
                self.stats.not_found += 1
                if self.breaker is not None:
                    self.breaker.record_success()  # a 404 is a live server
                raise NotFoundError(path)
            if resp.status == HTTP_UNAUTHORIZED:
                if self.credentials is None or auth_retries >= MAX_AUTH_RETRIES:
                    raise self._give_up(AuthError(path))
                auth_retries += 1
                self.credentials.invalidate()
                continue  # the next attempt re-logs-in
            if resp.status == HTTP_FORBIDDEN:
                if resp.retry_after is None:
                    if self.breaker is not None:
                        self.breaker.record_success()
                    raise ForbiddenError(path)
                self.stats.bans_hit += 1
                self._event("ban.hit", path=path, retry_after=resp.retry_after)
                pool = self.identities
                if pool is None:
                    raise self._ban_abort(path, resp.retry_after)
                now = self._clock.now
                pool.ban_current(now, resp.retry_after)
                if self._rotate_off_ban(now):
                    continue
                wait = pool.earliest_release(now)
                if wait is None:
                    continue  # a ban lapsed already; retry in place
                if (
                    self._max_rate_limit_wait is not None
                    and wait > self._max_rate_limit_wait
                ) or ban_waits >= self._max_rate_limit_waits:
                    raise self._ban_abort(path, resp.retry_after)
                ban_waits += 1
                self._sleep(self._jittered(wait))
                self._rotate_off_ban(self._clock.now)
                continue
            if resp.status == HTTP_TOO_MANY_REQUESTS:
                self.stats.rate_limited += 1
                wait = resp.retry_after if resp.retry_after else 1.0 / 24
                if self._max_rate_limit_wait is not None and wait > self._max_rate_limit_wait:
                    raise self._rate_limit_abort(path, resp.retry_after)
                if rate_limit_waits >= self._max_rate_limit_waits:
                    raise self._rate_limit_abort(path, resp.retry_after)
                rate_limit_waits += 1
                self._sleep(self._jittered(wait))
                continue
            if resp.status == HTTP_TIMEOUT:
                self.stats.timeouts += 1
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(RequestTimeoutError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            if resp.malformed:
                self.stats.malformed += 1
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(MalformedPayloadError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            if resp.status >= HTTP_SERVER_ERROR:
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(ServerError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            raise self._give_up(ServerError(path))

    def _rotate_off_ban(self, now: float) -> bool:
        if self.identities is not None and self.identities.rotate_to_available(now):
            self.stats.identity_rotations += 1
            self._event("identity.rotate", reason="ban",
                        identity=self.identities.current.ip)
            return True
        return False

    def _give_up(self, exc: Exception) -> Exception:
        self.stats.failures += 1
        if self.breaker is not None:
            self.breaker.record_failure()
        return exc

    def _rate_limit_abort(self, path: str, retry_after: Optional[float]) -> Exception:
        self.stats.failures += 1
        self.stats.rate_limit_aborts += 1
        return RateLimitedError(path, retry_after)

    def _ban_abort(self, path: str, retry_after: float) -> Exception:
        self.stats.failures += 1
        return ForbiddenError(path, retry_after)

    # -- payload helpers ---------------------------------------------------

    async def get_json(
        self, path: str, params: Optional[Mapping[str, Any]] = None
    ) -> Any:
        """Request and return the payload (binary wire decoded)."""
        resp = await self.request(path, params)
        if resp.json is None and resp.body is not None and wire.is_wire(resp.body):
            return wire.decode(resp.body)
        return resp.json

    async def get_bytes(
        self, path: str, params: Optional[Mapping[str, Any]] = None
    ) -> bytes:
        """Request and return the binary body."""
        body = (await self.request(path, params)).body
        if body is None:
            raise ServerError(path)
        return body

    # -- pipelining --------------------------------------------------------

    async def _gather(
        self,
        items: Sequence[Tuple[str, Optional[Mapping[str, Any]]]],
        depth: int,
        fetch,
    ) -> List[Any]:
        semaphore = asyncio.Semaphore(max(1, depth))

        async def one(path: str, params) -> Any:
            async with semaphore:
                return await fetch(path, params)

        return await asyncio.gather(
            *(one(path, params) for path, params in items),
            return_exceptions=True,
        )

    async def get_json_many(
        self,
        items: Sequence[Tuple[str, Optional[Mapping[str, Any]]]],
        depth: int = DEFAULT_PIPELINE_DEPTH,
    ) -> List[Any]:
        """Pipelined :meth:`get_json` over ``(path, params)`` items.

        Results come back in submission order; a failed item carries
        its exception in place of a payload, so callers classify per
        item exactly as they would around a sequential loop.
        """
        return await self._gather(items, depth, self.get_json)

    async def get_bytes_many(
        self,
        items: Sequence[Tuple[str, Optional[Mapping[str, Any]]]],
        depth: int = DEFAULT_PIPELINE_DEPTH,
    ) -> List[Any]:
        """Pipelined :meth:`get_bytes`; same contract as ``get_json_many``."""
        return await self._gather(items, depth, self.get_bytes)
