"""Per-market circuit breaker.

Long crawls against 17 independent markets meet markets that die
outright: a store whose frontend blacks out answers nothing but
timeouts, and every request a lane keeps sending burns its full retry
budget — minutes of simulated back-off per request — while yielding
nothing.  :class:`CircuitBreaker` is the classic closed/open/half-open
state machine layered between the lane and its
:class:`~repro.net.client.HttpClient`:

* **closed** — requests flow; terminal failures (retry exhaustion on
  timeouts, 5xx, malformed payloads) are counted, and a run of
  ``failure_threshold`` consecutive ones trips the circuit.
* **open** — requests fail fast with :class:`CircuitOpenError` instead
  of touching the server; each fast-fail charges a small
  ``open_poll_interval`` to the lane clock (a real crawler still pays
  scheduling time for work it skips), so simulated time advances toward
  the ``cooldown`` deadline.
* **half-open** — after the cooldown, ``half_open_probes`` live probes
  are let through; a success closes the circuit, a failure re-opens it.

Every re-open increments ``trips``.  When ``trips`` exceeds the
``trip_budget`` the market is **quarantined**: the breaker raises
:class:`MarketQuarantinedError` — deliberately *not* an
:class:`~repro.net.http.HttpError`, so it escapes the per-request
``except HttpError`` handlers sprinkled through discovery strategies
and search loops and reaches the coordinator, which marks the market
*degraded* and completes the campaign without it (or re-raises under
``fail_fast``).

The breaker is driven entirely by the lane's simulated clock and its
own counters, so a crawl remains bit-reproducible at any worker count,
and its full state round-trips through :meth:`export_state` /
:meth:`restore_state` for the checkpoint/resume journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.net.http import HttpError
from repro.util.simtime import SimClock

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "MarketQuarantinedError",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: Status code reported by fast-failed requests (503 Service Unavailable
#: is what a client-side breaker conventionally surfaces).
HTTP_CIRCUIT_OPEN = 503


class CircuitOpenError(HttpError):
    """The circuit is open: the request was skipped, not sent."""

    def __init__(self, market_id: str, reopen_at: float):
        super().__init__(f"circuit open: {market_id}", HTTP_CIRCUIT_OPEN)
        self.market_id = market_id
        self.reopen_at = reopen_at


class MarketQuarantinedError(Exception):
    """The breaker exceeded its trip budget: the market is written off.

    Not an :class:`HttpError` on purpose — per-request error handlers
    must not swallow it; only the coordinator decides whether to degrade
    the market or fail the campaign.
    """

    def __init__(self, market_id: str, trips: int):
        super().__init__(f"market quarantined after {trips} breaker trips: {market_id}")
        self.market_id = market_id
        self.trips = trips


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for one market's circuit breaker.

    ``trip_budget`` is the number of open/half-open trips tolerated per
    campaign before the market is quarantined; ``None`` never
    quarantines (the breaker only sheds load).
    """

    failure_threshold: int = 5
    cooldown: float = 0.25  # simulated days the circuit stays open
    open_poll_interval: float = 0.01  # lane days charged per fast-fail
    half_open_probes: int = 1
    trip_budget: Optional[int] = 3

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if self.cooldown <= 0 or self.open_poll_interval <= 0:
            raise ValueError("cooldown and open_poll_interval must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be positive")
        if self.trip_budget is not None and self.trip_budget < 0:
            raise ValueError("trip_budget must be non-negative")


#: The engine's default: breakers on, quarantine after four trips.
DEFAULT_BREAKER_POLICY = BreakerPolicy()


#: Observability callback signature: (old_state, new_state, trips,
#: quarantined).  ``None`` (the default) records nothing and costs one
#: ``is None`` branch per state change — never per request.
TransitionListener = Callable[[str, str, int, bool], None]


class CircuitBreaker:
    """Closed/open/half-open breaker for one market lane."""

    def __init__(
        self,
        market_id: str,
        clock: SimClock,
        policy: BreakerPolicy,
        on_transition: Optional[TransitionListener] = None,
    ):
        self.market_id = market_id
        self._clock = clock
        self.policy = policy
        self.on_transition = on_transition
        self._state = STATE_CLOSED
        self._consecutive = 0
        self._reopen_at = 0.0
        self._probes_left = 0
        self.trips = 0
        self.fast_failures = 0
        self.quarantined = False

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if old_state != new_state and self.on_transition is not None:
            self.on_transition(old_state, new_state, self.trips, self.quarantined)

    @property
    def state(self) -> str:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive

    # -- request lifecycle -------------------------------------------------

    def before_request(self) -> None:
        """Gate one request attempt; raises when the request must be skipped."""
        if self.quarantined:
            self.fast_failures += 1
            raise MarketQuarantinedError(self.market_id, self.trips)
        if self._state == STATE_OPEN:
            if self._clock.now >= self._reopen_at:
                self._transition(STATE_HALF_OPEN)
                self._probes_left = self.policy.half_open_probes
            else:
                self.fast_failures += 1
                # Charge the poll interval so lane time moves toward the
                # cooldown deadline instead of spinning at a frozen clock.
                remaining = self._reopen_at - self._clock.now
                self._clock.advance(min(self.policy.open_poll_interval, remaining))
                raise CircuitOpenError(self.market_id, self._reopen_at)
        if self._state == STATE_HALF_OPEN:
            if self._probes_left <= 0:
                self.fast_failures += 1
                self._clock.advance(self.policy.open_poll_interval)
                raise CircuitOpenError(self.market_id, self._reopen_at)
            self._probes_left -= 1

    def record_success(self) -> None:
        self._consecutive = 0
        self._transition(STATE_CLOSED)

    def record_failure(self) -> None:
        self._consecutive += 1
        if self._state == STATE_HALF_OPEN:
            self._trip()
        elif self._consecutive >= self.policy.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.trips += 1
        self._consecutive = 0
        self._reopen_at = self._clock.now + self.policy.cooldown
        budget = self.policy.trip_budget
        if budget is not None and self.trips > budget:
            self.quarantined = True
        self._transition(STATE_OPEN)

    # -- campaign / checkpoint plumbing ------------------------------------

    def reset(self) -> None:
        """Fresh campaign: forgive past trips and close the circuit."""
        self._state = STATE_CLOSED
        self._consecutive = 0
        self._reopen_at = 0.0
        self._probes_left = 0
        self.trips = 0
        self.quarantined = False

    def export_state(self) -> Dict[str, object]:
        return {
            "state": self._state,
            "consecutive": self._consecutive,
            "reopen_at": self._reopen_at,
            "probes_left": self._probes_left,
            "trips": self.trips,
            "fast_failures": self.fast_failures,
            "quarantined": self.quarantined,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._state = str(state["state"])
        self._consecutive = int(state["consecutive"])  # type: ignore[arg-type]
        self._reopen_at = float(state["reopen_at"])  # type: ignore[arg-type]
        self._probes_left = int(state["probes_left"])  # type: ignore[arg-type]
        self.trips = int(state["trips"])  # type: ignore[arg-type]
        self.fast_failures = int(state["fast_failures"])  # type: ignore[arg-type]
        self.quarantined = bool(state["quarantined"])
