"""HTTP client with retries, rate-limit back-off, and hostile-market
countermeasures.

``HttpClient`` wraps a server's ``handle`` callable.  On 429 it sleeps
(advances the simulated clock) for the server-suggested ``retry_after``
plus deterministic jitter and retries; on 5xx, connection timeouts
(599), and malformed 200 payloads it retries per
:class:`~repro.net.retry.RetryPolicy`; 404 raises
:class:`~repro.net.http.NotFoundError`.  Each client keeps simple
counters, used by the crawler's telemetry and tests.

Against hostile markets (:mod:`repro.markets.hostility`) the client
additionally:

* stamps every request with its lane time (``x-sim-time``) and, when an
  :class:`~repro.net.identity.IdentityPool` is installed, a rotatable
  client identity (``x-client-ip`` + ``user-agent``);
* maintains a session token via a
  :class:`~repro.net.credentials.CredentialManager` — proactive refresh
  before expiry, bounded re-login on unexpected 401s;
* answers anti-bot 403 bans (``retry_after`` set) by banning the
  current identity in the pool, rotating to a free one, or waiting out
  the earliest release — and transparently decodes binary wire payloads
  in :meth:`get_json`.

Jitter: a fleet of identical clients sleeping exactly ``retry_after``
wakes up in lockstep and re-synchronizes the very storm the 429s were
shedding.  Every rate-limit sleep is therefore stretched by a
deterministic, per-client fraction (up to +25%), derived from the
client's ``jitter_key`` and request ordinal so runs stay reproducible.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional

from repro.net import wire
from repro.net.http import (
    HTTP_FORBIDDEN,
    HTTP_NOT_FOUND,
    HTTP_SERVER_ERROR,
    HTTP_TIMEOUT,
    HTTP_TOO_MANY_REQUESTS,
    HTTP_UNAUTHORIZED,
    AuthError,
    ForbiddenError,
    MalformedPayloadError,
    NotFoundError,
    RateLimitedError,
    Request,
    RequestTimeoutError,
    Response,
    ServerError,
)
from repro.net.retry import RetryPolicy
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.breaker import CircuitBreaker
    from repro.net.credentials import CredentialManager
    from repro.net.identity import IdentityPool
    from repro.obs import LaneObs

__all__ = ["HttpClient", "ClientStats", "RATE_LIMIT_JITTER_MAX", "MAX_AUTH_RETRIES"]

#: Upper bound of the multiplicative jitter applied to rate-limit sleeps.
RATE_LIMIT_JITTER_MAX = 0.25

#: Re-logins tolerated per logical request before raising AuthError.
MAX_AUTH_RETRIES = 2


@dataclass
class ClientStats:
    """Counters for one client instance.

    ``failures`` counts *abandoned requests* — every request the client
    gave up on, exactly once each, whatever the reason (retry
    exhaustion, rate-limit cap or wait-budget exhaustion, ban-recovery
    exhaustion, breaker fast-fail).  Transient faults that a retry
    eventually pushed through never touch it; they show up in
    ``retries`` and the per-mode counters instead, so telemetry can
    distinguish "absorbed turbulence" from "work lost".  Two
    sub-counters break failures down: ``rate_limit_aborts`` (gave up
    because the server shed us) and ``breaker_fast_fails`` (never sent:
    the circuit was open or the market quarantined).  404 is a
    definitive answer, not a failure; it stays in ``not_found``.

    ``cancelled`` counts logical requests torn down mid-flight by
    cooperative cancellation (the asyncio engine shutting a lane down).
    A cancelled request is *neither* a retry nor a failure — the caller
    asked for it to stop, the server did nothing wrong — so the async
    client classifies ``CancelledError`` here and re-raises instead of
    letting it fall into the transient-retry accounting.

    The hostility counters record countermeasure work: ``logins``
    (session tokens obtained, first login included), ``token_refreshes``
    (the subset of logins that replaced an earlier token),
    ``bans_hit`` (anti-bot 403s received), and ``identity_rotations``
    (pool advances, whatever triggered them).
    """

    requests: int = 0
    retries: int = 0
    rate_limited: int = 0
    timeouts: int = 0
    cancelled: int = 0
    malformed: int = 0
    not_found: int = 0
    failures: int = 0
    rate_limit_aborts: int = 0
    breaker_fast_fails: int = 0
    logins: int = 0
    token_refreshes: int = 0
    bans_hit: int = 0
    identity_rotations: int = 0
    sim_days_slept: float = 0.0

    def copy(self) -> "ClientStats":
        return replace(self)

    def delta(self, baseline: "ClientStats") -> "ClientStats":
        """Counter movement since ``baseline`` (an earlier copy).

        Derived from the dataclass fields so a counter added to this
        class can never be silently dropped from campaign deltas (and
        therefore from telemetry and the Prometheus export).
        """
        return ClientStats(**{
            f.name: getattr(self, f.name) - getattr(baseline, f.name)
            for f in fields(self)
        })

    def export_state(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "ClientStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in state.items() if k in known})  # type: ignore[arg-type]


class HttpClient:
    """A retrying client bound to one server endpoint.

    Parameters
    ----------
    handler:
        The server's ``handle(Request) -> Response`` callable.
    clock:
        Clock whose ``advance`` absorbs this client's sleeps.  Under the
        parallel crawl engine this is a per-market lane clock, so one
        market's back-off never stalls another market's lane.
    retry_policy:
        Back-off schedule shared by 5xx, timeout, and malformed-payload
        retries.
    max_rate_limit_waits:
        How many consecutive 429s to tolerate per request before giving
        up with :class:`RateLimitedError`.  The same budget bounds
        all-identities-banned waits during ban recovery.
    max_rate_limit_wait:
        Cap (simulated days) on a single honored ``retry_after``.  A 429
        whose hint exceeds the cap is treated as a hard limit and raised
        immediately — the Google Play download quota answers with a
        multi-day hint that no polite crawler should wait out, while
        burst 429s hint minutes and are worth riding through.  ``None``
        honors any hint.  Also caps how long ban recovery will wait for
        an identity to free up.
    pacer:
        Optional ``reserve() -> float`` callable consulted before every
        attempt; a positive return is slept first.  The crawl engine
        installs a per-market token bucket here.
    jitter_key:
        Stable identity mixed into the rate-limit jitter so distinct
        clients desynchronize while reruns reproduce exactly.
    credentials:
        Optional :class:`~repro.net.credentials.CredentialManager` for
        authenticated markets: a token is attached to every request
        (``authorization``), refreshed proactively, and re-obtained on
        401 up to :data:`MAX_AUTH_RETRIES` times per logical request.
    identities:
        Optional :class:`~repro.net.identity.IdentityPool`; when set,
        every request carries the pool's current ``x-client-ip`` and
        ``user-agent``, and anti-bot bans trigger rotation.
    auth_path:
        The login endpoint (requests to it skip token attachment).
    obs:
        Optional :class:`~repro.obs.LaneObs` instrumentation binding.
        ``None`` (the default) is the fast path: per-request work is a
        single ``is None`` branch, nothing is recorded.
    """

    def __init__(
        self,
        handler: Callable[[Request], Response],
        clock: SimClock,
        retry_policy: Optional[RetryPolicy] = None,
        max_rate_limit_waits: int = 2,
        max_rate_limit_wait: Optional[float] = None,
        pacer: Optional[Callable[[], float]] = None,
        jitter_key: str = "",
        breaker: Optional["CircuitBreaker"] = None,
        credentials: Optional["CredentialManager"] = None,
        identities: Optional["IdentityPool"] = None,
        auth_path: str = "/login",
        obs: Optional["LaneObs"] = None,
    ):
        self._handler = handler
        self._clock = clock
        self._retry_policy = retry_policy or RetryPolicy()
        self._max_rate_limit_waits = max_rate_limit_waits
        self._max_rate_limit_wait = max_rate_limit_wait
        self._pacer = pacer
        self._jitter_key = jitter_key
        self.breaker = breaker
        self.credentials = credentials
        self.identities = identities
        self._auth_path = auth_path
        self.obs = obs
        self.stats = ClientStats()

    def _sleep(self, duration: float) -> None:
        self._clock.advance(duration)
        self.stats.sim_days_slept += duration

    def _jittered(self, base: float) -> float:
        """Stretch a rate-limit sleep by a deterministic jitter fraction."""
        roll = stable_hash32("rl-jitter", self._jitter_key, self.stats.requests) % 1000
        return base * (1.0 + RATE_LIMIT_JITTER_MAX * roll / 1000.0)

    def _event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time countermeasure fact (tracing only)."""
        obs = self.obs
        if obs is not None and obs.tracer is not None:
            obs.tracer.event(
                name, market=obs.market, sim_time=self._clock.now, **attrs
            )

    def request(self, path: str, params: Optional[Mapping[str, Any]] = None) -> Response:
        """Issue a request, retrying transient failures.

        Raises
        ------
        NotFoundError
            On 404.
        RateLimitedError
            When the server keeps answering 429 past the waits budget,
            or hints a wait above ``max_rate_limit_wait``.
        AuthError
            When the server keeps answering 401 past the re-login
            budget (or no credentials are installed).
        ForbiddenError
            On a policy 403 (``retry_after`` unset — definitive, like a
            404), or when identity rotation and waiting could not clear
            an anti-bot ban.
        RequestTimeoutError
            When timeouts persist past the retry budget.
        MalformedPayloadError
            When garbled payloads persist past the retry budget.
        ServerError
            When 5xx persists past the retry budget.
        CircuitOpenError / MarketQuarantinedError
            From the circuit breaker, before any request is sent, when
            the market's circuit is open (cooling down) or the market
            has been quarantined outright.
        """
        if self.obs is None:
            return self._request(path, params)
        return self._traced_request(path, params)

    def _traced_request(
        self, path: str, params: Optional[Mapping[str, Any]]
    ) -> Response:
        """The instrumented request path: one span, counter-delta attrs.

        The span covers the whole retry loop, so its attributes report
        what the *logical* request cost: attempts sent, retries and 429
        waits absorbed, simulated back-off charged (jitter included),
        logins and ban-driven rotations spent, and whether the breaker
        fast-failed it without a single send.
        """
        obs = self.obs
        stats = self.stats
        requests0 = stats.requests
        retries0 = stats.retries
        rate_limited0 = stats.rate_limited
        slept0 = stats.sim_days_slept
        fast_fails0 = stats.breaker_fast_fails
        logins0 = stats.logins
        bans0 = stats.bans_hit
        rotations0 = stats.identity_rotations
        start = time.perf_counter()
        span = (
            obs.tracer.span("http.request", market=obs.market,
                            clock=obs.clock, path=path)
            if obs.tracer is not None
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            response = self._request(path, params)
            return response
        except BaseException as exc:
            if span is not None:
                span.status = type(exc).__name__
            raise
        finally:
            wall = time.perf_counter() - start
            backoff = stats.sim_days_slept - slept0
            if obs.hist_request is not None:
                obs.hist_request.observe(wall)
                if backoff > 0:
                    obs.hist_backoff.observe(backoff)
            if span is not None:
                span["attempts"] = stats.requests - requests0
                span["retries"] = stats.retries - retries0
                span["rate_limited"] = stats.rate_limited - rate_limited0
                span["backoff_sim_days"] = backoff
                if stats.breaker_fast_fails != fast_fails0:
                    span["breaker_fast_fail"] = True
                if stats.logins != logins0:
                    span["logins"] = stats.logins - logins0
                if stats.bans_hit != bans0:
                    span["bans_hit"] = stats.bans_hit - bans0
                if stats.identity_rotations != rotations0:
                    span["identity_rotations"] = (
                        stats.identity_rotations - rotations0
                    )
                span.__exit__(None, None, None)

    def _build_request(self, path: str, params: Dict[str, Any]) -> Request:
        """Assemble one attempt's request, headers included.

        Built fresh per attempt because the identity, the token, and
        the lane-time stamp can all change between retries.
        """
        now = self._clock.now
        headers: Dict[str, str] = {"x-sim-time": repr(now)}
        if self.identities is not None:
            identity, rotated = self.identities.checkout(now)
            if rotated:
                self.stats.identity_rotations += 1
                self._event("identity.rotate", reason="checkout",
                            identity=identity.ip)
            headers.update(identity.headers())
        if self.credentials is not None and path != self._auth_path:
            headers["authorization"] = self._ensure_token(now)
        return Request(path=path, params=params, headers=headers)

    def _ensure_token(self, now: float) -> str:
        """A valid session token, logging in when needed (single-flight)."""
        creds = self.credentials
        with creds.lock:
            token = creds.token_if_valid(now)
            if token is not None:
                return token
            refreshing = creds.ever_logged_in
            resp = self._request(self._auth_path, None)
            payload = resp.json
            if payload is None and resp.body is not None and wire.is_wire(resp.body):
                payload = wire.decode(resp.body)
            token = payload["token"]
            # No sleep happens between the winning login attempt and
            # here, so clock.now is the server's session start time.
            creds.install(token, float(payload["ttl"]), self._clock.now)
            self.stats.logins += 1
            if refreshing:
                self.stats.token_refreshes += 1
            self._event("auth.login", refresh=refreshing)
            return token

    def _request(self, path: str, params: Optional[Mapping[str, Any]]) -> Response:
        """The uninstrumented retry loop (the pre-observability path)."""
        if self.breaker is not None:
            try:
                self.breaker.before_request()
            except Exception:
                # Fast-failed: abandoned without a single request sent.
                self.stats.failures += 1
                self.stats.breaker_fast_fails += 1
                raise
        base_params = dict(params or {})
        rate_limit_waits = 0
        ban_waits = 0
        transient_retries = 0
        auth_retries = 0
        while True:
            if self._pacer is not None:
                pace = self._pacer()
                if pace > 0:
                    self._sleep(pace)
            req = self._build_request(path, base_params)
            self.stats.requests += 1
            resp = self._handler(req)
            if resp.ok:
                if self.breaker is not None:
                    self.breaker.record_success()
                return resp
            if resp.status == HTTP_NOT_FOUND:
                self.stats.not_found += 1
                if self.breaker is not None:
                    self.breaker.record_success()  # a 404 is a live server
                raise NotFoundError(path)
            if resp.status == HTTP_UNAUTHORIZED:
                if self.credentials is None or auth_retries >= MAX_AUTH_RETRIES:
                    raise self._give_up(AuthError(path))
                auth_retries += 1
                self.credentials.invalidate()
                continue  # the next attempt re-logs-in
            if resp.status == HTTP_FORBIDDEN:
                if resp.retry_after is None:
                    # Policy rejection (e.g. a package-list-only market
                    # refusing enumeration): definitive, like a 404.
                    if self.breaker is not None:
                        self.breaker.record_success()
                    raise ForbiddenError(path)
                self.stats.bans_hit += 1
                self._event("ban.hit", path=path, retry_after=resp.retry_after)
                pool = self.identities
                if pool is None:
                    raise self._ban_abort(path, resp.retry_after)
                now = self._clock.now
                pool.ban_current(now, resp.retry_after)
                if self._rotate_off_ban(now):
                    continue
                # Every identity is serving a ban: wait for the
                # earliest release (budgeted like 429 waits).
                wait = pool.earliest_release(now)
                if wait is None:
                    continue  # a ban lapsed already; retry in place
                if (
                    self._max_rate_limit_wait is not None
                    and wait > self._max_rate_limit_wait
                ) or ban_waits >= self._max_rate_limit_waits:
                    raise self._ban_abort(path, resp.retry_after)
                ban_waits += 1
                self._sleep(self._jittered(wait))
                self._rotate_off_ban(self._clock.now)
                continue
            if resp.status == HTTP_TOO_MANY_REQUESTS:
                self.stats.rate_limited += 1
                wait = resp.retry_after if resp.retry_after else 1.0 / 24
                if self._max_rate_limit_wait is not None and wait > self._max_rate_limit_wait:
                    raise self._rate_limit_abort(path, resp.retry_after)
                if rate_limit_waits >= self._max_rate_limit_waits:
                    raise self._rate_limit_abort(path, resp.retry_after)
                rate_limit_waits += 1
                self._sleep(self._jittered(wait))
                continue
            if resp.status == HTTP_TIMEOUT:
                self.stats.timeouts += 1
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(RequestTimeoutError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            if resp.malformed:
                self.stats.malformed += 1
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(MalformedPayloadError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            if resp.status >= HTTP_SERVER_ERROR:
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(ServerError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            raise self._give_up(ServerError(path))

    def _rotate_off_ban(self, now: float) -> bool:
        """Advance the pool past banned identities; True when rotated."""
        if self.identities is not None and self.identities.rotate_to_available(now):
            self.stats.identity_rotations += 1
            self._event("identity.rotate", reason="ban",
                        identity=self.identities.current.ip)
            return True
        return False

    def _give_up(self, exc: Exception) -> Exception:
        """Account one abandoned request and feed the breaker."""
        self.stats.failures += 1
        if self.breaker is not None:
            self.breaker.record_failure()
        return exc

    def _rate_limit_abort(self, path: str, retry_after: Optional[float]) -> Exception:
        """Abandon on rate limiting: a failure, but a *polite* one.

        Quota-style 429s (Google Play's multi-day download hint) mean
        the server is alive and shedding us by policy, so they count as
        abandoned work without feeding the breaker — tripping the
        circuit would also fast-fail the market's healthy metadata
        endpoints.
        """
        self.stats.failures += 1
        self.stats.rate_limit_aborts += 1
        return RateLimitedError(path, retry_after)

    def _ban_abort(self, path: str, retry_after: float) -> Exception:
        """Abandon under an anti-bot ban the pool could not dodge.

        Like :meth:`_rate_limit_abort`, the breaker is *not* fed: the
        server is alive and shedding this identity by policy, and
        quarantining the whole market would discard endpoints the next
        (rotated or rested) identity can still reach.
        """
        self.stats.failures += 1
        return ForbiddenError(path, retry_after)

    def get_json(self, path: str, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Request and return the payload (binary wire decoded)."""
        resp = self.request(path, params)
        if resp.json is None and resp.body is not None and wire.is_wire(resp.body):
            return wire.decode(resp.body)
        return resp.json

    def get_bytes(self, path: str, params: Optional[Mapping[str, Any]] = None) -> bytes:
        """Request and return the binary body."""
        body = self.request(path, params).body
        if body is None:
            raise ServerError(path)
        return body
