"""HTTP client with retries and rate-limit back-off.

``HttpClient`` wraps a server's ``handle`` callable.  On 429 it sleeps
(advances the simulated clock) for the server-suggested ``retry_after``
plus deterministic jitter and retries; on 5xx, connection timeouts
(599), and malformed 200 payloads it retries per
:class:`~repro.net.retry.RetryPolicy`; 404 raises
:class:`~repro.net.http.NotFoundError`.  Each client keeps simple
counters, used by the crawler's telemetry and tests.

Jitter: a fleet of identical clients sleeping exactly ``retry_after``
wakes up in lockstep and re-synchronizes the very storm the 429s were
shedding.  Every rate-limit sleep is therefore stretched by a
deterministic, per-client fraction (up to +25%), derived from the
client's ``jitter_key`` and request ordinal so runs stay reproducible.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional

from repro.net.http import (
    HTTP_NOT_FOUND,
    HTTP_SERVER_ERROR,
    HTTP_TIMEOUT,
    HTTP_TOO_MANY_REQUESTS,
    MalformedPayloadError,
    NotFoundError,
    RateLimitedError,
    Request,
    RequestTimeoutError,
    Response,
    ServerError,
)
from repro.net.retry import RetryPolicy
from repro.util.rng import stable_hash32
from repro.util.simtime import SimClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.breaker import CircuitBreaker
    from repro.obs import LaneObs

__all__ = ["HttpClient", "ClientStats", "RATE_LIMIT_JITTER_MAX"]

#: Upper bound of the multiplicative jitter applied to rate-limit sleeps.
RATE_LIMIT_JITTER_MAX = 0.25


@dataclass
class ClientStats:
    """Counters for one client instance.

    ``failures`` counts *abandoned requests* — every request the client
    gave up on, exactly once each, whatever the reason (retry
    exhaustion, rate-limit cap or wait-budget exhaustion, breaker
    fast-fail).  Transient faults that a retry eventually pushed
    through never touch it; they show up in ``retries`` and the
    per-mode counters instead, so telemetry can distinguish "absorbed
    turbulence" from "work lost".  Two sub-counters break failures
    down: ``rate_limit_aborts`` (gave up because the server shed us)
    and ``breaker_fast_fails`` (never sent: the circuit was open or
    the market quarantined).  404 is a definitive answer, not a
    failure; it stays in ``not_found``.
    """

    requests: int = 0
    retries: int = 0
    rate_limited: int = 0
    timeouts: int = 0
    malformed: int = 0
    not_found: int = 0
    failures: int = 0
    rate_limit_aborts: int = 0
    breaker_fast_fails: int = 0
    sim_days_slept: float = 0.0

    def copy(self) -> "ClientStats":
        return replace(self)

    def delta(self, baseline: "ClientStats") -> "ClientStats":
        """Counter movement since ``baseline`` (an earlier copy)."""
        return ClientStats(
            requests=self.requests - baseline.requests,
            retries=self.retries - baseline.retries,
            rate_limited=self.rate_limited - baseline.rate_limited,
            timeouts=self.timeouts - baseline.timeouts,
            malformed=self.malformed - baseline.malformed,
            not_found=self.not_found - baseline.not_found,
            failures=self.failures - baseline.failures,
            rate_limit_aborts=self.rate_limit_aborts - baseline.rate_limit_aborts,
            breaker_fast_fails=self.breaker_fast_fails - baseline.breaker_fast_fails,
            sim_days_slept=self.sim_days_slept - baseline.sim_days_slept,
        )

    def export_state(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "ClientStats":
        return cls(**state)  # type: ignore[arg-type]


class HttpClient:
    """A retrying client bound to one server endpoint.

    Parameters
    ----------
    handler:
        The server's ``handle(Request) -> Response`` callable.
    clock:
        Clock whose ``advance`` absorbs this client's sleeps.  Under the
        parallel crawl engine this is a per-market lane clock, so one
        market's back-off never stalls another market's lane.
    retry_policy:
        Back-off schedule shared by 5xx, timeout, and malformed-payload
        retries.
    max_rate_limit_waits:
        How many consecutive 429s to tolerate per request before giving
        up with :class:`RateLimitedError`.
    max_rate_limit_wait:
        Cap (simulated days) on a single honored ``retry_after``.  A 429
        whose hint exceeds the cap is treated as a hard limit and raised
        immediately — the Google Play download quota answers with a
        multi-day hint that no polite crawler should wait out, while
        burst 429s hint minutes and are worth riding through.  ``None``
        honors any hint.
    pacer:
        Optional ``reserve() -> float`` callable consulted before every
        attempt; a positive return is slept first.  The crawl engine
        installs a per-market token bucket here.
    jitter_key:
        Stable identity mixed into the rate-limit jitter so distinct
        clients desynchronize while reruns reproduce exactly.
    obs:
        Optional :class:`~repro.obs.LaneObs` instrumentation binding.
        ``None`` (the default) is the fast path: per-request work is a
        single ``is None`` branch, nothing is recorded.
    """

    def __init__(
        self,
        handler: Callable[[Request], Response],
        clock: SimClock,
        retry_policy: Optional[RetryPolicy] = None,
        max_rate_limit_waits: int = 2,
        max_rate_limit_wait: Optional[float] = None,
        pacer: Optional[Callable[[], float]] = None,
        jitter_key: str = "",
        breaker: Optional["CircuitBreaker"] = None,
        obs: Optional["LaneObs"] = None,
    ):
        self._handler = handler
        self._clock = clock
        self._retry_policy = retry_policy or RetryPolicy()
        self._max_rate_limit_waits = max_rate_limit_waits
        self._max_rate_limit_wait = max_rate_limit_wait
        self._pacer = pacer
        self._jitter_key = jitter_key
        self.breaker = breaker
        self.obs = obs
        self.stats = ClientStats()

    def _sleep(self, duration: float) -> None:
        self._clock.advance(duration)
        self.stats.sim_days_slept += duration

    def _jittered(self, base: float) -> float:
        """Stretch a rate-limit sleep by a deterministic jitter fraction."""
        roll = stable_hash32("rl-jitter", self._jitter_key, self.stats.requests) % 1000
        return base * (1.0 + RATE_LIMIT_JITTER_MAX * roll / 1000.0)

    def request(self, path: str, params: Optional[Mapping[str, Any]] = None) -> Response:
        """Issue a request, retrying transient failures.

        Raises
        ------
        NotFoundError
            On 404.
        RateLimitedError
            When the server keeps answering 429 past the waits budget,
            or hints a wait above ``max_rate_limit_wait``.
        RequestTimeoutError
            When timeouts persist past the retry budget.
        MalformedPayloadError
            When garbled payloads persist past the retry budget.
        ServerError
            When 5xx persists past the retry budget.
        CircuitOpenError / MarketQuarantinedError
            From the circuit breaker, before any request is sent, when
            the market's circuit is open (cooling down) or the market
            has been quarantined outright.
        """
        if self.obs is None:
            return self._request(path, params)
        return self._traced_request(path, params)

    def _traced_request(
        self, path: str, params: Optional[Mapping[str, Any]]
    ) -> Response:
        """The instrumented request path: one span, counter-delta attrs.

        The span covers the whole retry loop, so its attributes report
        what the *logical* request cost: attempts sent, retries and 429
        waits absorbed, simulated back-off charged (jitter included),
        and whether the breaker fast-failed it without a single send.
        """
        obs = self.obs
        stats = self.stats
        requests0 = stats.requests
        retries0 = stats.retries
        rate_limited0 = stats.rate_limited
        slept0 = stats.sim_days_slept
        fast_fails0 = stats.breaker_fast_fails
        start = time.perf_counter()
        span = (
            obs.tracer.span("http.request", market=obs.market,
                            clock=obs.clock, path=path)
            if obs.tracer is not None
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            response = self._request(path, params)
            return response
        except BaseException as exc:
            if span is not None:
                span.status = type(exc).__name__
            raise
        finally:
            wall = time.perf_counter() - start
            backoff = stats.sim_days_slept - slept0
            if obs.hist_request is not None:
                obs.hist_request.observe(wall)
                if backoff > 0:
                    obs.hist_backoff.observe(backoff)
            if span is not None:
                span["attempts"] = stats.requests - requests0
                span["retries"] = stats.retries - retries0
                span["rate_limited"] = stats.rate_limited - rate_limited0
                span["backoff_sim_days"] = backoff
                if stats.breaker_fast_fails != fast_fails0:
                    span["breaker_fast_fail"] = True
                span.__exit__(None, None, None)

    def _request(self, path: str, params: Optional[Mapping[str, Any]]) -> Response:
        """The uninstrumented retry loop (the pre-observability path)."""
        if self.breaker is not None:
            try:
                self.breaker.before_request()
            except Exception:
                # Fast-failed: abandoned without a single request sent.
                self.stats.failures += 1
                self.stats.breaker_fast_fails += 1
                raise
        req = Request(path=path, params=dict(params or {}))
        rate_limit_waits = 0
        transient_retries = 0
        while True:
            if self._pacer is not None:
                pace = self._pacer()
                if pace > 0:
                    self._sleep(pace)
            self.stats.requests += 1
            resp = self._handler(req)
            if resp.ok:
                if self.breaker is not None:
                    self.breaker.record_success()
                return resp
            if resp.status == HTTP_NOT_FOUND:
                self.stats.not_found += 1
                if self.breaker is not None:
                    self.breaker.record_success()  # a 404 is a live server
                raise NotFoundError(path)
            if resp.status == HTTP_TOO_MANY_REQUESTS:
                self.stats.rate_limited += 1
                wait = resp.retry_after if resp.retry_after else 1.0 / 24
                if self._max_rate_limit_wait is not None and wait > self._max_rate_limit_wait:
                    raise self._rate_limit_abort(path, resp.retry_after)
                if rate_limit_waits >= self._max_rate_limit_waits:
                    raise self._rate_limit_abort(path, resp.retry_after)
                rate_limit_waits += 1
                self._sleep(self._jittered(wait))
                continue
            if resp.status == HTTP_TIMEOUT:
                self.stats.timeouts += 1
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(RequestTimeoutError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            if resp.malformed:
                self.stats.malformed += 1
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(MalformedPayloadError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            if resp.status >= HTTP_SERVER_ERROR:
                if transient_retries >= self._retry_policy.max_retries:
                    raise self._give_up(ServerError(path))
                transient_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(transient_retries))
                continue
            raise self._give_up(ServerError(path))

    def _give_up(self, exc: Exception) -> Exception:
        """Account one abandoned request and feed the breaker."""
        self.stats.failures += 1
        if self.breaker is not None:
            self.breaker.record_failure()
        return exc

    def _rate_limit_abort(self, path: str, retry_after: Optional[float]) -> Exception:
        """Abandon on rate limiting: a failure, but a *polite* one.

        Quota-style 429s (Google Play's multi-day download hint) mean
        the server is alive and shedding us by policy, so they count as
        abandoned work without feeding the breaker — tripping the
        circuit would also fast-fail the market's healthy metadata
        endpoints.
        """
        self.stats.failures += 1
        self.stats.rate_limit_aborts += 1
        return RateLimitedError(path, retry_after)

    def get_json(self, path: str, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Request and return the JSON payload."""
        return self.request(path, params).json

    def get_bytes(self, path: str, params: Optional[Mapping[str, Any]] = None) -> bytes:
        """Request and return the binary body."""
        body = self.request(path, params).body
        if body is None:
            raise ServerError(path)
        return body
