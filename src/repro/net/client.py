"""HTTP client with retries and rate-limit back-off.

``HttpClient`` wraps a server's ``handle`` callable.  On 429 it sleeps
(advances the simulated clock) for the server-suggested ``retry_after``
and retries; on 5xx it retries per :class:`~repro.net.retry.RetryPolicy`;
404 raises :class:`~repro.net.http.NotFoundError`.  Each client keeps
simple counters, used by the crawler's statistics and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.net.http import (
    HTTP_NOT_FOUND,
    HTTP_SERVER_ERROR,
    HTTP_TOO_MANY_REQUESTS,
    NotFoundError,
    RateLimitedError,
    Request,
    Response,
    ServerError,
)
from repro.net.retry import RetryPolicy
from repro.util.simtime import SimClock

__all__ = ["HttpClient", "ClientStats"]


@dataclass
class ClientStats:
    """Counters for one client instance."""

    requests: int = 0
    retries: int = 0
    rate_limited: int = 0
    not_found: int = 0
    failures: int = 0
    sim_days_slept: float = 0.0


class HttpClient:
    """A retrying client bound to one server endpoint.

    Parameters
    ----------
    handler:
        The server's ``handle(Request) -> Response`` callable.
    clock:
        Shared simulated clock; sleeps advance it.
    retry_policy:
        Back-off schedule for 5xx responses.
    max_rate_limit_waits:
        How many consecutive 429s to tolerate per request before giving
        up with :class:`RateLimitedError`.  The Google Play crawler uses
        a low value here and falls back to the offline archive instead of
        waiting out a multi-day quota.
    """

    def __init__(
        self,
        handler: Callable[[Request], Response],
        clock: SimClock,
        retry_policy: Optional[RetryPolicy] = None,
        max_rate_limit_waits: int = 2,
    ):
        self._handler = handler
        self._clock = clock
        self._retry_policy = retry_policy or RetryPolicy()
        self._max_rate_limit_waits = max_rate_limit_waits
        self.stats = ClientStats()

    def _sleep(self, duration: float) -> None:
        self._clock.advance(duration)
        self.stats.sim_days_slept += duration

    def request(self, path: str, params: Optional[Mapping[str, Any]] = None) -> Response:
        """Issue a request, retrying transient failures.

        Raises
        ------
        NotFoundError
            On 404.
        RateLimitedError
            When the server keeps answering 429 past the waits budget.
        ServerError
            When 5xx persists past the retry budget.
        """
        req = Request(path=path, params=dict(params or {}))
        rate_limit_waits = 0
        server_retries = 0
        while True:
            self.stats.requests += 1
            resp = self._handler(req)
            if resp.ok:
                return resp
            if resp.status == HTTP_NOT_FOUND:
                self.stats.not_found += 1
                raise NotFoundError(path)
            if resp.status == HTTP_TOO_MANY_REQUESTS:
                self.stats.rate_limited += 1
                if rate_limit_waits >= self._max_rate_limit_waits:
                    raise RateLimitedError(path, resp.retry_after)
                rate_limit_waits += 1
                self._sleep(resp.retry_after if resp.retry_after else 1.0 / 24)
                continue
            if resp.status >= HTTP_SERVER_ERROR:
                if server_retries >= self._retry_policy.max_retries:
                    self.stats.failures += 1
                    raise ServerError(path)
                server_retries += 1
                self.stats.retries += 1
                self._sleep(self._retry_policy.delay(server_retries))
                continue
            self.stats.failures += 1
            raise ServerError(path)

    def get_json(self, path: str, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Request and return the JSON payload."""
        return self.request(path, params).json

    def get_bytes(self, path: str, params: Optional[Mapping[str, Any]] = None) -> bytes:
        """Request and return the binary body."""
        body = self.request(path, params).body
        if body is None:
            raise ServerError(path)
        return body
