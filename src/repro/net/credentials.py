"""Session-token lifecycle for authenticated markets.

:class:`CredentialManager` holds one lane's session token for a market
whose :class:`~repro.markets.hostility.HostilityPolicy` enables
``auth``.  The :class:`~repro.net.client.HttpClient` consults it before
every request:

* **Proactive refresh** — a token is treated as stale once it enters
  the final ``refresh_margin`` fraction of its TTL, so the client
  re-logs-in *before* the server starts answering 401 (saving the
  wasted round-trip).
* **Single-flight re-login** — the manager's lock serializes login
  attempts so concurrent callers on a lane never stampede the login
  endpoint.  (Lanes are strictly sequential today; the lock makes the
  invariant explicit and future-proof.)
* **401 invalidation** — on an unexpected 401 the client calls
  :meth:`invalidate` and retries, bounded by its re-login budget.

All timing is in simulated days on the lane clock, and the mutable
state (token, expiry, counters) joins the lane checkpoint so a resume
cut inside a token's lifetime replays identically.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["CredentialManager"]


class CredentialManager:
    """One lane's login state against one authenticated market."""

    def __init__(self, market_id: str, refresh_margin: float = 0.1):
        if not 0 <= refresh_margin < 1:
            raise ValueError(
                f"refresh_margin must be in [0, 1), got {refresh_margin}"
            )
        self.market_id = market_id
        self.refresh_margin = refresh_margin
        self.lock = threading.Lock()
        self._token: Optional[str] = None
        self._expires_at = -1.0
        self._ttl = 0.0
        self.logins = 0

    @property
    def ever_logged_in(self) -> bool:
        return self.logins > 0

    def token_if_valid(self, now: float) -> Optional[str]:
        """The current token, unless missing or inside the proactive
        refresh margin (the last ``refresh_margin`` fraction of TTL)."""
        if self._token is None:
            return None
        if now >= self._expires_at - self._ttl * self.refresh_margin:
            return None
        return self._token

    def install(self, token: str, ttl: float, now: float) -> None:
        """Adopt a freshly issued token."""
        self._token = token
        self._ttl = float(ttl)
        self._expires_at = now + float(ttl)
        self.logins += 1

    def invalidate(self) -> None:
        """Drop the token (the server answered 401 despite it)."""
        self._token = None
        self._expires_at = -1.0

    # -- checkpoint plumbing ----------------------------------------------

    def export_state(self) -> dict:
        return {
            "token": self._token,
            "expires_at": self._expires_at,
            "ttl": self._ttl,
            "logins": self.logins,
        }

    def restore_state(self, state: dict) -> None:
        token = state["token"]
        self._token = str(token) if token is not None else None
        self._expires_at = float(state["expires_at"])
        self._ttl = float(state["ttl"])
        self.logins = int(state["logins"])
