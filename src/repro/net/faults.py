"""Configurable server-side fault injection.

The paper's crawlers fought every failure mode a heavily loaded market
frontend can produce: transient 5xx storms, hung connections, truncated
HTML, and burst rate limiting.  :class:`FaultPlan` describes a mix of
those modes and :class:`FaultInjector` applies it deterministically —
the fault a request sees depends only on (market, request ordinal), so
a crawl is bit-reproducible at any worker count.

Modes
-----
``transient_500``
    Share of requests answered with a 500 (the legacy ``flakiness``).
``timeout``
    Share of requests that hang until the client-side timeout (599).
``malformed``
    Share of 200s whose payload arrives truncated/garbled.
``burst_429`` (period/length)
    Every ``burst_429_period`` requests, a burst of
    ``burst_429_length`` consecutive 429s with a short ``retry_after``
    — the "429-happy market" pattern, distinct from Google Play's hard
    download quota whose ``retry_after`` is measured in days.
``blackout`` (windows)
    Total outage windows: every request whose simulated day falls in a
    ``[start, start + duration)`` window times out, unconditionally.
    This is the market-goes-dark stressor the circuit breaker and
    checkpoint/resume machinery are built for; it ignores
    ``max_consecutive`` because no retry budget rides out a dead
    frontend.  Windows are normalized at construction — sorted,
    overlapping/touching windows merged, zero/negative durations
    rejected — so two plans describing the same outages compare (and
    hash) equal regardless of the order the windows were written in.

``max_consecutive`` caps how many faulted responses can occur back to
back, so a retry budget of N >= max_consecutive is guaranteed to push
every request through — the property the fault-convergence tests rely
on.  ``None`` leaves streak lengths unbounded (the legacy behavior,
where extreme fault rates genuinely exhaust clients).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.net.http import Response
from repro.util.rng import stable_hash32

__all__ = ["FaultPlan", "FaultInjector", "CLEAN_PLAN"]

#: Burst-429 retry hint: two simulated minutes, short enough that a
#: polite client waits it out rather than abandoning the request.
BURST_RETRY_AFTER = 2.0 / (24 * 60)


@dataclass(frozen=True)
class FaultPlan:
    """The fault mix one market server injects."""

    transient_500: float = 0.0
    timeout: float = 0.0
    malformed: float = 0.0
    burst_429_period: int = 0  # 0 disables burst injection
    burst_429_length: int = 2
    burst_retry_after: float = BURST_RETRY_AFTER
    max_consecutive: Optional[int] = None
    blackout_start: Optional[float] = None  # legacy single-window form
    blackout_days: float = 0.0
    #: Canonical outage windows as ``(start_day, duration)`` pairs;
    #: normalized (sorted + merged) by ``__post_init__``.  The legacy
    #: single-window fields above are folded in when set.
    blackout_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("transient_500", "timeout", "malformed"):
            share = getattr(self, name)
            if not 0.0 <= share < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {share}")
        if self.burst_429_period < 0 or self.burst_429_length < 1:
            raise ValueError("invalid burst-429 parameters")
        if 0 < self.burst_429_period <= self.burst_429_length:
            raise ValueError("burst_429_period must exceed burst_429_length")
        if self.max_consecutive is not None and self.max_consecutive < 1:
            raise ValueError("max_consecutive must be positive")
        if self.blackout_start is not None and self.blackout_days <= 0:
            raise ValueError("blackout_days must be positive when blackout_start is set")
        if self.blackout_start is None and self.blackout_days:
            raise ValueError("blackout_days requires blackout_start")
        windows = list(self.blackout_windows)
        if self.blackout_start is not None:
            windows.append((self.blackout_start, self.blackout_days))
            # Fold the legacy single-window form into the canonical
            # tuple so equivalent plans compare equal however written.
            object.__setattr__(self, "blackout_start", None)
            object.__setattr__(self, "blackout_days", 0.0)
        object.__setattr__(
            self, "blackout_windows", _normalize_windows(windows)
        )

    @classmethod
    def blackout(cls, start_day: float, duration: float, **extra) -> "FaultPlan":
        """A plan whose market serves 100% timeouts for a time window."""
        return cls(blackout_start=float(start_day), blackout_days=float(duration), **extra)

    @classmethod
    def blackouts(
        cls, windows: Iterable[Sequence[float]], **extra
    ) -> "FaultPlan":
        """A plan with multiple outage windows (``(start, duration)``
        pairs, any order/overlap — normalized at construction)."""
        return cls(
            blackout_windows=tuple(
                (float(start), float(duration)) for start, duration in windows
            ),
            **extra,
        )

    def in_blackout(self, now: float) -> bool:
        return any(
            start <= now < start + duration
            for start, duration in self.blackout_windows
        )

    @property
    def active(self) -> bool:
        return bool(
            self.transient_500
            or self.timeout
            or self.malformed
            or self.burst_429_period
            or self.blackout_windows
        )


def _normalize_windows(
    windows: Iterable[Sequence[float]],
) -> Tuple[Tuple[float, float], ...]:
    """Sort ``(start, duration)`` windows and merge overlaps/touches.

    The old single-window code silently depended on declaration order
    once callers started composing plans; canonicalizing here makes
    equal outage schedules compare equal and keeps ``in_blackout`` a
    scan over disjoint intervals.
    """
    cleaned = []
    for window in windows:
        start, duration = window
        start, duration = float(start), float(duration)
        if duration <= 0:
            raise ValueError(
                f"blackout window duration must be positive, got {window!r}"
            )
        cleaned.append((start, duration))
    cleaned.sort()
    merged: list = []
    for start, duration in cleaned:
        if merged and start <= merged[-1][0] + merged[-1][1]:
            prev_start, prev_duration = merged[-1]
            merged[-1] = (
                prev_start,
                max(prev_duration, start + duration - prev_start),
            )
        else:
            merged.append((start, duration))
    return tuple(merged)


#: A plan that injects nothing (the default server behavior).
CLEAN_PLAN = FaultPlan()


class FaultInjector:
    """Applies a :class:`FaultPlan` to one market's request stream."""

    def __init__(self, market_id: str, plan: FaultPlan):
        self._market_id = market_id
        self._plan = plan
        self._streak = 0
        self.injected_500 = 0
        self.injected_timeouts = 0
        self.injected_malformed = 0
        self.injected_429 = 0

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def injected_total(self) -> int:
        return (
            self.injected_500
            + self.injected_timeouts
            + self.injected_malformed
            + self.injected_429
        )

    def _roll(self, salt: str, ordinal: int) -> float:
        return (stable_hash32(salt, self._market_id, ordinal) % 10_000) / 10_000

    def inject(self, ordinal: int, now: float = 0.0) -> Optional[Response]:
        """The fault response for request ``ordinal``, or None to pass through.

        Deterministic: depends only on the plan, the market id, the
        per-server request ordinal, and (for blackout windows) the
        simulated day ``now``.
        """
        plan = self._plan
        if not plan.active:
            return None
        if plan.in_blackout(now):
            # A dead frontend answers nothing; the streak cap does not
            # apply — there is no "eventually it works" to converge to.
            self.injected_timeouts += 1
            return Response.timeout()
        if plan.max_consecutive is not None and self._streak >= plan.max_consecutive:
            self._streak = 0
            return None
        response = self._decide(ordinal)
        if response is None:
            self._streak = 0
        else:
            self._streak += 1
        return response

    def _decide(self, ordinal: int) -> Optional[Response]:
        plan = self._plan
        if plan.burst_429_period and ordinal % plan.burst_429_period < plan.burst_429_length:
            self.injected_429 += 1
            return Response.rate_limited(retry_after=plan.burst_retry_after)
        # Keep the legacy salt for 500s so seeds reproduce the exact
        # failure positions the old ``flakiness`` parameter produced.
        if plan.transient_500 and self._roll("transient", ordinal) < plan.transient_500:
            self.injected_500 += 1
            return Response(status=500)
        if plan.timeout and self._roll("fault-timeout", ordinal) < plan.timeout:
            self.injected_timeouts += 1
            return Response.timeout()
        if plan.malformed and self._roll("fault-malformed", ordinal) < plan.malformed:
            self.injected_malformed += 1
            return Response.garbled()
        return None

    # -- checkpoint plumbing ----------------------------------------------

    def export_state(self) -> dict:
        return {
            "streak": self._streak,
            "injected_500": self.injected_500,
            "injected_timeouts": self.injected_timeouts,
            "injected_malformed": self.injected_malformed,
            "injected_429": self.injected_429,
        }

    def restore_state(self, state: dict) -> None:
        self._streak = int(state["streak"])
        self.injected_500 = int(state["injected_500"])
        self.injected_timeouts = int(state["injected_timeouts"])
        self.injected_malformed = int(state["injected_malformed"])
        self.injected_429 = int(state["injected_429"])
