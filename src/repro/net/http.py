"""Minimal HTTP-like request/response model.

Market servers implement ``handle(request) -> response``; the client in
:mod:`repro.net.client` adds retries and rate-limit handling on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = [
    "HTTP_OK",
    "HTTP_UNAUTHORIZED",
    "HTTP_FORBIDDEN",
    "HTTP_NOT_FOUND",
    "HTTP_TOO_MANY_REQUESTS",
    "HTTP_SERVER_ERROR",
    "HTTP_TIMEOUT",
    "Request",
    "Response",
    "HttpError",
    "AuthError",
    "ForbiddenError",
    "NotFoundError",
    "RateLimitedError",
    "ServerError",
    "RequestTimeoutError",
    "MalformedPayloadError",
]

HTTP_OK = 200
HTTP_UNAUTHORIZED = 401
HTTP_FORBIDDEN = 403
HTTP_NOT_FOUND = 404
HTTP_TOO_MANY_REQUESTS = 429
HTTP_SERVER_ERROR = 500
#: Connection/read timeout as observed client-side (the 599 convention
#: some proxies use for "network connect timeout").
HTTP_TIMEOUT = 599


@dataclass(frozen=True)
class Request:
    """A request to a market endpoint.

    ``path`` selects the endpoint (e.g. ``/search``, ``/app``,
    ``/download``); ``params`` carries query parameters; ``headers``
    carries the client-identity and session metadata hostile markets
    key on (``user-agent``, ``x-client-ip``, ``authorization``, and the
    lane-time stamp ``x-sim-time``).
    """

    path: str
    params: Mapping[str, Any] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def header(self, name: str, default: Any = None) -> Any:
        return self.headers.get(name, default)


@dataclass
class Response:
    """A response from a market endpoint.

    ``malformed`` marks a 200 whose payload was truncated or garbled in
    flight and fails to parse client-side; the client treats it as a
    transient failure and retries.
    """

    status: int
    json: Any = None
    body: Optional[bytes] = None
    retry_after: Optional[float] = None
    malformed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == HTTP_OK and not self.malformed

    @classmethod
    def json_ok(cls, payload: Any) -> "Response":
        return cls(status=HTTP_OK, json=payload)

    @classmethod
    def bytes_ok(cls, body: bytes) -> "Response":
        return cls(status=HTTP_OK, body=body)

    @classmethod
    def not_found(cls) -> "Response":
        return cls(status=HTTP_NOT_FOUND)

    @classmethod
    def unauthorized(cls) -> "Response":
        """401: the session token is missing, stale, or expired."""
        return cls(status=HTTP_UNAUTHORIZED)

    @classmethod
    def forbidden(cls, retry_after: Optional[float] = None) -> "Response":
        """403: ``retry_after`` set means a timed anti-bot ban (the
        client may rotate identity or wait it out); ``None`` means a
        policy rejection that no amount of waiting lifts."""
        return cls(status=HTTP_FORBIDDEN, retry_after=retry_after)

    @classmethod
    def rate_limited(cls, retry_after: float) -> "Response":
        return cls(status=HTTP_TOO_MANY_REQUESTS, retry_after=retry_after)

    @classmethod
    def timeout(cls) -> "Response":
        return cls(status=HTTP_TIMEOUT)

    @classmethod
    def garbled(cls) -> "Response":
        return cls(status=HTTP_OK, body=b"<!DOCTYPE html><!-- truncated -->", malformed=True)


class HttpError(Exception):
    """Base class for client-raised HTTP failures."""

    def __init__(self, message: str, status: int):
        super().__init__(message)
        self.status = status


class AuthError(HttpError):
    """The server kept answering 401 past the re-login budget."""

    def __init__(self, path: str):
        super().__init__(f"unauthorized: {path}", HTTP_UNAUTHORIZED)


class ForbiddenError(HttpError):
    """A 403 the client could not recover from.

    ``retry_after`` mirrors the response: a float for a timed anti-bot
    ban (identity rotation and waiting were exhausted), ``None`` for a
    policy rejection (e.g. a package-list-only market refusing catalog
    enumeration) — definitive, like a 404.
    """

    def __init__(self, path: str, retry_after: Optional[float] = None):
        super().__init__(f"forbidden: {path}", HTTP_FORBIDDEN)
        self.retry_after = retry_after


class NotFoundError(HttpError):
    def __init__(self, path: str):
        super().__init__(f"not found: {path}", HTTP_NOT_FOUND)


class RateLimitedError(HttpError):
    def __init__(self, path: str, retry_after: Optional[float]):
        super().__init__(f"rate limited: {path}", HTTP_TOO_MANY_REQUESTS)
        self.retry_after = retry_after


class ServerError(HttpError):
    def __init__(self, path: str):
        super().__init__(f"server error: {path}", HTTP_SERVER_ERROR)


class RequestTimeoutError(HttpError):
    """The connection kept timing out past the retry budget."""

    def __init__(self, path: str):
        super().__init__(f"timed out: {path}", HTTP_TIMEOUT)


class MalformedPayloadError(HttpError):
    """The server kept answering garbled payloads past the retry budget."""

    def __init__(self, path: str):
        super().__init__(f"malformed payload: {path}", HTTP_OK)
