"""Minimal HTTP-like request/response model.

Market servers implement ``handle(request) -> response``; the client in
:mod:`repro.net.client` adds retries and rate-limit handling on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = [
    "HTTP_OK",
    "HTTP_NOT_FOUND",
    "HTTP_TOO_MANY_REQUESTS",
    "HTTP_SERVER_ERROR",
    "HTTP_TIMEOUT",
    "Request",
    "Response",
    "HttpError",
    "NotFoundError",
    "RateLimitedError",
    "ServerError",
    "RequestTimeoutError",
    "MalformedPayloadError",
]

HTTP_OK = 200
HTTP_NOT_FOUND = 404
HTTP_TOO_MANY_REQUESTS = 429
HTTP_SERVER_ERROR = 500
#: Connection/read timeout as observed client-side (the 599 convention
#: some proxies use for "network connect timeout").
HTTP_TIMEOUT = 599


@dataclass(frozen=True)
class Request:
    """A request to a market endpoint.

    ``path`` selects the endpoint (e.g. ``/search``, ``/app``,
    ``/download``); ``params`` carries query parameters.
    """

    path: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)


@dataclass
class Response:
    """A response from a market endpoint.

    ``malformed`` marks a 200 whose payload was truncated or garbled in
    flight and fails to parse client-side; the client treats it as a
    transient failure and retries.
    """

    status: int
    json: Any = None
    body: Optional[bytes] = None
    retry_after: Optional[float] = None
    malformed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == HTTP_OK and not self.malformed

    @classmethod
    def json_ok(cls, payload: Any) -> "Response":
        return cls(status=HTTP_OK, json=payload)

    @classmethod
    def bytes_ok(cls, body: bytes) -> "Response":
        return cls(status=HTTP_OK, body=body)

    @classmethod
    def not_found(cls) -> "Response":
        return cls(status=HTTP_NOT_FOUND)

    @classmethod
    def rate_limited(cls, retry_after: float) -> "Response":
        return cls(status=HTTP_TOO_MANY_REQUESTS, retry_after=retry_after)

    @classmethod
    def timeout(cls) -> "Response":
        return cls(status=HTTP_TIMEOUT)

    @classmethod
    def garbled(cls) -> "Response":
        return cls(status=HTTP_OK, body=b"<!DOCTYPE html><!-- truncated -->", malformed=True)


class HttpError(Exception):
    """Base class for client-raised HTTP failures."""

    def __init__(self, message: str, status: int):
        super().__init__(message)
        self.status = status


class NotFoundError(HttpError):
    def __init__(self, path: str):
        super().__init__(f"not found: {path}", HTTP_NOT_FOUND)


class RateLimitedError(HttpError):
    def __init__(self, path: str, retry_after: Optional[float]):
        super().__init__(f"rate limited: {path}", HTTP_TOO_MANY_REQUESTS)
        self.retry_after = retry_after


class ServerError(HttpError):
    def __init__(self, path: str):
        super().__init__(f"server error: {path}", HTTP_SERVER_ERROR)


class RequestTimeoutError(HttpError):
    """The connection kept timing out past the retry budget."""

    def __init__(self, path: str):
        super().__init__(f"timed out: {path}", HTTP_TIMEOUT)


class MalformedPayloadError(HttpError):
    """The server kept answering garbled payloads past the retry budget."""

    def __init__(self, path: str):
        super().__init__(f"malformed payload: {path}", HTTP_OK)
