"""Client identity pools: proxy IP / user-agent rotation.

Real crawlers survive anti-bot bans by rotating through proxy exits and
user-agent strings (PyStoreCrawler ships exactly this middleware).  The
simulated equivalent is an :class:`IdentityPool` of ``(ip, user_agent)``
pairs the :class:`~repro.net.client.HttpClient` stamps onto every
request; hostile markets key their velocity counters on that pair, so
rotating to a fresh identity resets the market's view of the client.

Determinism contract (see DESIGN.md): the pool's identities are derived
from :func:`~repro.util.rng.stable_hash64` substreams keyed by
``(seed, market_id, slot_index)`` — never by worker or shard id — so
the same campaign config yields the same identities at any worker
count.  Rotation decisions depend only on the request stream and the
lane clock, both of which are deterministic per lane, and the pool's
mutable state (current slot, per-identity ban windows, counters) joins
the lane checkpoint so kill-and-resume lands on the identical identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.rng import stable_hash64

__all__ = ["Identity", "IdentityPolicy", "IdentityPool", "ROTATION_MODES"]

ROTATION_MODES = ("on_ban", "round_robin")

#: UA templates the pool draws from (version digits vary per identity).
_UA_TEMPLATES = (
    "Mozilla/5.0 (Linux; Android {a}.{b}) AppleWebKit/537.36 Chrome/{c}.0 Mobile",
    "Dalvik/2.1.0 (Linux; U; Android {a}.{b}; SM-G9{c:02d}0 Build/QP1A)",
    "okhttp/{a}.{b}.{c}",
    "MarketClient/{a}.{b}.{c} (Android)",
)


@dataclass(frozen=True)
class Identity:
    """One rotatable client identity (proxy exit + UA string)."""

    ip: str
    user_agent: str

    def headers(self) -> Dict[str, str]:
        return {"x-client-ip": self.ip, "user-agent": self.user_agent}


@dataclass(frozen=True)
class IdentityPolicy:
    """How a lane's identity pool rotates.

    ``on_ban`` rotates only when the current identity gets banned;
    ``round_robin`` additionally advances every ``rotate_every``
    requests.  ``cooldown`` is the minimum sim-day rest a banned
    identity serves even when the server's ban window is shorter.
    """

    size: int = 4
    rotation: str = "on_ban"
    rotate_every: int = 50
    cooldown: float = 0.05

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"identity pool size must be >= 1, got {self.size}")
        if self.rotation not in ROTATION_MODES:
            raise ValueError(
                f"unknown rotation mode {self.rotation!r}; valid: {ROTATION_MODES}"
            )
        if self.rotate_every < 1:
            raise ValueError("rotate_every must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


def _derive_identity(seed: int, market_id: str, index: int) -> Identity:
    digest = stable_hash64("identity-pool", seed, market_id, index)
    a = 8 + (digest & 0x7)                 # Android-ish major
    b = (digest >> 3) & 0xF                # minor
    c = 60 + ((digest >> 7) & 0x3F)        # build / model digits
    template = _UA_TEMPLATES[(digest >> 13) & 0x3]
    ip = (
        f"10.{(digest >> 16) & 0xFF}"
        f".{(digest >> 24) & 0xFF}"
        f".{1 + ((digest >> 32) & 0xFE)}"
    )
    return Identity(ip=ip, user_agent=template.format(a=a, b=b, c=c))


class IdentityPool:
    """A lane's rotatable identities plus their ban bookkeeping.

    Identities are regenerated from ``(seed, market_id)`` at
    construction, so only the mutable state (current slot, ban windows,
    counters) needs to ride the checkpoint journal.
    """

    def __init__(self, market_id: str, policy: IdentityPolicy, seed: int = 0):
        self.market_id = market_id
        self.policy = policy
        self._identities: List[Identity] = [
            _derive_identity(seed, market_id, index)
            for index in range(policy.size)
        ]
        self._current = 0
        self._checkouts = 0
        self._banned_until: List[float] = [-1.0] * policy.size
        self.rotations = 0
        self.bans_recorded = 0

    @property
    def size(self) -> int:
        return len(self._identities)

    @property
    def current(self) -> Identity:
        return self._identities[self._current]

    @property
    def current_index(self) -> int:
        return self._current

    def checkout(self, now: float) -> Tuple[Identity, bool]:
        """The identity for the next request; True when this checkout
        rotated (round-robin cadence or the current identity is still
        serving a ban it can now dodge)."""
        rotated = False
        if (
            self.policy.rotation == "round_robin"
            and self._checkouts
            and self._checkouts % self.policy.rotate_every == 0
        ):
            rotated = self._advance(now)
        elif now < self._banned_until[self._current]:
            # Current identity is mid-ban (e.g. after a resume cut):
            # try to dodge before the request rather than eat the 403.
            rotated = self._advance(now)
        self._checkouts += 1
        return self._identities[self._current], rotated

    def ban_current(self, now: float, retry_after: Optional[float]) -> None:
        """Record a server ban against the identity in use."""
        window = max(retry_after or 0.0, self.policy.cooldown)
        until = now + window
        if until > self._banned_until[self._current]:
            self._banned_until[self._current] = until
        self.bans_recorded += 1

    def rotate_to_available(self, now: float) -> bool:
        """Advance to the next unbanned identity; False if all banned."""
        return self._advance(now)

    def _advance(self, now: float) -> bool:
        size = self.size
        for step in range(1, size + 1):
            candidate = (self._current + step) % size
            if now >= self._banned_until[candidate]:
                if candidate != self._current:
                    self._current = candidate
                    self.rotations += 1
                    return True
                return False
        return False

    def earliest_release(self, now: float) -> Optional[float]:
        """Sim-days until the first identity frees up; None when one is
        already free (then :meth:`rotate_to_available` succeeds)."""
        waits = [until - now for until in self._banned_until]
        if min(waits) <= 0:
            return None
        return min(waits)

    # -- checkpoint plumbing ----------------------------------------------

    def export_state(self) -> dict:
        return {
            "current": self._current,
            "checkouts": self._checkouts,
            "banned_until": list(self._banned_until),
            "rotations": self.rotations,
            "bans_recorded": self.bans_recorded,
        }

    def restore_state(self, state: dict) -> None:
        self._current = int(state["current"]) % self.size
        self._checkouts = int(state["checkouts"])
        banned = [float(x) for x in state["banned_until"]]
        # Tolerate a policy-size change across resume: pad/truncate.
        banned = (banned + [-1.0] * self.size)[: self.size]
        self._banned_until = banned
        self.rotations = int(state["rotations"])
        self.bans_recorded = int(state["bans_recorded"])
