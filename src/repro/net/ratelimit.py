"""Token-bucket rate limiting over simulated time.

Google Play's APK download endpoint rate-limited the paper's crawler (the
reason their APK sample stops at 287,110 files); the market server uses a
:class:`TokenBucket` to reproduce that mechanic, and the crawler's client
backs off when it sees 429s.
"""

from __future__ import annotations

from repro.util.simtime import SimClock

__all__ = ["TokenBucket", "QuotaLimiter"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens per simulated day, up to ``burst``."""

    def __init__(self, clock: SimClock, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self._clock = clock
        self._rate = float(rate)
        self._burst = float(burst)
        self._tokens = float(burst)
        self._last = clock.now

    def _refill(self) -> None:
        now = self._clock.now
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
            self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; return whether the take succeeded."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def time_until_available(self, tokens: float = 1.0) -> float:
        """Simulated days until ``tokens`` would be available (0 if now)."""
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self._rate

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens


class QuotaLimiter:
    """A hard cumulative quota: after ``limit`` acquisitions, always refuse.

    Models per-account download caps that no amount of waiting lifts —
    the behavior that forced the paper to backfill Google Play APKs from
    AndroZoo.
    """

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError("limit must be non-negative")
        self._limit = int(limit)
        self._used = 0

    def try_acquire(self) -> bool:
        if self._used >= self._limit:
            return False
        self._used += 1
        return True

    @property
    def used(self) -> int:
        return self._used

    @property
    def remaining(self) -> int:
        return self._limit - self._used
