"""Token-bucket rate limiting over simulated time.

Google Play's APK download endpoint rate-limited the paper's crawler (the
reason their APK sample stops at 287,110 files); the market server uses a
:class:`TokenBucket` to reproduce that mechanic, and the crawler's client
backs off when it sees 429s.

:class:`PerMarketRateLimiter` is the client-side counterpart: one bucket
per market, bound to that market's lane clock, so the crawl engine can
pace each market independently — a throttled market spends its own lane
time waiting and never stalls the rest of the fleet.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.util.simtime import SimClock

__all__ = ["TokenBucket", "QuotaLimiter", "PerMarketRateLimiter"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens per simulated day, up to ``burst``."""

    def __init__(self, clock: SimClock, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self._clock = clock
        self._rate = float(rate)
        self._burst = float(burst)
        self._tokens = float(burst)
        self._last = clock.now

    def _refill(self) -> None:
        now = self._clock.now
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
            self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; return whether the take succeeded."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def time_until_available(self, tokens: float = 1.0) -> float:
        """Simulated days until ``tokens`` would be available (0 if now)."""
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self._rate

    def reserve(self, tokens: float = 1.0) -> float:
        """Commit ``tokens`` now and return the wait (days) to honor them.

        Unlike :meth:`try_acquire`, the balance may go negative: the
        caller promises to sleep the returned duration, after which the
        refill brings the bucket back to zero.  This is the pacing
        primitive clients use — reserve, sleep, send.
        """
        self._refill()
        self._tokens -= tokens
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self._rate

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def export_state(self) -> dict:
        return {"tokens": self._tokens, "last": self._last}

    def restore_state(self, state: dict) -> None:
        self._tokens = float(state["tokens"])
        self._last = float(state["last"])


class QuotaLimiter:
    """A hard cumulative quota: after ``limit`` acquisitions, always refuse.

    Models per-account download caps that no amount of waiting lifts —
    the behavior that forced the paper to backfill Google Play APKs from
    AndroZoo.
    """

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError("limit must be non-negative")
        self._limit = int(limit)
        self._used = 0

    def try_acquire(self) -> bool:
        if self._used >= self._limit:
            return False
        self._used += 1
        return True

    @property
    def used(self) -> int:
        return self._used

    @property
    def remaining(self) -> int:
        return self._limit - self._used

    def restore(self, used: int) -> None:
        """Reset the consumed count (checkpoint/resume support)."""
        if used < 0:
            raise ValueError("used must be non-negative")
        self._used = int(used)


class PerMarketRateLimiter:
    """Client-side politeness pacing, one token bucket per market.

    Rates are requests per simulated day.  ``overrides`` tightens or
    loosens individual markets (e.g. a 429-happy market gets a lower
    rate so the client sheds load before the server has to).

    Each market's bucket is bound to that market's lane clock via
    :meth:`bind`, which the crawl engine calls once per market at
    client-construction time; afterwards the bucket is touched only by
    the market's own lane thread, so no locking is needed.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        overrides: Optional[Mapping[str, Tuple[float, float]]] = None,
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self._rate = float(rate)
        self._burst = float(burst)
        self._overrides = dict(overrides or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self._waited: Dict[str, float] = {}

    def params_for(self, market_id: str) -> Tuple[float, float]:
        return self._overrides.get(market_id, (self._rate, self._burst))

    def bind(self, market_id: str, clock: SimClock) -> Callable[[], float]:
        """Create the market's bucket and return its pacer callable."""
        rate, burst = self.params_for(market_id)
        bucket = TokenBucket(clock, rate=rate, burst=burst)
        self._buckets[market_id] = bucket
        self._waited[market_id] = 0.0

        def pace() -> float:
            wait = bucket.reserve()
            if wait > 0:
                self._waited[market_id] += wait
            return wait

        return pace

    def sim_days_waited(self, market_id: str) -> float:
        """Total pacing delay charged to one market's lane."""
        return self._waited.get(market_id, 0.0)

    def export_state(self, market_id: str) -> Optional[dict]:
        bucket = self._buckets.get(market_id)
        if bucket is None:
            return None
        state = bucket.export_state()
        state["waited"] = self._waited.get(market_id, 0.0)
        return state

    def restore_state(self, market_id: str, state: dict) -> None:
        bucket = self._buckets.get(market_id)
        if bucket is None:
            return
        bucket.restore_state(state)
        self._waited[market_id] = float(state.get("waited", 0.0))
