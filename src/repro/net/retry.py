"""Retry policy with exponential back-off over simulated time."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential back-off schedule.

    ``delay(attempt)`` returns the simulated-days wait before retry
    number ``attempt`` (1-based).  The default is tuned for transient
    market-side failures: 3 retries starting at ~1 minute.
    """

    max_retries: int = 3
    base_delay: float = 1.0 / (24 * 60)  # one simulated minute
    multiplier: float = 2.0
    max_delay: float = 1.0 / 24  # one simulated hour

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay <= 0 or self.multiplier < 1 or self.max_delay <= 0:
            raise ValueError("invalid back-off parameters")

    def delay(self, attempt: int) -> float:
        """Back-off before the given 1-based retry attempt."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = self.base_delay * self.multiplier ** (attempt - 1)
        return min(raw, self.max_delay)

    def delays(self):
        """Iterate over the full back-off schedule."""
        return (self.delay(i) for i in range(1, self.max_retries + 1))
